/root/repo/target/release/deps/dim_energy-e3f4573c5409bf10.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/release/deps/libdim_energy-e3f4573c5409bf10.rlib: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/release/deps/libdim_energy-e3f4573c5409bf10.rmeta: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
