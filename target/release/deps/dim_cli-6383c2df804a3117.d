/root/repo/target/release/deps/dim_cli-6383c2df804a3117.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/release/deps/libdim_cli-6383c2df804a3117.rlib: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/release/deps/libdim_cli-6383c2df804a3117.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
