/root/repo/target/release/deps/prop_differential-b8c7e6642b8ef9d6.d: tests/prop_differential.rs

/root/repo/target/release/deps/prop_differential-b8c7e6642b8ef9d6: tests/prop_differential.rs

tests/prop_differential.rs:
