/root/repo/target/release/deps/criterion-d329d26c30f9d4c1.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d329d26c30f9d4c1.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d329d26c30f9d4c1.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
