/root/repo/target/release/deps/dim_sweep-ed63c82ed73824b4.d: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/libdim_sweep-ed63c82ed73824b4.rlib: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/libdim_sweep-ed63c82ed73824b4.rmeta: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/fsio.rs:
crates/sweep/src/journal.rs:
crates/sweep/src/pool.rs:
crates/sweep/src/spec.rs:
