/root/repo/target/release/deps/dim_bench-5a00cc3bf2da5574.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libdim_bench-5a00cc3bf2da5574.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libdim_bench-5a00cc3bf2da5574.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
