/root/repo/target/release/deps/dim_obs-c348dc862a594fb6.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

/root/repo/target/release/deps/libdim_obs-c348dc862a594fb6.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

/root/repo/target/release/deps/libdim_obs-c348dc862a594fb6.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/jsonl.rs:
crates/obs/src/metrics.rs:
crates/obs/src/probe.rs:
crates/obs/src/profile.rs:
crates/obs/src/replay.rs:
