/root/repo/target/release/deps/disasm_roundtrip-e5049904deaf69ef.d: tests/disasm_roundtrip.rs

/root/repo/target/release/deps/disasm_roundtrip-e5049904deaf69ef: tests/disasm_roundtrip.rs

tests/disasm_roundtrip.rs:
