/root/repo/target/release/deps/table2_speedup-de9e0d2e32e6026b.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/release/deps/table2_speedup-de9e0d2e32e6026b: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
