/root/repo/target/release/deps/dim_cli-7b184f4f5d27b917.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/release/deps/libdim_cli-7b184f4f5d27b917.rlib: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/release/deps/libdim_cli-7b184f4f5d27b917.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
