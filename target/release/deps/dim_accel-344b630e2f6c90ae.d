/root/repo/target/release/deps/dim_accel-344b630e2f6c90ae.d: src/lib.rs

/root/repo/target/release/deps/libdim_accel-344b630e2f6c90ae.rlib: src/lib.rs

/root/repo/target/release/deps/libdim_accel-344b630e2f6c90ae.rmeta: src/lib.rs

src/lib.rs:
