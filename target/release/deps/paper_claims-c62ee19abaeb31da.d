/root/repo/target/release/deps/paper_claims-c62ee19abaeb31da.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-c62ee19abaeb31da: tests/paper_claims.rs

tests/paper_claims.rs:
