/root/repo/target/release/deps/dim-689ed821c51633ea.d: crates/cli/src/main.rs

/root/repo/target/release/deps/dim-689ed821c51633ea: crates/cli/src/main.rs

crates/cli/src/main.rs:
