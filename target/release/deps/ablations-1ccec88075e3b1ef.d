/root/repo/target/release/deps/ablations-1ccec88075e3b1ef.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1ccec88075e3b1ef: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
