/root/repo/target/release/deps/dim_energy-a657d6cad4f7ea86.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/release/deps/libdim_energy-a657d6cad4f7ea86.rlib: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/release/deps/libdim_energy-a657d6cad4f7ea86.rmeta: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
