/root/repo/target/release/deps/probe_overhead-37d4a4dc1576b139.d: crates/bench/benches/probe_overhead.rs

/root/repo/target/release/deps/probe_overhead-37d4a4dc1576b139: crates/bench/benches/probe_overhead.rs

crates/bench/benches/probe_overhead.rs:
