/root/repo/target/release/deps/dim_accel-6d78516d030fb927.d: src/lib.rs

/root/repo/target/release/deps/libdim_accel-6d78516d030fb927.rlib: src/lib.rs

/root/repo/target/release/deps/libdim_accel-6d78516d030fb927.rmeta: src/lib.rs

src/lib.rs:
