/root/repo/target/release/deps/fig5_power-22f0dc15b24d803f.d: crates/bench/src/bin/fig5_power.rs

/root/repo/target/release/deps/fig5_power-22f0dc15b24d803f: crates/bench/src/bin/fig5_power.rs

crates/bench/src/bin/fig5_power.rs:
