/root/repo/target/release/deps/edge_cases-02d03bc4b2eb075c.d: tests/edge_cases.rs

/root/repo/target/release/deps/edge_cases-02d03bc4b2eb075c: tests/edge_cases.rs

tests/edge_cases.rs:
