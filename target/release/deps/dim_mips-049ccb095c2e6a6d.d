/root/repo/target/release/deps/dim_mips-049ccb095c2e6a6d.d: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

/root/repo/target/release/deps/libdim_mips-049ccb095c2e6a6d.rlib: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

/root/repo/target/release/deps/libdim_mips-049ccb095c2e6a6d.rmeta: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

crates/mips/src/lib.rs:
crates/mips/src/asm/mod.rs:
crates/mips/src/asm/expand.rs:
crates/mips/src/asm/item.rs:
crates/mips/src/code.rs:
crates/mips/src/disasm.rs:
crates/mips/src/image.rs:
crates/mips/src/inst.rs:
crates/mips/src/reg.rs:
