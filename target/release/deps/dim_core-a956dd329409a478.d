/root/repo/target/release/deps/dim_core-a956dd329409a478.d: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/release/deps/libdim_core-a956dd329409a478.rlib: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/release/deps/libdim_core-a956dd329409a478.rmeta: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/gshare.rs:
crates/core/src/predictor.rs:
crates/core/src/rcache.rs:
crates/core/src/report.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/tables.rs:
crates/core/src/trace.rs:
crates/core/src/translator.rs:
