/root/repo/target/release/deps/fig6_energy-4baaad0c86216df7.d: crates/bench/src/bin/fig6_energy.rs

/root/repo/target/release/deps/fig6_energy-4baaad0c86216df7: crates/bench/src/bin/fig6_energy.rs

crates/bench/src/bin/fig6_energy.rs:
