/root/repo/target/release/deps/dim-78ddddfac6ec2cf4.d: crates/cli/src/main.rs

/root/repo/target/release/deps/dim-78ddddfac6ec2cf4: crates/cli/src/main.rs

crates/cli/src/main.rs:
