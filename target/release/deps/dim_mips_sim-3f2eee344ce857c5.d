/root/repo/target/release/deps/dim_mips_sim-3f2eee344ce857c5.d: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/superscalar.rs crates/mips-sim/src/stats.rs

/root/repo/target/release/deps/libdim_mips_sim-3f2eee344ce857c5.rlib: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/superscalar.rs crates/mips-sim/src/stats.rs

/root/repo/target/release/deps/libdim_mips_sim-3f2eee344ce857c5.rmeta: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/superscalar.rs crates/mips-sim/src/stats.rs

crates/mips-sim/src/lib.rs:
crates/mips-sim/src/cache.rs:
crates/mips-sim/src/costs.rs:
crates/mips-sim/src/cpu.rs:
crates/mips-sim/src/error.rs:
crates/mips-sim/src/machine.rs:
crates/mips-sim/src/mem.rs:
crates/mips-sim/src/profile.rs:
crates/mips-sim/src/superscalar.rs:
crates/mips-sim/src/stats.rs:
