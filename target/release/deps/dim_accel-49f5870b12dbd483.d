/root/repo/target/release/deps/dim_accel-49f5870b12dbd483.d: src/lib.rs

/root/repo/target/release/deps/dim_accel-49f5870b12dbd483: src/lib.rs

src/lib.rs:
