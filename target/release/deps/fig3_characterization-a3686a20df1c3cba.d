/root/repo/target/release/deps/fig3_characterization-a3686a20df1c3cba.d: crates/bench/src/bin/fig3_characterization.rs

/root/repo/target/release/deps/fig3_characterization-a3686a20df1c3cba: crates/bench/src/bin/fig3_characterization.rs

crates/bench/src/bin/fig3_characterization.rs:
