/root/repo/target/release/deps/dim_core-e82e3375814960ac.d: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/release/deps/libdim_core-e82e3375814960ac.rlib: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/release/deps/libdim_core-e82e3375814960ac.rmeta: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/gshare.rs:
crates/core/src/predictor.rs:
crates/core/src/rcache.rs:
crates/core/src/report.rs:
crates/core/src/snapshot.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/tables.rs:
crates/core/src/trace.rs:
crates/core/src/translator.rs:
