/root/repo/target/release/deps/dim_cgra-06000bc79432bdc2.d: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

/root/repo/target/release/deps/libdim_cgra-06000bc79432bdc2.rlib: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

/root/repo/target/release/deps/libdim_cgra-06000bc79432bdc2.rmeta: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

crates/cgra/src/lib.rs:
crates/cgra/src/config.rs:
crates/cgra/src/encoding.rs:
crates/cgra/src/exec.rs:
crates/cgra/src/render.rs:
crates/cgra/src/shape.rs:
crates/cgra/src/snapshot.rs:
crates/cgra/src/timing.rs:
