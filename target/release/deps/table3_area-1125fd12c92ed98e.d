/root/repo/target/release/deps/table3_area-1125fd12c92ed98e.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/release/deps/table3_area-1125fd12c92ed98e: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
