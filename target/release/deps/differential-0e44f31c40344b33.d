/root/repo/target/release/deps/differential-0e44f31c40344b33.d: tests/differential.rs

/root/repo/target/release/deps/differential-0e44f31c40344b33: tests/differential.rs

tests/differential.rs:
