/root/repo/target/release/deps/fig4_summary-8e7f99c1b3b4ea2c.d: crates/bench/src/bin/fig4_summary.rs

/root/repo/target/release/deps/fig4_summary-8e7f99c1b3b4ea2c: crates/bench/src/bin/fig4_summary.rs

crates/bench/src/bin/fig4_summary.rs:
