/root/repo/target/release/examples/heterogeneous_device-3e144caf6b463470.d: examples/heterogeneous_device.rs

/root/repo/target/release/examples/heterogeneous_device-3e144caf6b463470: examples/heterogeneous_device.rs

examples/heterogeneous_device.rs:
