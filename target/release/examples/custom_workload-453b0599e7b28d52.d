/root/repo/target/release/examples/custom_workload-453b0599e7b28d52.d: examples/custom_workload.rs

/root/repo/target/release/examples/custom_workload-453b0599e7b28d52: examples/custom_workload.rs

examples/custom_workload.rs:
