/root/repo/target/release/examples/design_space-f26869695d7c33fe.d: examples/design_space.rs

/root/repo/target/release/examples/design_space-f26869695d7c33fe: examples/design_space.rs

examples/design_space.rs:
