/root/repo/target/release/examples/mibench_sweep-7c154cf124ac0bdd.d: examples/mibench_sweep.rs

/root/repo/target/release/examples/mibench_sweep-7c154cf124ac0bdd: examples/mibench_sweep.rs

examples/mibench_sweep.rs:
