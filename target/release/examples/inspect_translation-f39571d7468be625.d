/root/repo/target/release/examples/inspect_translation-f39571d7468be625.d: examples/inspect_translation.rs

/root/repo/target/release/examples/inspect_translation-f39571d7468be625: examples/inspect_translation.rs

examples/inspect_translation.rs:
