/root/repo/target/release/examples/quickstart-8d8d93fe9a157b34.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8d8d93fe9a157b34: examples/quickstart.rs

examples/quickstart.rs:
