/root/repo/target/debug/examples/mibench_sweep-078bcfaa0dad333f.d: examples/mibench_sweep.rs

/root/repo/target/debug/examples/mibench_sweep-078bcfaa0dad333f: examples/mibench_sweep.rs

examples/mibench_sweep.rs:
