/root/repo/target/debug/examples/inspect_translation-6ecf906ee4a013f3.d: examples/inspect_translation.rs Cargo.toml

/root/repo/target/debug/examples/libinspect_translation-6ecf906ee4a013f3.rmeta: examples/inspect_translation.rs Cargo.toml

examples/inspect_translation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
