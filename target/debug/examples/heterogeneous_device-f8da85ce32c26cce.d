/root/repo/target/debug/examples/heterogeneous_device-f8da85ce32c26cce.d: examples/heterogeneous_device.rs

/root/repo/target/debug/examples/heterogeneous_device-f8da85ce32c26cce: examples/heterogeneous_device.rs

examples/heterogeneous_device.rs:
