/root/repo/target/debug/examples/quickstart-067c519e330a825e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-067c519e330a825e: examples/quickstart.rs

examples/quickstart.rs:
