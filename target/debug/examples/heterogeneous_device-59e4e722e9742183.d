/root/repo/target/debug/examples/heterogeneous_device-59e4e722e9742183.d: examples/heterogeneous_device.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneous_device-59e4e722e9742183.rmeta: examples/heterogeneous_device.rs Cargo.toml

examples/heterogeneous_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
