/root/repo/target/debug/examples/mibench_sweep-11baf20ea69852e3.d: examples/mibench_sweep.rs

/root/repo/target/debug/examples/mibench_sweep-11baf20ea69852e3: examples/mibench_sweep.rs

examples/mibench_sweep.rs:
