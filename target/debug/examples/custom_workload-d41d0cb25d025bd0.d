/root/repo/target/debug/examples/custom_workload-d41d0cb25d025bd0.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-d41d0cb25d025bd0: examples/custom_workload.rs

examples/custom_workload.rs:
