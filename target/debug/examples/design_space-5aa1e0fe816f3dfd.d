/root/repo/target/debug/examples/design_space-5aa1e0fe816f3dfd.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-5aa1e0fe816f3dfd: examples/design_space.rs

examples/design_space.rs:
