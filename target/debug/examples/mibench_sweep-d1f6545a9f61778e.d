/root/repo/target/debug/examples/mibench_sweep-d1f6545a9f61778e.d: examples/mibench_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libmibench_sweep-d1f6545a9f61778e.rmeta: examples/mibench_sweep.rs Cargo.toml

examples/mibench_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
