/root/repo/target/debug/examples/inspect_translation-62b00bbfa9163802.d: examples/inspect_translation.rs

/root/repo/target/debug/examples/inspect_translation-62b00bbfa9163802: examples/inspect_translation.rs

examples/inspect_translation.rs:
