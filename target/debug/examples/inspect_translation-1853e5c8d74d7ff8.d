/root/repo/target/debug/examples/inspect_translation-1853e5c8d74d7ff8.d: examples/inspect_translation.rs

/root/repo/target/debug/examples/inspect_translation-1853e5c8d74d7ff8: examples/inspect_translation.rs

examples/inspect_translation.rs:
