/root/repo/target/debug/examples/quickstart-ec1359dd2b5b3bae.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ec1359dd2b5b3bae.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
