/root/repo/target/debug/examples/custom_workload-83d29083e3219ca6.d: examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-83d29083e3219ca6.rmeta: examples/custom_workload.rs Cargo.toml

examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
