/root/repo/target/debug/examples/custom_workload-7143cd57074b4e7d.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-7143cd57074b4e7d: examples/custom_workload.rs

examples/custom_workload.rs:
