/root/repo/target/debug/examples/quickstart-67259a1aa3ed5f42.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-67259a1aa3ed5f42: examples/quickstart.rs

examples/quickstart.rs:
