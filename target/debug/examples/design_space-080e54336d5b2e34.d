/root/repo/target/debug/examples/design_space-080e54336d5b2e34.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-080e54336d5b2e34: examples/design_space.rs

examples/design_space.rs:
