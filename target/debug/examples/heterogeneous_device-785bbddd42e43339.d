/root/repo/target/debug/examples/heterogeneous_device-785bbddd42e43339.d: examples/heterogeneous_device.rs

/root/repo/target/debug/examples/heterogeneous_device-785bbddd42e43339: examples/heterogeneous_device.rs

examples/heterogeneous_device.rs:
