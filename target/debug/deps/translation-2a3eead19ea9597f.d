/root/repo/target/debug/deps/translation-2a3eead19ea9597f.d: crates/bench/benches/translation.rs Cargo.toml

/root/repo/target/debug/deps/libtranslation-2a3eead19ea9597f.rmeta: crates/bench/benches/translation.rs Cargo.toml

crates/bench/benches/translation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
