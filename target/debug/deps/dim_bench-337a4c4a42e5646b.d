/root/repo/target/debug/deps/dim_bench-337a4c4a42e5646b.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libdim_bench-337a4c4a42e5646b.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
