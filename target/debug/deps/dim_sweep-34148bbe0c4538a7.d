/root/repo/target/debug/deps/dim_sweep-34148bbe0c4538a7.d: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/libdim_sweep-34148bbe0c4538a7.rlib: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/libdim_sweep-34148bbe0c4538a7.rmeta: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/fsio.rs:
crates/sweep/src/journal.rs:
crates/sweep/src/pool.rs:
crates/sweep/src/spec.rs:
