/root/repo/target/debug/deps/proptests-60a2d1c40b7ef54f.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-60a2d1c40b7ef54f.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
