/root/repo/target/debug/deps/dim_sweep-877e4d29457f5f62.d: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdim_sweep-877e4d29457f5f62.rmeta: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs Cargo.toml

crates/sweep/src/lib.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/fsio.rs:
crates/sweep/src/journal.rs:
crates/sweep/src/pool.rs:
crates/sweep/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
