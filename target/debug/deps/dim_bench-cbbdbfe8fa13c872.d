/root/repo/target/debug/deps/dim_bench-cbbdbfe8fa13c872.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/dim_bench-cbbdbfe8fa13c872: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
