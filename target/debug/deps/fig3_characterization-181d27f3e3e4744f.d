/root/repo/target/debug/deps/fig3_characterization-181d27f3e3e4744f.d: crates/bench/src/bin/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-181d27f3e3e4744f: crates/bench/src/bin/fig3_characterization.rs

crates/bench/src/bin/fig3_characterization.rs:
