/root/repo/target/debug/deps/dim-d0a532a10ae77b9d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dim-d0a532a10ae77b9d: crates/cli/src/main.rs

crates/cli/src/main.rs:
