/root/repo/target/debug/deps/fig5_power-74f571d65d428260.d: crates/bench/src/bin/fig5_power.rs

/root/repo/target/debug/deps/fig5_power-74f571d65d428260: crates/bench/src/bin/fig5_power.rs

crates/bench/src/bin/fig5_power.rs:
