/root/repo/target/debug/deps/dim-ae75a19238c59477.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdim-ae75a19238c59477.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
