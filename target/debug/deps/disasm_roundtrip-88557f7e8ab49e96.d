/root/repo/target/debug/deps/disasm_roundtrip-88557f7e8ab49e96.d: tests/disasm_roundtrip.rs

/root/repo/target/debug/deps/disasm_roundtrip-88557f7e8ab49e96: tests/disasm_roundtrip.rs

tests/disasm_roundtrip.rs:
