/root/repo/target/debug/deps/asm_fuzz-27bb1ea811a29b93.d: crates/mips/tests/asm_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libasm_fuzz-27bb1ea811a29b93.rmeta: crates/mips/tests/asm_fuzz.rs Cargo.toml

crates/mips/tests/asm_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
