/root/repo/target/debug/deps/dim_accel-2ed9f3df9842a428.d: src/lib.rs

/root/repo/target/debug/deps/libdim_accel-2ed9f3df9842a428.rlib: src/lib.rs

/root/repo/target/debug/deps/libdim_accel-2ed9f3df9842a428.rmeta: src/lib.rs

src/lib.rs:
