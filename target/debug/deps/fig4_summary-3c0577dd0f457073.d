/root/repo/target/debug/deps/fig4_summary-3c0577dd0f457073.d: crates/bench/src/bin/fig4_summary.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_summary-3c0577dd0f457073.rmeta: crates/bench/src/bin/fig4_summary.rs Cargo.toml

crates/bench/src/bin/fig4_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
