/root/repo/target/debug/deps/fig3_characterization-0414258f2b2803e4.d: crates/bench/src/bin/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-0414258f2b2803e4: crates/bench/src/bin/fig3_characterization.rs

crates/bench/src/bin/fig3_characterization.rs:
