/root/repo/target/debug/deps/observability-8d174e7955a466e3.d: crates/core/tests/observability.rs

/root/repo/target/debug/deps/observability-8d174e7955a466e3: crates/core/tests/observability.rs

crates/core/tests/observability.rs:
