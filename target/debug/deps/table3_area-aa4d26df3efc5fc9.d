/root/repo/target/debug/deps/table3_area-aa4d26df3efc5fc9.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/debug/deps/table3_area-aa4d26df3efc5fc9: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
