/root/repo/target/debug/deps/dim_cli-05bcb6ce69659e7f.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/dim_cli-05bcb6ce69659e7f: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
