/root/repo/target/debug/deps/table3_area-fec98efa610b24b6.d: crates/bench/src/bin/table3_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_area-fec98efa610b24b6.rmeta: crates/bench/src/bin/table3_area.rs Cargo.toml

crates/bench/src/bin/table3_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
