/root/repo/target/debug/deps/dataflow_equivalence-b2ad460ff2db40f7.d: crates/core/tests/dataflow_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libdataflow_equivalence-b2ad460ff2db40f7.rmeta: crates/core/tests/dataflow_equivalence.rs Cargo.toml

crates/core/tests/dataflow_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
