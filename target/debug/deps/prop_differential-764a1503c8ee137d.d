/root/repo/target/debug/deps/prop_differential-764a1503c8ee137d.d: tests/prop_differential.rs

/root/repo/target/debug/deps/prop_differential-764a1503c8ee137d: tests/prop_differential.rs

tests/prop_differential.rs:
