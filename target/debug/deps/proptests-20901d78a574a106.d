/root/repo/target/debug/deps/proptests-20901d78a574a106.d: crates/mips-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-20901d78a574a106.rmeta: crates/mips-sim/tests/proptests.rs Cargo.toml

crates/mips-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
