/root/repo/target/debug/deps/fig6_energy-bf6c323390505431.d: crates/bench/src/bin/fig6_energy.rs

/root/repo/target/debug/deps/fig6_energy-bf6c323390505431: crates/bench/src/bin/fig6_energy.rs

crates/bench/src/bin/fig6_energy.rs:
