/root/repo/target/debug/deps/fig4_summary-6fddaac1b0764d22.d: crates/bench/src/bin/fig4_summary.rs

/root/repo/target/debug/deps/fig4_summary-6fddaac1b0764d22: crates/bench/src/bin/fig4_summary.rs

crates/bench/src/bin/fig4_summary.rs:
