/root/repo/target/debug/deps/dim_bench-edf6de6f92b0a7f2.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libdim_bench-edf6de6f92b0a7f2.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libdim_bench-edf6de6f92b0a7f2.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
