/root/repo/target/debug/deps/dim_mips_sim-b2102c13c161f9aa.d: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/superscalar.rs crates/mips-sim/src/stats.rs

/root/repo/target/debug/deps/libdim_mips_sim-b2102c13c161f9aa.rlib: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/superscalar.rs crates/mips-sim/src/stats.rs

/root/repo/target/debug/deps/libdim_mips_sim-b2102c13c161f9aa.rmeta: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/superscalar.rs crates/mips-sim/src/stats.rs

crates/mips-sim/src/lib.rs:
crates/mips-sim/src/cache.rs:
crates/mips-sim/src/costs.rs:
crates/mips-sim/src/cpu.rs:
crates/mips-sim/src/error.rs:
crates/mips-sim/src/machine.rs:
crates/mips-sim/src/mem.rs:
crates/mips-sim/src/profile.rs:
crates/mips-sim/src/superscalar.rs:
crates/mips-sim/src/stats.rs:
