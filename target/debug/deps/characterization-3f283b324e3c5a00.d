/root/repo/target/debug/deps/characterization-3f283b324e3c5a00.d: crates/bench/benches/characterization.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterization-3f283b324e3c5a00.rmeta: crates/bench/benches/characterization.rs Cargo.toml

crates/bench/benches/characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
