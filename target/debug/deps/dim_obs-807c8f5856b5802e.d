/root/repo/target/debug/deps/dim_obs-807c8f5856b5802e.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

/root/repo/target/debug/deps/dim_obs-807c8f5856b5802e: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/jsonl.rs:
crates/obs/src/metrics.rs:
crates/obs/src/probe.rs:
crates/obs/src/profile.rs:
crates/obs/src/replay.rs:
