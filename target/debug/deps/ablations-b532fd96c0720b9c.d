/root/repo/target/debug/deps/ablations-b532fd96c0720b9c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b532fd96c0720b9c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
