/root/repo/target/debug/deps/fig3_characterization-678d98d39b97b579.d: crates/bench/src/bin/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-678d98d39b97b579: crates/bench/src/bin/fig3_characterization.rs

crates/bench/src/bin/fig3_characterization.rs:
