/root/repo/target/debug/deps/table2_speedup-a0bf9a2200e3014a.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/debug/deps/table2_speedup-a0bf9a2200e3014a: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
