/root/repo/target/debug/deps/dim_cli-73e1203448499195.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs Cargo.toml

/root/repo/target/debug/deps/libdim_cli-73e1203448499195.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
