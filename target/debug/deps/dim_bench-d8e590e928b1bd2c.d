/root/repo/target/debug/deps/dim_bench-d8e590e928b1bd2c.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/dim_bench-d8e590e928b1bd2c: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
