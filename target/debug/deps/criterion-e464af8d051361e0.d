/root/repo/target/debug/deps/criterion-e464af8d051361e0.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-e464af8d051361e0: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
