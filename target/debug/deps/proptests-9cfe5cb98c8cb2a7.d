/root/repo/target/debug/deps/proptests-9cfe5cb98c8cb2a7.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9cfe5cb98c8cb2a7: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
