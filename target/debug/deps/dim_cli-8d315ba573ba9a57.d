/root/repo/target/debug/deps/dim_cli-8d315ba573ba9a57.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs Cargo.toml

/root/repo/target/debug/deps/libdim_cli-8d315ba573ba9a57.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
