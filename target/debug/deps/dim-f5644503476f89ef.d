/root/repo/target/debug/deps/dim-f5644503476f89ef.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdim-f5644503476f89ef.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
