/root/repo/target/debug/deps/criterion-1ce6eaafa6172e99.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1ce6eaafa6172e99.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1ce6eaafa6172e99.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
