/root/repo/target/debug/deps/cli_bin-e52897bba8921d11.d: crates/cli/tests/cli_bin.rs

/root/repo/target/debug/deps/cli_bin-e52897bba8921d11: crates/cli/tests/cli_bin.rs

crates/cli/tests/cli_bin.rs:

# env-dep:CARGO_BIN_EXE_dim=/root/repo/target/debug/dim
