/root/repo/target/debug/deps/edge_cases-7f8e81709dd15918.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-7f8e81709dd15918: tests/edge_cases.rs

tests/edge_cases.rs:
