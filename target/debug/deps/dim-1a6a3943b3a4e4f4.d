/root/repo/target/debug/deps/dim-1a6a3943b3a4e4f4.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdim-1a6a3943b3a4e4f4.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
