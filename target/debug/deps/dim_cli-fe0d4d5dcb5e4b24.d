/root/repo/target/debug/deps/dim_cli-fe0d4d5dcb5e4b24.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/libdim_cli-fe0d4d5dcb5e4b24.rlib: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/libdim_cli-fe0d4d5dcb5e4b24.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
