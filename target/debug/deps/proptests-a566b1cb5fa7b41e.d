/root/repo/target/debug/deps/proptests-a566b1cb5fa7b41e.d: crates/mips-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a566b1cb5fa7b41e: crates/mips-sim/tests/proptests.rs

crates/mips-sim/tests/proptests.rs:
