/root/repo/target/debug/deps/asm_errors-61f93223366f9128.d: crates/mips/tests/asm_errors.rs

/root/repo/target/debug/deps/asm_errors-61f93223366f9128: crates/mips/tests/asm_errors.rs

crates/mips/tests/asm_errors.rs:
