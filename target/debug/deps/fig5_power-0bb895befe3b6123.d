/root/repo/target/debug/deps/fig5_power-0bb895befe3b6123.d: crates/bench/src/bin/fig5_power.rs

/root/repo/target/debug/deps/fig5_power-0bb895befe3b6123: crates/bench/src/bin/fig5_power.rs

crates/bench/src/bin/fig5_power.rs:
