/root/repo/target/debug/deps/fig5_power-b785e48cd021c4b6.d: crates/bench/src/bin/fig5_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_power-b785e48cd021c4b6.rmeta: crates/bench/src/bin/fig5_power.rs Cargo.toml

crates/bench/src/bin/fig5_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
