/root/repo/target/debug/deps/table2_speedup-54afdf51be65c437.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/debug/deps/table2_speedup-54afdf51be65c437: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
