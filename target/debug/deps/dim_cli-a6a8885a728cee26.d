/root/repo/target/debug/deps/dim_cli-a6a8885a728cee26.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs Cargo.toml

/root/repo/target/debug/deps/libdim_cli-a6a8885a728cee26.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
