/root/repo/target/debug/deps/dim-2b4cdd6c04ba8891.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dim-2b4cdd6c04ba8891: crates/cli/src/main.rs

crates/cli/src/main.rs:
