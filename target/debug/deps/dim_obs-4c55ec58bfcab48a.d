/root/repo/target/debug/deps/dim_obs-4c55ec58bfcab48a.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libdim_obs-4c55ec58bfcab48a.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/jsonl.rs:
crates/obs/src/metrics.rs:
crates/obs/src/probe.rs:
crates/obs/src/profile.rs:
crates/obs/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
