/root/repo/target/debug/deps/table2_speedup-587b44d27eabc1c3.d: crates/bench/src/bin/table2_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_speedup-587b44d27eabc1c3.rmeta: crates/bench/src/bin/table2_speedup.rs Cargo.toml

crates/bench/src/bin/table2_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
