/root/repo/target/debug/deps/edge_cases-5f22ad7f9692416e.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-5f22ad7f9692416e: tests/edge_cases.rs

tests/edge_cases.rs:
