/root/repo/target/debug/deps/warm_start-214b50399b0d0683.d: crates/core/tests/warm_start.rs

/root/repo/target/debug/deps/warm_start-214b50399b0d0683: crates/core/tests/warm_start.rs

crates/core/tests/warm_start.rs:
