/root/repo/target/debug/deps/criterion-b9ec4049d19f6513.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b9ec4049d19f6513.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b9ec4049d19f6513.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
