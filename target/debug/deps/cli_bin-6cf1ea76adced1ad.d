/root/repo/target/debug/deps/cli_bin-6cf1ea76adced1ad.d: crates/cli/tests/cli_bin.rs Cargo.toml

/root/repo/target/debug/deps/libcli_bin-6cf1ea76adced1ad.rmeta: crates/cli/tests/cli_bin.rs Cargo.toml

crates/cli/tests/cli_bin.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_dim=placeholder:dim
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
