/root/repo/target/debug/deps/dim_accel-7739fe1517b34c64.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdim_accel-7739fe1517b34c64.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
