/root/repo/target/debug/deps/dim_accel-e2d5d7f25c34d5a6.d: src/lib.rs

/root/repo/target/debug/deps/dim_accel-e2d5d7f25c34d5a6: src/lib.rs

src/lib.rs:
