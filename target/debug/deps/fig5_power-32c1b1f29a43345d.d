/root/repo/target/debug/deps/fig5_power-32c1b1f29a43345d.d: crates/bench/src/bin/fig5_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_power-32c1b1f29a43345d.rmeta: crates/bench/src/bin/fig5_power.rs Cargo.toml

crates/bench/src/bin/fig5_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
