/root/repo/target/debug/deps/asm_fuzz-2c8e8841748a0324.d: crates/mips/tests/asm_fuzz.rs

/root/repo/target/debug/deps/asm_fuzz-2c8e8841748a0324: crates/mips/tests/asm_fuzz.rs

crates/mips/tests/asm_fuzz.rs:
