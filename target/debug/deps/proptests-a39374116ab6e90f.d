/root/repo/target/debug/deps/proptests-a39374116ab6e90f.d: crates/cgra/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a39374116ab6e90f: crates/cgra/tests/proptests.rs

crates/cgra/tests/proptests.rs:
