/root/repo/target/debug/deps/dim_sweep-2725baa5f10fd4ec.d: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/dim_sweep-2725baa5f10fd4ec: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/fsio.rs:
crates/sweep/src/journal.rs:
crates/sweep/src/pool.rs:
crates/sweep/src/spec.rs:
