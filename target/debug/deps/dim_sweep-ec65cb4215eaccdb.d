/root/repo/target/debug/deps/dim_sweep-ec65cb4215eaccdb.d: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdim_sweep-ec65cb4215eaccdb.rmeta: crates/sweep/src/lib.rs crates/sweep/src/engine.rs crates/sweep/src/fsio.rs crates/sweep/src/journal.rs crates/sweep/src/pool.rs crates/sweep/src/spec.rs Cargo.toml

crates/sweep/src/lib.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/fsio.rs:
crates/sweep/src/journal.rs:
crates/sweep/src/pool.rs:
crates/sweep/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
