/root/repo/target/debug/deps/cli_bin-5becadf7434d5e73.d: crates/cli/tests/cli_bin.rs

/root/repo/target/debug/deps/cli_bin-5becadf7434d5e73: crates/cli/tests/cli_bin.rs

crates/cli/tests/cli_bin.rs:

# env-dep:CARGO_BIN_EXE_dim=/root/repo/target/debug/dim
