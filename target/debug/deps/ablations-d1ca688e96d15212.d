/root/repo/target/debug/deps/ablations-d1ca688e96d15212.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d1ca688e96d15212: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
