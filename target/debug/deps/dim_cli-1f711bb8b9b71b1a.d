/root/repo/target/debug/deps/dim_cli-1f711bb8b9b71b1a.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/libdim_cli-1f711bb8b9b71b1a.rlib: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/libdim_cli-1f711bb8b9b71b1a.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
