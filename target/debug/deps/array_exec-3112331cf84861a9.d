/root/repo/target/debug/deps/array_exec-3112331cf84861a9.d: crates/bench/benches/array_exec.rs Cargo.toml

/root/repo/target/debug/deps/libarray_exec-3112331cf84861a9.rmeta: crates/bench/benches/array_exec.rs Cargo.toml

crates/bench/benches/array_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
