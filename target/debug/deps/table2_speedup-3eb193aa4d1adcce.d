/root/repo/target/debug/deps/table2_speedup-3eb193aa4d1adcce.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/debug/deps/table2_speedup-3eb193aa4d1adcce: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
