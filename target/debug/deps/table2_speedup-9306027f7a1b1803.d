/root/repo/target/debug/deps/table2_speedup-9306027f7a1b1803.d: crates/bench/src/bin/table2_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_speedup-9306027f7a1b1803.rmeta: crates/bench/src/bin/table2_speedup.rs Cargo.toml

crates/bench/src/bin/table2_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
