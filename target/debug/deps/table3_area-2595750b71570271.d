/root/repo/target/debug/deps/table3_area-2595750b71570271.d: crates/bench/src/bin/table3_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_area-2595750b71570271.rmeta: crates/bench/src/bin/table3_area.rs Cargo.toml

crates/bench/src/bin/table3_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
