/root/repo/target/debug/deps/dataflow_equivalence-d13fe2f4eab5e785.d: crates/core/tests/dataflow_equivalence.rs

/root/repo/target/debug/deps/dataflow_equivalence-d13fe2f4eab5e785: crates/core/tests/dataflow_equivalence.rs

crates/core/tests/dataflow_equivalence.rs:
