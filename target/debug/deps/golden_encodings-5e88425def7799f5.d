/root/repo/target/debug/deps/golden_encodings-5e88425def7799f5.d: crates/mips/tests/golden_encodings.rs

/root/repo/target/debug/deps/golden_encodings-5e88425def7799f5: crates/mips/tests/golden_encodings.rs

crates/mips/tests/golden_encodings.rs:
