/root/repo/target/debug/deps/dim_mips-09961d9983a19fd1.d: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libdim_mips-09961d9983a19fd1.rmeta: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs Cargo.toml

crates/mips/src/lib.rs:
crates/mips/src/asm/mod.rs:
crates/mips/src/asm/expand.rs:
crates/mips/src/asm/item.rs:
crates/mips/src/code.rs:
crates/mips/src/disasm.rs:
crates/mips/src/image.rs:
crates/mips/src/inst.rs:
crates/mips/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
