/root/repo/target/debug/deps/prop_differential-797d6b40f203a73d.d: tests/prop_differential.rs

/root/repo/target/debug/deps/prop_differential-797d6b40f203a73d: tests/prop_differential.rs

tests/prop_differential.rs:
