/root/repo/target/debug/deps/dim_workloads-02a943c35727efe5.d: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/adpcm.rs crates/workloads/src/kernels/bitcount.rs crates/workloads/src/kernels/crc32.rs crates/workloads/src/kernels/dijkstra.rs crates/workloads/src/kernels/gsm.rs crates/workloads/src/kernels/jpeg.rs crates/workloads/src/kernels/patricia.rs crates/workloads/src/kernels/quicksort.rs crates/workloads/src/kernels/rijndael.rs crates/workloads/src/kernels/sha.rs crates/workloads/src/kernels/stringsearch.rs crates/workloads/src/kernels/susan.rs Cargo.toml

/root/repo/target/debug/deps/libdim_workloads-02a943c35727efe5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/framework.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/adpcm.rs crates/workloads/src/kernels/bitcount.rs crates/workloads/src/kernels/crc32.rs crates/workloads/src/kernels/dijkstra.rs crates/workloads/src/kernels/gsm.rs crates/workloads/src/kernels/jpeg.rs crates/workloads/src/kernels/patricia.rs crates/workloads/src/kernels/quicksort.rs crates/workloads/src/kernels/rijndael.rs crates/workloads/src/kernels/sha.rs crates/workloads/src/kernels/stringsearch.rs crates/workloads/src/kernels/susan.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/framework.rs:
crates/workloads/src/kernels/mod.rs:
crates/workloads/src/kernels/adpcm.rs:
crates/workloads/src/kernels/bitcount.rs:
crates/workloads/src/kernels/crc32.rs:
crates/workloads/src/kernels/dijkstra.rs:
crates/workloads/src/kernels/gsm.rs:
crates/workloads/src/kernels/jpeg.rs:
crates/workloads/src/kernels/patricia.rs:
crates/workloads/src/kernels/quicksort.rs:
crates/workloads/src/kernels/rijndael.rs:
crates/workloads/src/kernels/sha.rs:
crates/workloads/src/kernels/stringsearch.rs:
crates/workloads/src/kernels/susan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
