/root/repo/target/debug/deps/fig5_power-89412980c0ec95e0.d: crates/bench/src/bin/fig5_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_power-89412980c0ec95e0.rmeta: crates/bench/src/bin/fig5_power.rs Cargo.toml

crates/bench/src/bin/fig5_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
