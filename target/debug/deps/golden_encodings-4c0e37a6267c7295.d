/root/repo/target/debug/deps/golden_encodings-4c0e37a6267c7295.d: crates/mips/tests/golden_encodings.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_encodings-4c0e37a6267c7295.rmeta: crates/mips/tests/golden_encodings.rs Cargo.toml

crates/mips/tests/golden_encodings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
