/root/repo/target/debug/deps/dim_core-3c7d54c8aefc0b56.d: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs Cargo.toml

/root/repo/target/debug/deps/libdim_core-3c7d54c8aefc0b56.rmeta: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/gshare.rs:
crates/core/src/predictor.rs:
crates/core/src/rcache.rs:
crates/core/src/report.rs:
crates/core/src/snapshot.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/tables.rs:
crates/core/src/trace.rs:
crates/core/src/translator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
