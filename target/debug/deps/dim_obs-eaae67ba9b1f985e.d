/root/repo/target/debug/deps/dim_obs-eaae67ba9b1f985e.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

/root/repo/target/debug/deps/libdim_obs-eaae67ba9b1f985e.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

/root/repo/target/debug/deps/libdim_obs-eaae67ba9b1f985e.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/jsonl.rs crates/obs/src/metrics.rs crates/obs/src/probe.rs crates/obs/src/profile.rs crates/obs/src/replay.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/jsonl.rs:
crates/obs/src/metrics.rs:
crates/obs/src/probe.rs:
crates/obs/src/profile.rs:
crates/obs/src/replay.rs:
