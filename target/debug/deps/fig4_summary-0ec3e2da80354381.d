/root/repo/target/debug/deps/fig4_summary-0ec3e2da80354381.d: crates/bench/src/bin/fig4_summary.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_summary-0ec3e2da80354381.rmeta: crates/bench/src/bin/fig4_summary.rs Cargo.toml

crates/bench/src/bin/fig4_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
