/root/repo/target/debug/deps/cli_bin-7086f6afb6bb5a35.d: crates/cli/tests/cli_bin.rs

/root/repo/target/debug/deps/cli_bin-7086f6afb6bb5a35: crates/cli/tests/cli_bin.rs

crates/cli/tests/cli_bin.rs:

# env-dep:CARGO_BIN_EXE_dim=/root/repo/target/debug/dim
