/root/repo/target/debug/deps/fig5_power-be9f12bb867eda71.d: crates/bench/src/bin/fig5_power.rs

/root/repo/target/debug/deps/fig5_power-be9f12bb867eda71: crates/bench/src/bin/fig5_power.rs

crates/bench/src/bin/fig5_power.rs:
