/root/repo/target/debug/deps/fig4_summary-c8b6cdf1622029d6.d: crates/bench/src/bin/fig4_summary.rs

/root/repo/target/debug/deps/fig4_summary-c8b6cdf1622029d6: crates/bench/src/bin/fig4_summary.rs

crates/bench/src/bin/fig4_summary.rs:
