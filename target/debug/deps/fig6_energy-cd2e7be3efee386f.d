/root/repo/target/debug/deps/fig6_energy-cd2e7be3efee386f.d: crates/bench/src/bin/fig6_energy.rs

/root/repo/target/debug/deps/fig6_energy-cd2e7be3efee386f: crates/bench/src/bin/fig6_energy.rs

crates/bench/src/bin/fig6_energy.rs:
