/root/repo/target/debug/deps/dim_mips-7e7ec96ec5f38db4.d: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

/root/repo/target/debug/deps/libdim_mips-7e7ec96ec5f38db4.rlib: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

/root/repo/target/debug/deps/libdim_mips-7e7ec96ec5f38db4.rmeta: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

crates/mips/src/lib.rs:
crates/mips/src/asm/mod.rs:
crates/mips/src/asm/expand.rs:
crates/mips/src/asm/item.rs:
crates/mips/src/code.rs:
crates/mips/src/disasm.rs:
crates/mips/src/image.rs:
crates/mips/src/inst.rs:
crates/mips/src/reg.rs:
