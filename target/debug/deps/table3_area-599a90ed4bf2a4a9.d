/root/repo/target/debug/deps/table3_area-599a90ed4bf2a4a9.d: crates/bench/src/bin/table3_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_area-599a90ed4bf2a4a9.rmeta: crates/bench/src/bin/table3_area.rs Cargo.toml

crates/bench/src/bin/table3_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
