/root/repo/target/debug/deps/dim_energy-ab29e918858d14f7.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/debug/deps/dim_energy-ab29e918858d14f7: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
