/root/repo/target/debug/deps/fig6_energy-bc42223621bf0259.d: crates/bench/src/bin/fig6_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_energy-bc42223621bf0259.rmeta: crates/bench/src/bin/fig6_energy.rs Cargo.toml

crates/bench/src/bin/fig6_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
