/root/repo/target/debug/deps/simulator-d8039104a6232275.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-d8039104a6232275.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
