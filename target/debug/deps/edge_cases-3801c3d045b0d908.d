/root/repo/target/debug/deps/edge_cases-3801c3d045b0d908.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-3801c3d045b0d908.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
