/root/repo/target/debug/deps/dataflow_equivalence-85d5d5157e79c932.d: crates/core/tests/dataflow_equivalence.rs

/root/repo/target/debug/deps/dataflow_equivalence-85d5d5157e79c932: crates/core/tests/dataflow_equivalence.rs

crates/core/tests/dataflow_equivalence.rs:
