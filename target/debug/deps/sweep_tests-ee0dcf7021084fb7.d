/root/repo/target/debug/deps/sweep_tests-ee0dcf7021084fb7.d: crates/sweep/tests/sweep_tests.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_tests-ee0dcf7021084fb7.rmeta: crates/sweep/tests/sweep_tests.rs Cargo.toml

crates/sweep/tests/sweep_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
