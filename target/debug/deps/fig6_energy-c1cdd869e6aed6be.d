/root/repo/target/debug/deps/fig6_energy-c1cdd869e6aed6be.d: crates/bench/src/bin/fig6_energy.rs

/root/repo/target/debug/deps/fig6_energy-c1cdd869e6aed6be: crates/bench/src/bin/fig6_energy.rs

crates/bench/src/bin/fig6_energy.rs:
