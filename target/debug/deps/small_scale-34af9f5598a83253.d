/root/repo/target/debug/deps/small_scale-34af9f5598a83253.d: crates/workloads/tests/small_scale.rs Cargo.toml

/root/repo/target/debug/deps/libsmall_scale-34af9f5598a83253.rmeta: crates/workloads/tests/small_scale.rs Cargo.toml

crates/workloads/tests/small_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
