/root/repo/target/debug/deps/table3_area-cde076a66a7debbd.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/debug/deps/table3_area-cde076a66a7debbd: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
