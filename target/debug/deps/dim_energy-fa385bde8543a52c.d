/root/repo/target/debug/deps/dim_energy-fa385bde8543a52c.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/debug/deps/libdim_energy-fa385bde8543a52c.rlib: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/debug/deps/libdim_energy-fa385bde8543a52c.rmeta: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
