/root/repo/target/debug/deps/proptests-14ef6becf7958919.d: crates/mips/tests/proptests.rs

/root/repo/target/debug/deps/proptests-14ef6becf7958919: crates/mips/tests/proptests.rs

crates/mips/tests/proptests.rs:
