/root/repo/target/debug/deps/array_exec-12a5983f6232c7ca.d: crates/bench/benches/array_exec.rs Cargo.toml

/root/repo/target/debug/deps/libarray_exec-12a5983f6232c7ca.rmeta: crates/bench/benches/array_exec.rs Cargo.toml

crates/bench/benches/array_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
