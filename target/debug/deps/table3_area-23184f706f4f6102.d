/root/repo/target/debug/deps/table3_area-23184f706f4f6102.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/debug/deps/table3_area-23184f706f4f6102: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
