/root/repo/target/debug/deps/dim_cli-9c44f81c752f10a5.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/dim_cli-9c44f81c752f10a5: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
