/root/repo/target/debug/deps/characterization-8e38d84b14a99fa3.d: crates/workloads/tests/characterization.rs

/root/repo/target/debug/deps/characterization-8e38d84b14a99fa3: crates/workloads/tests/characterization.rs

crates/workloads/tests/characterization.rs:
