/root/repo/target/debug/deps/table2_speedup-ce41dc05de9306b2.d: crates/bench/src/bin/table2_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_speedup-ce41dc05de9306b2.rmeta: crates/bench/src/bin/table2_speedup.rs Cargo.toml

crates/bench/src/bin/table2_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
