/root/repo/target/debug/deps/disasm_roundtrip-15d55a0ff5cf03c6.d: tests/disasm_roundtrip.rs

/root/repo/target/debug/deps/disasm_roundtrip-15d55a0ff5cf03c6: tests/disasm_roundtrip.rs

tests/disasm_roundtrip.rs:
