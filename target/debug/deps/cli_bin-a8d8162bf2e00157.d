/root/repo/target/debug/deps/cli_bin-a8d8162bf2e00157.d: crates/cli/tests/cli_bin.rs Cargo.toml

/root/repo/target/debug/deps/libcli_bin-a8d8162bf2e00157.rmeta: crates/cli/tests/cli_bin.rs Cargo.toml

crates/cli/tests/cli_bin.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_dim=placeholder:dim
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
