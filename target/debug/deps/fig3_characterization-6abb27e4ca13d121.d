/root/repo/target/debug/deps/fig3_characterization-6abb27e4ca13d121.d: crates/bench/src/bin/fig3_characterization.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_characterization-6abb27e4ca13d121.rmeta: crates/bench/src/bin/fig3_characterization.rs Cargo.toml

crates/bench/src/bin/fig3_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
