/root/repo/target/debug/deps/dim_core-599167a2d8690923.d: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/libdim_core-599167a2d8690923.rlib: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/libdim_core-599167a2d8690923.rmeta: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/gshare.rs:
crates/core/src/predictor.rs:
crates/core/src/rcache.rs:
crates/core/src/report.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/tables.rs:
crates/core/src/trace.rs:
crates/core/src/translator.rs:
