/root/repo/target/debug/deps/warm_start-c04d10850e78d2dc.d: crates/core/tests/warm_start.rs Cargo.toml

/root/repo/target/debug/deps/libwarm_start-c04d10850e78d2dc.rmeta: crates/core/tests/warm_start.rs Cargo.toml

crates/core/tests/warm_start.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
