/root/repo/target/debug/deps/proptest-836e61fdda081acf.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-836e61fdda081acf.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
