/root/repo/target/debug/deps/dim_mips_sim-f3fe604b71a707dd.d: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/stats.rs crates/mips-sim/src/superscalar.rs

/root/repo/target/debug/deps/libdim_mips_sim-f3fe604b71a707dd.rlib: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/stats.rs crates/mips-sim/src/superscalar.rs

/root/repo/target/debug/deps/libdim_mips_sim-f3fe604b71a707dd.rmeta: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/stats.rs crates/mips-sim/src/superscalar.rs

crates/mips-sim/src/lib.rs:
crates/mips-sim/src/cache.rs:
crates/mips-sim/src/costs.rs:
crates/mips-sim/src/cpu.rs:
crates/mips-sim/src/error.rs:
crates/mips-sim/src/machine.rs:
crates/mips-sim/src/mem.rs:
crates/mips-sim/src/profile.rs:
crates/mips-sim/src/stats.rs:
crates/mips-sim/src/superscalar.rs:
