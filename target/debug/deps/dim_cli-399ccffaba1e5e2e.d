/root/repo/target/debug/deps/dim_cli-399ccffaba1e5e2e.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/dim_cli-399ccffaba1e5e2e: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
