/root/repo/target/debug/deps/table3_area-1187e6b7b210b194.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/debug/deps/table3_area-1187e6b7b210b194: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
