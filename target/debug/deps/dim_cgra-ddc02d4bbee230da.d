/root/repo/target/debug/deps/dim_cgra-ddc02d4bbee230da.d: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libdim_cgra-ddc02d4bbee230da.rmeta: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs Cargo.toml

crates/cgra/src/lib.rs:
crates/cgra/src/config.rs:
crates/cgra/src/encoding.rs:
crates/cgra/src/exec.rs:
crates/cgra/src/render.rs:
crates/cgra/src/shape.rs:
crates/cgra/src/snapshot.rs:
crates/cgra/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
