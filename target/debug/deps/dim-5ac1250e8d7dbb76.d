/root/repo/target/debug/deps/dim-5ac1250e8d7dbb76.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dim-5ac1250e8d7dbb76: crates/cli/src/main.rs

crates/cli/src/main.rs:
