/root/repo/target/debug/deps/disasm_roundtrip-d8180ff7085320ea.d: tests/disasm_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libdisasm_roundtrip-d8180ff7085320ea.rmeta: tests/disasm_roundtrip.rs Cargo.toml

tests/disasm_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
