/root/repo/target/debug/deps/proptests-68bda613c431610a.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-68bda613c431610a: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
