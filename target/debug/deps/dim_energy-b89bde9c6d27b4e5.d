/root/repo/target/debug/deps/dim_energy-b89bde9c6d27b4e5.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libdim_energy-b89bde9c6d27b4e5.rmeta: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
