/root/repo/target/debug/deps/dim_cgra-3414a3fefad74aaa.d: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

/root/repo/target/debug/deps/dim_cgra-3414a3fefad74aaa: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

crates/cgra/src/lib.rs:
crates/cgra/src/config.rs:
crates/cgra/src/encoding.rs:
crates/cgra/src/exec.rs:
crates/cgra/src/render.rs:
crates/cgra/src/shape.rs:
crates/cgra/src/snapshot.rs:
crates/cgra/src/timing.rs:
