/root/repo/target/debug/deps/proptests-d514aea2a1b00e2d.d: crates/energy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d514aea2a1b00e2d: crates/energy/tests/proptests.rs

crates/energy/tests/proptests.rs:
