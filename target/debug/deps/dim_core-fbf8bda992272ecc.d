/root/repo/target/debug/deps/dim_core-fbf8bda992272ecc.d: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/dim_core-fbf8bda992272ecc: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/gshare.rs:
crates/core/src/predictor.rs:
crates/core/src/rcache.rs:
crates/core/src/report.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/tables.rs:
crates/core/src/trace.rs:
crates/core/src/translator.rs:
