/root/repo/target/debug/deps/paper_claims-4d7310da02451409.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-4d7310da02451409.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
