/root/repo/target/debug/deps/characterization-8338987a907ec6fa.d: crates/workloads/tests/characterization.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterization-8338987a907ec6fa.rmeta: crates/workloads/tests/characterization.rs Cargo.toml

crates/workloads/tests/characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
