/root/repo/target/debug/deps/ablations-ea4e6eea1d3d24a6.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ea4e6eea1d3d24a6.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
