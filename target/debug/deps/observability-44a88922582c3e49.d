/root/repo/target/debug/deps/observability-44a88922582c3e49.d: crates/core/tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-44a88922582c3e49.rmeta: crates/core/tests/observability.rs Cargo.toml

crates/core/tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
