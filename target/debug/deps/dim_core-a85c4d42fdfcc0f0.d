/root/repo/target/debug/deps/dim_core-a85c4d42fdfcc0f0.d: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/libdim_core-a85c4d42fdfcc0f0.rlib: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

/root/repo/target/debug/deps/libdim_core-a85c4d42fdfcc0f0.rmeta: crates/core/src/lib.rs crates/core/src/gshare.rs crates/core/src/predictor.rs crates/core/src/rcache.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/tables.rs crates/core/src/trace.rs crates/core/src/translator.rs

crates/core/src/lib.rs:
crates/core/src/gshare.rs:
crates/core/src/predictor.rs:
crates/core/src/rcache.rs:
crates/core/src/report.rs:
crates/core/src/snapshot.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/tables.rs:
crates/core/src/trace.rs:
crates/core/src/translator.rs:
