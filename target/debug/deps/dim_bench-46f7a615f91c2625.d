/root/repo/target/debug/deps/dim_bench-46f7a615f91c2625.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libdim_bench-46f7a615f91c2625.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
