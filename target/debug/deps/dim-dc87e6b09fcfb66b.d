/root/repo/target/debug/deps/dim-dc87e6b09fcfb66b.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdim-dc87e6b09fcfb66b.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
