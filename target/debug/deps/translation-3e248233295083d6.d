/root/repo/target/debug/deps/translation-3e248233295083d6.d: crates/bench/benches/translation.rs Cargo.toml

/root/repo/target/debug/deps/libtranslation-3e248233295083d6.rmeta: crates/bench/benches/translation.rs Cargo.toml

crates/bench/benches/translation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
