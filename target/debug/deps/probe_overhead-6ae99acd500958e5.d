/root/repo/target/debug/deps/probe_overhead-6ae99acd500958e5.d: crates/bench/benches/probe_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libprobe_overhead-6ae99acd500958e5.rmeta: crates/bench/benches/probe_overhead.rs Cargo.toml

crates/bench/benches/probe_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
