/root/repo/target/debug/deps/dim_bench-b4b249d0a560b8a3.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libdim_bench-b4b249d0a560b8a3.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
