/root/repo/target/debug/deps/end_to_end-12be9805f4eb224e.d: crates/bench/benches/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-12be9805f4eb224e.rmeta: crates/bench/benches/end_to_end.rs Cargo.toml

crates/bench/benches/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
