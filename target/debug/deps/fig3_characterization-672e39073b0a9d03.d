/root/repo/target/debug/deps/fig3_characterization-672e39073b0a9d03.d: crates/bench/src/bin/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-672e39073b0a9d03: crates/bench/src/bin/fig3_characterization.rs

crates/bench/src/bin/fig3_characterization.rs:
