/root/repo/target/debug/deps/characterization-a9e00ec27a729fc2.d: crates/workloads/tests/characterization.rs

/root/repo/target/debug/deps/characterization-a9e00ec27a729fc2: crates/workloads/tests/characterization.rs

crates/workloads/tests/characterization.rs:
