/root/repo/target/debug/deps/small_scale-25bcaa6651c82ecf.d: crates/workloads/tests/small_scale.rs

/root/repo/target/debug/deps/small_scale-25bcaa6651c82ecf: crates/workloads/tests/small_scale.rs

crates/workloads/tests/small_scale.rs:
