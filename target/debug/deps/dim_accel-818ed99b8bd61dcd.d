/root/repo/target/debug/deps/dim_accel-818ed99b8bd61dcd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdim_accel-818ed99b8bd61dcd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
