/root/repo/target/debug/deps/characterization-dd0d4897d87cb443.d: crates/bench/benches/characterization.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterization-dd0d4897d87cb443.rmeta: crates/bench/benches/characterization.rs Cargo.toml

crates/bench/benches/characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
