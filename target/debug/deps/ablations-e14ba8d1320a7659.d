/root/repo/target/debug/deps/ablations-e14ba8d1320a7659.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-e14ba8d1320a7659.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
