/root/repo/target/debug/deps/fig3_characterization-9cd4698f6d81e02e.d: crates/bench/src/bin/fig3_characterization.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_characterization-9cd4698f6d81e02e.rmeta: crates/bench/src/bin/fig3_characterization.rs Cargo.toml

crates/bench/src/bin/fig3_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
