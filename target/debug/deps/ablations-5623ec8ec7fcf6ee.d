/root/repo/target/debug/deps/ablations-5623ec8ec7fcf6ee.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-5623ec8ec7fcf6ee: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
