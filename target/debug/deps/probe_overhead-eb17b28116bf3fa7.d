/root/repo/target/debug/deps/probe_overhead-eb17b28116bf3fa7.d: crates/bench/benches/probe_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libprobe_overhead-eb17b28116bf3fa7.rmeta: crates/bench/benches/probe_overhead.rs Cargo.toml

crates/bench/benches/probe_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
