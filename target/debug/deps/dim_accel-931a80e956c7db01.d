/root/repo/target/debug/deps/dim_accel-931a80e956c7db01.d: src/lib.rs

/root/repo/target/debug/deps/libdim_accel-931a80e956c7db01.rlib: src/lib.rs

/root/repo/target/debug/deps/libdim_accel-931a80e956c7db01.rmeta: src/lib.rs

src/lib.rs:
