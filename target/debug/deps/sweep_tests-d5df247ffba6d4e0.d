/root/repo/target/debug/deps/sweep_tests-d5df247ffba6d4e0.d: crates/sweep/tests/sweep_tests.rs

/root/repo/target/debug/deps/sweep_tests-d5df247ffba6d4e0: crates/sweep/tests/sweep_tests.rs

crates/sweep/tests/sweep_tests.rs:
