/root/repo/target/debug/deps/fig4_summary-70622832d5b007fc.d: crates/bench/src/bin/fig4_summary.rs

/root/repo/target/debug/deps/fig4_summary-70622832d5b007fc: crates/bench/src/bin/fig4_summary.rs

crates/bench/src/bin/fig4_summary.rs:
