/root/repo/target/debug/deps/dim-e84c926eebaf44ec.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dim-e84c926eebaf44ec: crates/cli/src/main.rs

crates/cli/src/main.rs:
