/root/repo/target/debug/deps/fig6_energy-2d18bef6f5cb0c25.d: crates/bench/src/bin/fig6_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_energy-2d18bef6f5cb0c25.rmeta: crates/bench/src/bin/fig6_energy.rs Cargo.toml

crates/bench/src/bin/fig6_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
