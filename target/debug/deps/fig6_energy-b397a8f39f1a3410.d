/root/repo/target/debug/deps/fig6_energy-b397a8f39f1a3410.d: crates/bench/src/bin/fig6_energy.rs

/root/repo/target/debug/deps/fig6_energy-b397a8f39f1a3410: crates/bench/src/bin/fig6_energy.rs

crates/bench/src/bin/fig6_energy.rs:
