/root/repo/target/debug/deps/prop_differential-04d3f0475afbde70.d: tests/prop_differential.rs Cargo.toml

/root/repo/target/debug/deps/libprop_differential-04d3f0475afbde70.rmeta: tests/prop_differential.rs Cargo.toml

tests/prop_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
