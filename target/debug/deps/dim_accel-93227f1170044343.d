/root/repo/target/debug/deps/dim_accel-93227f1170044343.d: src/lib.rs

/root/repo/target/debug/deps/dim_accel-93227f1170044343: src/lib.rs

src/lib.rs:
