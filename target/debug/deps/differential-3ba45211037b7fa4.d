/root/repo/target/debug/deps/differential-3ba45211037b7fa4.d: tests/differential.rs

/root/repo/target/debug/deps/differential-3ba45211037b7fa4: tests/differential.rs

tests/differential.rs:
