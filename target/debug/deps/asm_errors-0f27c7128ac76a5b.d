/root/repo/target/debug/deps/asm_errors-0f27c7128ac76a5b.d: crates/mips/tests/asm_errors.rs Cargo.toml

/root/repo/target/debug/deps/libasm_errors-0f27c7128ac76a5b.rmeta: crates/mips/tests/asm_errors.rs Cargo.toml

crates/mips/tests/asm_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
