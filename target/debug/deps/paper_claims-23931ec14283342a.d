/root/repo/target/debug/deps/paper_claims-23931ec14283342a.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-23931ec14283342a: tests/paper_claims.rs

tests/paper_claims.rs:
