/root/repo/target/debug/deps/dim_bench-ff21af04f17bddb2.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/dim_bench-ff21af04f17bddb2: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
