/root/repo/target/debug/deps/fig3_characterization-8adc5e12ae2c90a1.d: crates/bench/src/bin/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-8adc5e12ae2c90a1: crates/bench/src/bin/fig3_characterization.rs

crates/bench/src/bin/fig3_characterization.rs:
