/root/repo/target/debug/deps/dim_bench-2e481e9cadc48731.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/dim_bench-2e481e9cadc48731: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
