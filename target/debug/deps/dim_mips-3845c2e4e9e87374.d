/root/repo/target/debug/deps/dim_mips-3845c2e4e9e87374.d: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

/root/repo/target/debug/deps/dim_mips-3845c2e4e9e87374: crates/mips/src/lib.rs crates/mips/src/asm/mod.rs crates/mips/src/asm/expand.rs crates/mips/src/asm/item.rs crates/mips/src/code.rs crates/mips/src/disasm.rs crates/mips/src/image.rs crates/mips/src/inst.rs crates/mips/src/reg.rs

crates/mips/src/lib.rs:
crates/mips/src/asm/mod.rs:
crates/mips/src/asm/expand.rs:
crates/mips/src/asm/item.rs:
crates/mips/src/code.rs:
crates/mips/src/disasm.rs:
crates/mips/src/image.rs:
crates/mips/src/inst.rs:
crates/mips/src/reg.rs:
