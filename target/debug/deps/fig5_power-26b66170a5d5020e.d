/root/repo/target/debug/deps/fig5_power-26b66170a5d5020e.d: crates/bench/src/bin/fig5_power.rs

/root/repo/target/debug/deps/fig5_power-26b66170a5d5020e: crates/bench/src/bin/fig5_power.rs

crates/bench/src/bin/fig5_power.rs:
