/root/repo/target/debug/deps/dim_cli-abde92416a7bfd6a.d: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/libdim_cli-abde92416a7bfd6a.rlib: crates/cli/src/lib.rs crates/cli/src/debugger.rs

/root/repo/target/debug/deps/libdim_cli-abde92416a7bfd6a.rmeta: crates/cli/src/lib.rs crates/cli/src/debugger.rs

crates/cli/src/lib.rs:
crates/cli/src/debugger.rs:
