/root/repo/target/debug/deps/criterion-0c81772b09292b7f.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-0c81772b09292b7f.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
