/root/repo/target/debug/deps/ablations-1e1f643a7bcac31e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-1e1f643a7bcac31e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
