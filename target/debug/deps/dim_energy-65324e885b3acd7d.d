/root/repo/target/debug/deps/dim_energy-65324e885b3acd7d.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libdim_energy-65324e885b3acd7d.rmeta: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
