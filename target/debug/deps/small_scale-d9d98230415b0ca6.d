/root/repo/target/debug/deps/small_scale-d9d98230415b0ca6.d: crates/workloads/tests/small_scale.rs

/root/repo/target/debug/deps/small_scale-d9d98230415b0ca6: crates/workloads/tests/small_scale.rs

crates/workloads/tests/small_scale.rs:
