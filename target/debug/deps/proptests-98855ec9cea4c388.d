/root/repo/target/debug/deps/proptests-98855ec9cea4c388.d: crates/mips-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-98855ec9cea4c388: crates/mips-sim/tests/proptests.rs

crates/mips-sim/tests/proptests.rs:
