/root/repo/target/debug/deps/proptests-511fd6d9c596882d.d: crates/mips/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-511fd6d9c596882d.rmeta: crates/mips/tests/proptests.rs Cargo.toml

crates/mips/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
