/root/repo/target/debug/deps/table2_speedup-47dd22a933bf9ba5.d: crates/bench/src/bin/table2_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_speedup-47dd22a933bf9ba5.rmeta: crates/bench/src/bin/table2_speedup.rs Cargo.toml

crates/bench/src/bin/table2_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
