/root/repo/target/debug/deps/fig5_power-cde12de7c00fec09.d: crates/bench/src/bin/fig5_power.rs

/root/repo/target/debug/deps/fig5_power-cde12de7c00fec09: crates/bench/src/bin/fig5_power.rs

crates/bench/src/bin/fig5_power.rs:
