/root/repo/target/debug/deps/differential-97d0887d315ac5ef.d: tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-97d0887d315ac5ef.rmeta: tests/differential.rs Cargo.toml

tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
