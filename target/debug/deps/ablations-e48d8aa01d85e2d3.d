/root/repo/target/debug/deps/ablations-e48d8aa01d85e2d3.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-e48d8aa01d85e2d3: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
