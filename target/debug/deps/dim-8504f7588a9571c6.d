/root/repo/target/debug/deps/dim-8504f7588a9571c6.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dim-8504f7588a9571c6: crates/cli/src/main.rs

crates/cli/src/main.rs:
