/root/repo/target/debug/deps/dim_energy-e3add1069ff451fc.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/debug/deps/libdim_energy-e3add1069ff451fc.rlib: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/debug/deps/libdim_energy-e3add1069ff451fc.rmeta: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
