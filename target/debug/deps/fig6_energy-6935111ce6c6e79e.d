/root/repo/target/debug/deps/fig6_energy-6935111ce6c6e79e.d: crates/bench/src/bin/fig6_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_energy-6935111ce6c6e79e.rmeta: crates/bench/src/bin/fig6_energy.rs Cargo.toml

crates/bench/src/bin/fig6_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
