/root/repo/target/debug/deps/dim_bench-6adcfb0cf4d14f5f.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libdim_bench-6adcfb0cf4d14f5f.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libdim_bench-6adcfb0cf4d14f5f.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
