/root/repo/target/debug/deps/proptest-c314456cf0b6407f.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c314456cf0b6407f.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
