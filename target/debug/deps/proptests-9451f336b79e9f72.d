/root/repo/target/debug/deps/proptests-9451f336b79e9f72.d: crates/cgra/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9451f336b79e9f72.rmeta: crates/cgra/tests/proptests.rs Cargo.toml

crates/cgra/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
