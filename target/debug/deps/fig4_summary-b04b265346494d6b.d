/root/repo/target/debug/deps/fig4_summary-b04b265346494d6b.d: crates/bench/src/bin/fig4_summary.rs

/root/repo/target/debug/deps/fig4_summary-b04b265346494d6b: crates/bench/src/bin/fig4_summary.rs

crates/bench/src/bin/fig4_summary.rs:
