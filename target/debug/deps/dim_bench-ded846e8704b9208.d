/root/repo/target/debug/deps/dim_bench-ded846e8704b9208.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libdim_bench-ded846e8704b9208.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libdim_bench-ded846e8704b9208.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
