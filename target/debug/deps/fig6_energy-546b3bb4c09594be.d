/root/repo/target/debug/deps/fig6_energy-546b3bb4c09594be.d: crates/bench/src/bin/fig6_energy.rs

/root/repo/target/debug/deps/fig6_energy-546b3bb4c09594be: crates/bench/src/bin/fig6_energy.rs

crates/bench/src/bin/fig6_energy.rs:
