/root/repo/target/debug/deps/paper_claims-fbcce42335e39db8.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-fbcce42335e39db8: tests/paper_claims.rs

tests/paper_claims.rs:
