/root/repo/target/debug/deps/differential-c33b16be1d240bbb.d: tests/differential.rs

/root/repo/target/debug/deps/differential-c33b16be1d240bbb: tests/differential.rs

tests/differential.rs:
