/root/repo/target/debug/deps/table2_speedup-96cd0d4ac8f6d6df.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/debug/deps/table2_speedup-96cd0d4ac8f6d6df: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
