/root/repo/target/debug/deps/dim-6bede65f8c97caa9.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dim-6bede65f8c97caa9: crates/cli/src/main.rs

crates/cli/src/main.rs:
