/root/repo/target/debug/deps/proptests-08bd94539023b359.d: crates/energy/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-08bd94539023b359.rmeta: crates/energy/tests/proptests.rs Cargo.toml

crates/energy/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
