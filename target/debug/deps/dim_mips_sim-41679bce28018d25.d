/root/repo/target/debug/deps/dim_mips_sim-41679bce28018d25.d: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/stats.rs crates/mips-sim/src/superscalar.rs Cargo.toml

/root/repo/target/debug/deps/libdim_mips_sim-41679bce28018d25.rmeta: crates/mips-sim/src/lib.rs crates/mips-sim/src/cache.rs crates/mips-sim/src/costs.rs crates/mips-sim/src/cpu.rs crates/mips-sim/src/error.rs crates/mips-sim/src/machine.rs crates/mips-sim/src/mem.rs crates/mips-sim/src/profile.rs crates/mips-sim/src/stats.rs crates/mips-sim/src/superscalar.rs Cargo.toml

crates/mips-sim/src/lib.rs:
crates/mips-sim/src/cache.rs:
crates/mips-sim/src/costs.rs:
crates/mips-sim/src/cpu.rs:
crates/mips-sim/src/error.rs:
crates/mips-sim/src/machine.rs:
crates/mips-sim/src/mem.rs:
crates/mips-sim/src/profile.rs:
crates/mips-sim/src/stats.rs:
crates/mips-sim/src/superscalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
