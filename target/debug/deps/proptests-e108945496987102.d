/root/repo/target/debug/deps/proptests-e108945496987102.d: crates/energy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e108945496987102: crates/energy/tests/proptests.rs

crates/energy/tests/proptests.rs:
