/root/repo/target/debug/deps/criterion-984d199cfaf1ca75.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-984d199cfaf1ca75.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
