/root/repo/target/debug/deps/table2_speedup-ca36f7c0111e90b1.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/debug/deps/table2_speedup-ca36f7c0111e90b1: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
