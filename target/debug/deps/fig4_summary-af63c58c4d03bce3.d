/root/repo/target/debug/deps/fig4_summary-af63c58c4d03bce3.d: crates/bench/src/bin/fig4_summary.rs

/root/repo/target/debug/deps/fig4_summary-af63c58c4d03bce3: crates/bench/src/bin/fig4_summary.rs

crates/bench/src/bin/fig4_summary.rs:
