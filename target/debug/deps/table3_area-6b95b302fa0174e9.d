/root/repo/target/debug/deps/table3_area-6b95b302fa0174e9.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/debug/deps/table3_area-6b95b302fa0174e9: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
