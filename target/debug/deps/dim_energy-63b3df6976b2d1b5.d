/root/repo/target/debug/deps/dim_energy-63b3df6976b2d1b5.d: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

/root/repo/target/debug/deps/dim_energy-63b3df6976b2d1b5: crates/energy/src/lib.rs crates/energy/src/area.rs crates/energy/src/power.rs

crates/energy/src/lib.rs:
crates/energy/src/area.rs:
crates/energy/src/power.rs:
