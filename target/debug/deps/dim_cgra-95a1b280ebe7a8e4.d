/root/repo/target/debug/deps/dim_cgra-95a1b280ebe7a8e4.d: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

/root/repo/target/debug/deps/libdim_cgra-95a1b280ebe7a8e4.rlib: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

/root/repo/target/debug/deps/libdim_cgra-95a1b280ebe7a8e4.rmeta: crates/cgra/src/lib.rs crates/cgra/src/config.rs crates/cgra/src/encoding.rs crates/cgra/src/exec.rs crates/cgra/src/render.rs crates/cgra/src/shape.rs crates/cgra/src/snapshot.rs crates/cgra/src/timing.rs

crates/cgra/src/lib.rs:
crates/cgra/src/config.rs:
crates/cgra/src/encoding.rs:
crates/cgra/src/exec.rs:
crates/cgra/src/render.rs:
crates/cgra/src/shape.rs:
crates/cgra/src/snapshot.rs:
crates/cgra/src/timing.rs:
