//! # dim-accel
//!
//! Umbrella crate for the reproduction of *Beck, Rutzig, Gaydadjiev,
//! Carro — "Transparent Reconfigurable Acceleration for Heterogeneous
//! Embedded Applications" (DATE 2008)*.
//!
//! Dynamic Instruction Merging (DIM) is a hardware binary-translation
//! engine running next to a MIPS R3000-class core. It detects sequences
//! of instructions at run time, maps them onto a coarse-grained
//! reconfigurable array, caches the mapping in a PC-indexed
//! reconfiguration cache, and replays it — speculatively across up to
//! three basic blocks — instead of re-executing the original
//! instructions, with zero changes to the program binary.
//!
//! The workspace crates are re-exported here:
//!
//! * [`mips`] — ISA model, assembler, disassembler;
//! * [`sim`] — functional + cycle-timing MIPS simulator;
//! * [`cgra`] — the reconfigurable array model;
//! * [`dim`] — the DIM engine and the coupled [`dim::System`];
//! * [`energy`] — area/power/energy models;
//! * [`workloads`] — the 18 MiBench-like validated benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use dim_accel::prelude::*;
//!
//! // Assemble a program, run it plain and accelerated, compare.
//! let program = assemble("
//!     main: li $t0, 100
//!           li $v0, 0
//!     loop: addu $v0, $v0, $t0
//!           xor  $t1, $v0, $t0
//!           addu $v0, $v0, $t1
//!           addiu $t0, $t0, -1
//!           bnez $t0, loop
//!           break 0
//! ")?;
//!
//! let mut baseline = Machine::load(&program);
//! baseline.run(1_000_000)?;
//!
//! let mut accelerated = System::new(
//!     Machine::load(&program),
//!     SystemConfig::new(ArrayShape::config1(), 64, true),
//! );
//! accelerated.run(1_000_000)?;
//!
//! assert_eq!(accelerated.machine().cpu.reg(Reg::V0), baseline.cpu.reg(Reg::V0));
//! assert!(accelerated.total_cycles() < baseline.stats.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use dim_cgra as cgra;
pub use dim_core as dim;
pub use dim_energy as energy;
pub use dim_mips as mips;
pub use dim_mips_sim as sim;
pub use dim_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use dim_cgra::{ArrayShape, ArrayTiming, Configuration};
    pub use dim_core::{System, SystemConfig};
    pub use dim_energy::{area_report, energy_breakdown, GateCosts, PowerModel};
    pub use dim_mips::asm::assemble;
    pub use dim_mips::{Instruction, Reg};
    pub use dim_mips_sim::{HaltReason, Machine, PipelineCosts, Profiler};
    pub use dim_workloads::{by_name, run_baseline, suite, Scale};
}
