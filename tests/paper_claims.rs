//! Executable versions of the paper's headline claims. These run at
//! `Small` scale so the whole file stays fast; EXPERIMENTS.md records the
//! `Full`-scale numbers. If a model change breaks one of the paper's
//! qualitative results, this file is where it shows up.

use dim_accel::dim::DimStats;
use dim_accel::energy::{energy_breakdown, PowerModel};
use dim_accel::prelude::*;
use dim_accel::workloads::BuiltBenchmark;

fn baseline_cycles(built: &BuiltBenchmark) -> u64 {
    let mut m = Machine::load(&built.program);
    m.run(built.max_steps).expect("baseline runs");
    m.stats.cycles
}

fn accel_cycles(built: &BuiltBenchmark, shape: ArrayShape, slots: usize, spec: bool) -> u64 {
    let mut sys = System::new(
        Machine::load(&built.program),
        SystemConfig::new(shape, slots, spec),
    );
    sys.run(built.max_steps).expect("accelerated runs");
    sys.total_cycles()
}

fn build(name: &str) -> BuiltBenchmark {
    (by_name(name).expect("benchmark exists").build)(Scale::Small)
}

/// §5.2/"abstract": performance improvements "of up to 2.5 times" on
/// average in the most aggressive configuration — ours must at least
/// clear 2x on average with C#3/256/speculation.
#[test]
fn average_speedup_exceeds_two() {
    let mut total = 0.0;
    let mut n = 0;
    for spec in suite() {
        let built = (spec.build)(Scale::Small);
        let base = baseline_cycles(&built);
        let accel = accel_cycles(&built, ArrayShape::config3(), 256, true);
        total += base as f64 / accel as f64;
        n += 1;
    }
    let avg = total / n as f64;
    assert!(avg > 2.0, "average speedup {avg:.2} <= 2.0");
}

/// §5.2: "gains are shown regardless of the instruction/branch rate" —
/// every benchmark must speed up in the most aggressive configuration.
#[test]
fn every_benchmark_gains() {
    for spec in suite() {
        let built = (spec.build)(Scale::Small);
        let base = baseline_cycles(&built);
        let accel = accel_cycles(&built, ArrayShape::config3(), 256, true);
        assert!(
            accel < base,
            "{} did not speed up: {accel} >= {base}",
            spec.name
        );
    }
}

/// §5.2: dataflow algorithms benefit most from more array resources —
/// Rijndael must gain more from C#1→C#3 than RawAudio decode does.
#[test]
fn dataflow_scales_with_array_size_control_does_not() {
    let rijndael = build("rijndael_dec");
    let rb = baseline_cycles(&rijndael) as f64;
    let r_c1 = rb / accel_cycles(&rijndael, ArrayShape::config1(), 64, false) as f64;
    let r_c3 = rb / accel_cycles(&rijndael, ArrayShape::config3(), 64, false) as f64;

    let adpcm = build("rawaudio_dec");
    let ab = baseline_cycles(&adpcm) as f64;
    let a_c1 = ab / accel_cycles(&adpcm, ArrayShape::config1(), 64, false) as f64;
    let a_c3 = ab / accel_cycles(&adpcm, ArrayShape::config3(), 64, false) as f64;

    let rijndael_gain = r_c3 / r_c1;
    let adpcm_gain = a_c3 / a_c1;
    assert!(
        rijndael_gain > 1.05,
        "rijndael should want a bigger array ({r_c1:.2} -> {r_c3:.2})"
    );
    assert!(
        rijndael_gain > adpcm_gain,
        "dataflow must scale more than control ({rijndael_gain:.3} vs {adpcm_gain:.3})"
    );
}

/// §5.2: speculation is what unlocks control-flow code — RawAudio decode
/// and bitcount must gain substantially from it.
#[test]
fn speculation_unlocks_control_flow() {
    for name in ["rawaudio_dec", "bitcount", "dijkstra"] {
        let built = build(name);
        let base = baseline_cycles(&built) as f64;
        let nospec = base / accel_cycles(&built, ArrayShape::config2(), 64, false) as f64;
        let spec = base / accel_cycles(&built, ArrayShape::config2(), 64, true) as f64;
        assert!(
            spec > nospec * 1.2,
            "{name}: speculation {spec:.2} should beat nospec {nospec:.2} by >20%"
        );
    }
}

/// §5.3: the system consumes ~1.7x less energy on average (C#2, 64
/// slots). We require at least 1.4x, and that the instruction-memory
/// energy collapses (the mechanism the paper credits).
#[test]
fn energy_saving_reproduced() {
    let model = PowerModel::default();
    let mut ratio_sum = 0.0;
    let mut n = 0;
    for spec in suite() {
        let built = (spec.build)(Scale::Small);
        let mut base = Machine::load(&built.program);
        base.run(built.max_steps).expect("runs");
        let e_base = energy_breakdown(&base.stats, &DimStats::default(), &model);

        let mut sys = System::new(
            Machine::load(&built.program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        sys.run(built.max_steps).expect("runs");
        let e_accel = energy_breakdown(&sys.machine().stats, sys.stats(), &model);

        assert!(
            e_accel.imem < e_base.imem,
            "{}: I-mem energy must shrink",
            spec.name
        );
        ratio_sum += e_base.total() / e_accel.total();
        n += 1;
    }
    let avg = ratio_sum / n as f64;
    assert!(
        avg > 1.4,
        "average energy saving {avg:.2} below the paper's ballpark"
    );
}

/// §5.4: the whole accelerator is "trivial hardware resources" — about
/// the size of one late-90s superscalar core.
#[test]
fn area_is_modest() {
    let report = area_report(&ArrayShape::config1(), &GateCosts::default());
    let transistors = report.total_transistors(&GateCosts::default());
    // Paper: ~2.66M transistors vs 2.4M for the MIPS R10000.
    assert!(
        (2_000_000..3_500_000).contains(&transistors),
        "{transistors}"
    );
}

/// Table 2's rightmost columns: the best finite configuration must come
/// close to the infinite-resources ideal on average.
#[test]
fn best_config_approaches_ideal() {
    let mut best_sum = 0.0;
    let mut ideal_sum = 0.0;
    for spec in suite() {
        let built = (spec.build)(Scale::Small);
        let base = baseline_cycles(&built) as f64;
        best_sum += base / accel_cycles(&built, ArrayShape::config3(), 256, true) as f64;
        ideal_sum += base / accel_cycles(&built, ArrayShape::infinite(), 1 << 20, true) as f64;
    }
    assert!(
        best_sum > 0.85 * ideal_sum,
        "C#3/256 ({best_sum:.1}) too far from ideal ({ideal_sum:.1})"
    );
}
