//! Edge-case and failure-injection tests for the coupled system: jumps
//! into the middle of cached regions, minimal-size regions, error
//! propagation, and other corners the happy-path suites never touch.

use dim_accel::prelude::*;
use dim_accel::sim::SimError;

fn run_both(src: &str) -> (Machine, System) {
    let program = assemble(src).expect("assembles");
    let mut baseline = Machine::load(&program);
    baseline.run(1_000_000).expect("baseline runs");
    let mut sys = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config1(), 16, true),
    );
    sys.run(1_000_000).expect("accelerated runs");
    for r in Reg::all() {
        assert_eq!(sys.machine().cpu.reg(r), baseline.cpu.reg(r), "{r} differs");
    }
    (baseline, sys)
}

/// Jumping into the *middle* of a region that has a cached configuration
/// must not trigger the configuration (it is keyed by its entry PC) and
/// must stay architecturally exact.
#[test]
fn jump_into_middle_of_cached_region() {
    let (_, sys) = run_both(
        "
        main:   li   $s0, 60
                li   $s1, 0
        outer:  andi $t0, $s0, 3
                beqz $t0, midway_entry
        body:   addu $s1, $s1, $s0
                xor  $t1, $s1, $s0
                addu $s1, $s1, $t1
                sll  $t2, $s1, 1
        mid:    srl  $t3, $t2, 2
                addu $s1, $s1, $t3
                addiu $s0, $s0, -1
                bnez $s0, outer
                break 0
        midway_entry:
                # Enter the hot block at `mid`, skipping its first half.
                li   $t2, 12
                b    mid
        ",
    );
    assert!(
        sys.stats().array_invocations > 0,
        "the hot path must still accelerate"
    );
}

/// The minimal cacheable region (4 instructions) round-trips correctly
/// and actually executes from the cache.
#[test]
fn minimal_four_instruction_region() {
    let (_, sys) = run_both(
        "
        main:  li $s0, 50
        loop:  addu $v0, $v0, $s0
               xor  $v1, $v0, $s0
               sll  $t0, $v1, 1
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0
        ",
    );
    // Speculation merges up to three loop iterations per configuration,
    // so the invocation count is roughly iterations / 3.
    assert!(sys.stats().array_invocations >= 10);
    let covered = sys.stats().array_instructions as f64
        / (sys.stats().array_instructions + sys.machine().stats.instructions) as f64;
    assert!(covered > 0.7, "array coverage {covered:.2}");
}

/// Three-instruction bodies are below the paper's `> 3` threshold: with
/// speculation off, the body alone can never be cached (speculation can
/// legitimately merge several iterations past the bar, so it is
/// disabled here).
#[test]
fn sub_threshold_region_never_cached() {
    let src = "
        main:  li $s0, 50
        loop:  addu $v0, $v0, $s0
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0";
    let program = assemble(src).expect("assembles");
    let mut baseline = Machine::load(&program);
    baseline.run(1_000_000).expect("baseline runs");
    let mut sys = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config1(), 16, false),
    );
    sys.run(1_000_000).expect("accelerated runs");
    assert_eq!(sys.machine().cpu.reg(Reg::V0), baseline.cpu.reg(Reg::V0));
    // Only the run-once prologue region (li + first iteration) clears the
    // "> 3 instructions" bar, and its entry PC is never revisited.
    assert!(sys.stats().configs_built <= 1);
    assert_eq!(sys.stats().array_invocations, 0);
}

/// A region ending because of a `div` (unsupported in the array) still
/// accelerates its prefix, and the div executes on the core.
#[test]
fn div_terminated_region() {
    let (baseline, sys) = run_both(
        "
        main:  li $s0, 40
               li $v0, 1000000
               li $t9, 3
        loop:  addu $t0, $v0, $s0
               xor  $t1, $t0, $s0
               addu $t2, $t1, $t0
               sll  $t3, $t2, 1
               div  $v0, $t2, $t9
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0
        ",
    );
    assert!(sys.stats().array_invocations > 0);
    // Divisions are processor-side work.
    assert!(sys.machine().stats.divs > 0);
    assert_eq!(sys.machine().stats.divs, baseline.stats.divs);
}

/// Misaligned accesses fault identically with and without acceleration.
#[test]
fn misaligned_fault_propagates_identically() {
    let src = "
        main:  li $t0, 0x10000001
               li $s0, 10
        loop:  addu $v0, $v0, $s0
               xor  $v1, $v0, $s0
               addu $v0, $v0, $v1
               addiu $s0, $s0, -1
               bnez $s0, loop
               lw   $t1, 0($t0)
               break 0";
    let program = assemble(src).unwrap();
    let mut baseline = Machine::load(&program);
    let base_err = baseline.run(1_000_000).unwrap_err();
    let mut sys = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config1(), 16, true),
    );
    let sys_err = sys.run(1_000_000).unwrap_err();
    assert_eq!(base_err, sys_err);
    assert!(matches!(
        base_err,
        SimError::Misaligned {
            addr: 0x1000_0001,
            width: 4
        }
    ));
}

/// A `jr` through a register that leaves the text segment errors out the
/// same way on both paths.
#[test]
fn wild_jump_faults_identically() {
    let src = "
        main:  li $t9, 0x00300000
               li $s0, 8
        loop:  addu $v0, $v0, $s0
               xor  $v1, $v0, $s0
               addu $v0, $v0, $v1
               addiu $s0, $s0, -1
               bnez $s0, loop
               jr   $t9";
    let program = assemble(src).unwrap();
    let mut baseline = Machine::load(&program);
    let base_err = baseline.run(1_000_000).unwrap_err();
    let mut sys = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config2(), 64, true),
    );
    let sys_err = sys.run(1_000_000).unwrap_err();
    assert_eq!(base_err, sys_err);
    assert!(matches!(
        base_err,
        SimError::PcOutOfRange { pc: 0x0030_0000 }
    ));
}

/// Stepping a halted machine is reported as an error, not a silent no-op.
#[test]
fn stepping_after_halt_errors() {
    let program = assemble("main: break 0").unwrap();
    let mut machine = Machine::load(&program);
    machine.run(10).unwrap();
    assert!(machine.step().is_err());
}

/// A store inside a configuration followed (in the same configuration)
/// by a load of the same address must forward correctly — program order
/// is preserved through the array's memory ports.
#[test]
fn store_to_load_forwarding_inside_region() {
    let (_, sys) = run_both(
        "
        .data
        cell: .word 0
        .text
        main:  li $s0, 30
               la $s1, cell
        loop:  addu $t0, $v0, $s0
               sw  $t0, 0($s1)
               lw  $t1, 0($s1)
               addu $v0, $t1, $s0
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0
        ",
    );
    assert!(sys.stats().array_loads > 0 && sys.stats().array_stores > 0);
}

/// Zero-iteration dynamic paths: a loop whose body never executes (the
/// guard fails immediately) still translates and never corrupts state.
#[test]
fn zero_iteration_loop() {
    run_both(
        "
        main:  li $s0, 0
               beqz $s0, done
        loop:  addu $v0, $v0, $s0
               xor  $v1, $v0, $s0
               addu $v0, $v0, $v1
               addiu $s0, $s0, -1
               bnez $s0, loop
        done:  li $v1, 77
               break 0
        ",
    );
}

/// HI/LO live across a region boundary: a mult inside a configuration,
/// mflo consumed after a branch in the *next* region.
#[test]
fn hi_lo_cross_region() {
    run_both(
        "
        main:  li $s0, 25
        loop:  mult $v0, $s0
               addiu $t0, $s0, 3
               xor  $t1, $t0, $s0
               addu $t2, $t1, $t0
               bnez $t2, consume
        consume:
               mflo $t3
               addu $v0, $v0, $t3
               mfhi $t4
               xor  $v0, $v0, $t4
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0
        ",
    );
}
