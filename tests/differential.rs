//! The cardinal integration test: every benchmark, across a grid of
//! accelerator settings, must produce byte-identical results to the plain
//! processor — acceleration may only change cycle counts.

use dim_accel::prelude::*;
use dim_accel::workloads::{validate, BuiltBenchmark};

fn check_grid(built: &BuiltBenchmark) {
    let mut baseline = Machine::load(&built.program);
    let halt = baseline.run(built.max_steps).expect("baseline runs");
    assert!(
        matches!(halt, HaltReason::Exit(_)),
        "{}: no halt",
        built.name
    );
    validate(&baseline, built).expect("baseline validates");

    let grid = [
        (ArrayShape::config1(), 16, false),
        (ArrayShape::config1(), 64, true),
        (ArrayShape::config2(), 64, true),
        (ArrayShape::config3(), 256, true),
        (ArrayShape::infinite(), 1 << 20, true),
        (ArrayShape::config2(), 64, true), // cross-checked point
    ];
    for (i, (shape, slots, spec)) in grid.into_iter().enumerate() {
        let mut machine = Machine::load(&built.program);
        if i == 1 {
            // One grid point runs with realistic caches attached: they
            // must change timing only, never results.
            use dim_accel::sim::{CacheConfig, CacheSim};
            machine.icache = Some(CacheSim::new(CacheConfig::icache_4k()));
            machine.dcache = Some(CacheSim::new(CacheConfig::dcache_4k()));
        }
        let mut config = SystemConfig::new(shape, slots, spec);
        if i == 5 {
            // One grid point validates every array invocation against the
            // placement-level dataflow executor (panics on divergence).
            config.cross_check = true;
        }
        if i == 0 {
            // And one runs the LRU replacement policy.
            config.cache_policy = dim_accel::dim::ReplacementPolicy::Lru;
        }
        let mut sys = System::new(machine, config);
        let halt = sys
            .run(built.max_steps)
            .unwrap_or_else(|e| panic!("{}: accelerated run failed: {e}", built.name));
        assert!(
            matches!(halt, HaltReason::Exit(_)),
            "{}: accelerated run hit the step limit",
            built.name
        );
        validate(sys.machine(), built).unwrap_or_else(|e| {
            panic!(
                "{} diverged under shape rows={} slots={slots} spec={spec}: {e}",
                built.name,
                sys.config().shape.rows
            )
        });
        // Architectural state equality, not just output regions.
        for r in Reg::all() {
            assert_eq!(
                sys.machine().cpu.reg(r),
                baseline.cpu.reg(r),
                "{}: register {r} differs (slots={slots}, spec={spec})",
                built.name
            );
        }
        if i != 1 {
            assert!(
                sys.total_cycles() <= baseline.stats.cycles,
                "{}: acceleration made things slower ({} > {})",
                built.name,
                sys.total_cycles(),
                baseline.stats.cycles
            );
        }
        assert_eq!(
            sys.total_instructions(),
            baseline.stats.instructions,
            "{}: retired-instruction count not conserved",
            built.name
        );
    }
}

// One test per benchmark so failures are attributable and runs parallel.
macro_rules! differential {
    ($($test:ident => $name:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                let spec = by_name($name).expect("benchmark exists");
                check_grid(&(spec.build)(Scale::Tiny));
            }
        )+
    };
}

differential! {
    diff_rijndael_enc => "rijndael_enc",
    diff_rijndael_dec => "rijndael_dec",
    diff_gsm_enc => "gsm_enc",
    diff_jpeg_enc => "jpeg_enc",
    diff_sha => "sha",
    diff_susan_smoothing => "susan_smoothing",
    diff_crc32 => "crc32",
    diff_jpeg_dec => "jpeg_dec",
    diff_patricia => "patricia",
    diff_susan_corners => "susan_corners",
    diff_susan_edges => "susan_edges",
    diff_dijkstra => "dijkstra",
    diff_gsm_dec => "gsm_dec",
    diff_bitcount => "bitcount",
    diff_stringsearch => "stringsearch",
    diff_quicksort => "quicksort",
    diff_rawaudio_enc => "rawaudio_enc",
    diff_rawaudio_dec => "rawaudio_dec",
}
