//! Program-scale assembler/disassembler round trip: disassembling every
//! benchmark's text segment and reassembling the listing must reproduce
//! the exact machine words.

use dim_accel::mips::asm::{assemble_with, AsmOptions};
use dim_accel::mips::disassemble_listing;
use dim_accel::prelude::*;

#[test]
fn every_benchmark_listing_reassembles_identically() {
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let program = &built.program;
        let listing = disassemble_listing(program.text_base, &program.text);
        // Strip the `0x........: ` prefixes; branch offsets are numeric
        // and jumps absolute, so the listing is valid standalone source.
        let src: String = listing
            .lines()
            .map(|l| l.split_once(": ").map_or(l, |(_, i)| i))
            .collect::<Vec<_>>()
            .join("\n");
        let reassembled = assemble_with(
            &src,
            AsmOptions {
                text_base: program.text_base,
                data_base: program.data_base,
            },
        )
        .unwrap_or_else(|e| panic!("{}: listing does not reassemble: {e}", spec.name));
        assert_eq!(
            reassembled.text, program.text,
            "{}: reassembled text differs",
            spec.name
        );
    }
}

#[test]
fn labeled_listing_covers_all_words() {
    use dim_accel::mips::disassemble_labeled;
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let labeled = disassemble_labeled(built.program.text_base, &built.program.text);
        let instruction_lines = labeled.lines().filter(|l| l.contains(":   ")).count();
        assert_eq!(
            instruction_lines,
            built.program.text.len(),
            "{}: labeled listing line count",
            spec.name
        );
    }
}
