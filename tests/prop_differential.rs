//! Property-based differential testing: random programs (straight-line
//! blocks, loops, memory traffic, mult/div, data-dependent branches) must
//! produce identical architectural state on the plain pipeline and on the
//! accelerated system, for arbitrary accelerator parameters.

use dim_accel::prelude::*;
use proptest::prelude::*;

/// Registers the generator plays with (avoiding $sp/$ra/$at conventions).
const REGS: [&str; 8] = ["$t0", "$t1", "$t2", "$t3", "$s0", "$s1", "$v0", "$v1"];

#[derive(Debug, Clone)]
enum Op {
    Alu3(&'static str, usize, usize, usize),
    AluImm(&'static str, usize, usize, i16),
    Shift(&'static str, usize, usize, u8),
    MulDiv(&'static str, usize, usize),
    Load(&'static str, usize, usize),
    Store(&'static str, usize, usize),
}

fn any_op() -> impl Strategy<Value = Op> {
    let r = 0usize..REGS.len();
    prop_oneof![
        (
            prop_oneof![
                Just("addu"),
                Just("subu"),
                Just("and"),
                Just("or"),
                Just("xor"),
                Just("nor"),
                Just("slt"),
                Just("sltu")
            ],
            r.clone(),
            r.clone(),
            r.clone()
        )
            .prop_map(|(m, a, b, c)| Op::Alu3(m, a, b, c)),
        (
            prop_oneof![Just("addiu"), Just("slti"), Just("sltiu")],
            r.clone(),
            r.clone(),
            any::<i16>()
        )
            .prop_map(|(m, a, b, i)| Op::AluImm(m, a, b, i)),
        (
            prop_oneof![Just("sll"), Just("srl"), Just("sra")],
            r.clone(),
            r.clone(),
            0u8..32
        )
            .prop_map(|(m, a, b, s)| Op::Shift(m, a, b, s)),
        (
            prop_oneof![Just("mult"), Just("multu"), Just("div"), Just("divu")],
            r.clone(),
            r.clone()
        )
            .prop_map(|(m, a, b)| Op::MulDiv(m, a, b)),
        (
            prop_oneof![Just("lw"), Just("lbu"), Just("lb"), Just("lhu"), Just("lh")],
            r.clone(),
            0usize..16
        )
            .prop_map(|(m, a, s)| Op::Load(m, a, s)),
        (
            prop_oneof![Just("sw"), Just("sb"), Just("sh")],
            r.clone(),
            0usize..16
        )
            .prop_map(|(m, a, s)| Op::Store(m, a, s)),
    ]
}

/// Renders a generated op. Memory ops go through a scratch buffer with
/// aligned slots so no access can fault.
fn render(op: &Op) -> String {
    match op {
        Op::Alu3(m, a, b, c) => format!("{m} {}, {}, {}", REGS[*a], REGS[*b], REGS[*c]),
        Op::AluImm(m, a, b, i) => format!("{m} {}, {}, {}", REGS[*a], REGS[*b], i),
        Op::Shift(m, a, b, s) => format!("{m} {}, {}, {}", REGS[*a], REGS[*b], s),
        Op::MulDiv(m, a, b) => {
            format!(
                "{m} {}, {}\n mflo {}\n mfhi {}",
                REGS[*a], REGS[*b], REGS[*a], REGS[*b]
            )
        }
        Op::Load(m, a, slot) => format!("{m} {}, {}($gp)", REGS[*a], slot * 4),
        Op::Store(m, a, slot) => format!("{m} {}, {}($gp)", REGS[*a], slot * 4),
    }
}

/// Builds a program: init registers, a counted outer loop whose body is
/// the random op sequence plus a data-dependent inner branch, then halt.
fn build_program(seed_vals: &[u32], body: &[Op], iterations: u32) -> String {
    let mut src = String::from(".data\nscratch: .space 64\n.text\nmain:\n la $gp, scratch\n");
    for (i, v) in seed_vals.iter().enumerate() {
        src.push_str(&format!(" li {}, {}\n", REGS[i], *v as i32));
    }
    src.push_str(&format!(" li $s7, {iterations}\nouter:\n"));
    for op in body {
        src.push_str(&format!(" {}\n", render(op)));
    }
    // A data-dependent diamond to exercise speculation.
    src.push_str(
        " andi $t7, $v0, 1\n beqz $t7, skip\n addiu $v0, $v0, 13\n xor $v1, $v1, $v0\nskip:\n",
    );
    src.push_str(" addiu $s7, $s7, -1\n bnez $s7, outer\n break 0\n");
    src
}

fn run_and_compare(src: &str) {
    let program = assemble(src).expect("generated program assembles");
    let mut baseline = Machine::load(&program);
    let halt = baseline.run(4_000_000).expect("baseline runs");
    assert!(matches!(halt, HaltReason::Exit(_)));

    let grid = [
        (ArrayShape::config1(), 4usize, true),
        (ArrayShape::config2(), 64, true),
        (ArrayShape::config1(), 16, false),
        (ArrayShape::infinite(), 1 << 16, true),
    ];
    for (shape, slots, spec) in grid {
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(shape, slots, spec),
        );
        let halt = sys.run(4_000_000).expect("accelerated runs");
        assert!(matches!(halt, HaltReason::Exit(_)));
        for r in Reg::all() {
            assert_eq!(
                sys.machine().cpu.reg(r),
                baseline.cpu.reg(r),
                "register {r} differs (slots={slots}, spec={spec})\n{src}"
            );
        }
        // Scratch memory must match byte for byte.
        let base = program.symbol("scratch").unwrap();
        assert_eq!(
            sys.machine().mem.read_bytes(base, 64),
            baseline.mem.read_bytes(base, 64),
            "scratch memory differs (slots={slots}, spec={spec})\n{src}"
        );
        // Correctness is absolute; performance is only *bounded*: on
        // adversarial tiny regions (e.g. div-terminated two-op bodies)
        // the array's reconfigure/write-back overhead can cost a few
        // percent, which the real hardware would pay too.
        assert!(
            sys.total_cycles() as f64 <= 1.15 * baseline.stats.cycles as f64 + 50.0,
            "accelerated {} vs baseline {}",
            sys.total_cycles(),
            baseline.stats.cycles
        );
        assert_eq!(sys.total_instructions(), baseline.stats.instructions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_loop_programs_accelerate_exactly(
        seeds in prop::collection::vec(any::<u32>(), REGS.len()),
        body in prop::collection::vec(any_op(), 1..24),
        iterations in 1u32..40,
    ) {
        let src = build_program(&seeds, &body, iterations);
        run_and_compare(&src);
    }

    #[test]
    fn random_straightline_programs_accelerate_exactly(
        seeds in prop::collection::vec(any::<u32>(), REGS.len()),
        body in prop::collection::vec(any_op(), 1..64),
    ) {
        // Straight-line: a single huge basic block, executed twice via
        // one backward branch so the translated configuration actually
        // runs from the cache.
        let src = build_program(&seeds, &body, 2);
        run_and_compare(&src);
    }
}
