//! Robustness fuzzing: the assembler must never panic — any input either
//! assembles or returns a line-attributed error.

use dim_mips::asm::assemble;
use proptest::prelude::*;

/// Fragments that stress the tokenizer when recombined.
const FRAGMENTS: &[&str] = &[
    "main:",
    "loop:",
    ".data",
    ".text",
    ".word",
    ".byte",
    ".asciiz",
    ".align",
    ".space",
    ".equ",
    "addu",
    "addiu",
    "lw",
    "sw",
    "beq",
    "bnez",
    "li",
    "la",
    "jal",
    "jr",
    "mult",
    "mflo",
    "$t0",
    "$t1",
    "$sp",
    "$zero",
    "$99",
    "$banana",
    "0x10",
    "-5",
    "0b11",
    "'a'",
    "'\\n'",
    "\"str\"",
    "\"unterminated",
    "4($t1)",
    "sym+4",
    "sym-",
    "(",
    ")",
    ",",
    "#comment",
    ";comment",
    ":",
    "label:",
    "+",
    "-",
    "0x",
    "''",
    "\\",
    "big_number_999999999999999999",
];

fn arbitrary_line() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(FRAGMENTS), 0..6).prop_map(|toks| toks.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Structured-ish garbage built from real lexical fragments.
    #[test]
    fn assembler_never_panics_on_fragment_soup(
        lines in prop::collection::vec(arbitrary_line(), 0..20),
    ) {
        let src = lines.join("\n");
        match assemble(&src) {
            Ok(program) => {
                // Whatever assembled must also decode.
                let _ = program.decoded();
            }
            Err(e) => {
                // Errors carry a plausible line number.
                prop_assert!(e.line() <= lines.len() + 1, "{e}");
            }
        }
    }

    /// Fully arbitrary unicode text.
    #[test]
    fn assembler_never_panics_on_arbitrary_text(src in ".{0,400}") {
        let _ = assemble(&src);
    }

    /// Arbitrary bytes forced into string form via lossy conversion.
    #[test]
    fn assembler_never_panics_on_lossy_bytes(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = assemble(&src);
    }
}
