//! Error-path coverage for the assembler: every diagnostic the assembler
//! can emit should fire from a realistic source line, with the right line
//! number attached.

use dim_mips::asm::assemble;

/// Asserts assembly fails with a message containing `needle`, returning
/// the reported line.
fn assert_asm_error(src: &str, needle: &str) -> usize {
    match assemble(src) {
        Ok(_) => panic!("expected error containing `{needle}` for:\n{src}"),
        Err(e) => {
            assert!(
                e.message().contains(needle),
                "expected `{needle}` in `{}`",
                e.message()
            );
            e.line()
        }
    }
}

#[test]
fn unknown_mnemonic() {
    assert_asm_error("main: fmadd $t0, $t1", "unknown mnemonic");
}

#[test]
fn unknown_register() {
    assert_asm_error("main: addu $t0, $q9, $t1", "unknown register");
}

#[test]
fn wrong_operand_counts() {
    assert_asm_error("main: addu $t0, $t1", "expects 3 operand(s)");
    assert_asm_error("main: jr $ra, $t0", "expects 1 operand(s)");
    assert_asm_error("main: jalr $a0, $a1, $a2", "expects 1 or 2 operands");
}

#[test]
fn operand_kind_mismatches() {
    assert_asm_error("main: addu $t0, $t1, 5", "must be a register");
    assert_asm_error("main: addiu $t0, $t1, $t2", "must be an immediate");
    assert_asm_error("main: lw $t0, $t1", "must be a memory operand");
    assert_asm_error("main: la $t0, 1234", "must be a symbol");
}

#[test]
fn immediate_ranges() {
    assert_asm_error(
        "main: addiu $t0, $zero, 70000",
        "does not fit in 16 signed bits",
    );
    assert_asm_error(
        "main: ori $t0, $zero, 70000",
        "does not fit in 16 unsigned bits",
    );
    assert_asm_error(
        "main: andi $t0, $t0, -5",
        "does not fit in 16 unsigned bits",
    );
    assert_asm_error("main: sll $t0, $t0, 99", "shift amount 99 out of range");
    assert_asm_error("main: li $t0, 5000000000", "does not fit in 32 bits");
    assert_asm_error("main: lw $t0, 40000($t1)", "does not fit in 16 signed bits");
}

#[test]
fn labels() {
    assert_asm_error("a: nop\na: nop", "duplicate label");
    assert_asm_error("main: beq $t0, $t1, nowhere", "undefined symbol");
    assert_asm_error("main: la $t0, nowhere", "undefined symbol");
}

#[test]
fn segment_rules() {
    assert_asm_error(".data\nmain: addu $t0, $t1, $t2", "outside .text");
    assert_asm_error(".text\n.word 1", "outside .data");
    assert_asm_error(".text\n.asciiz \"x\"", "outside .data");
    assert_asm_error(".data\nb: .byte 1\nw: .word 2", "unaligned");
}

#[test]
fn directive_arguments() {
    assert_asm_error(".data\nx: .space -1", "out of range");
    assert_asm_error(".data\n.align 20", "out of range");
    assert_asm_error(".frobnicate 3", "unknown directive");
    assert_asm_error(".data\n.asciiz 42", "expects string literals");
}

#[test]
fn malformed_tokens() {
    assert_asm_error("main: lw $t0, 4($t1", "unterminated memory operand");
    assert_asm_error("main: li $t0, 0xzz", "invalid numeric literal");
    assert_asm_error("main: li $t0, 'ab'", "invalid numeric literal");
    assert_asm_error("main: addu $t0, %x, $t1", "cannot parse operand");
}

#[test]
fn error_lines_are_accurate() {
    let line = assert_asm_error("main: nop\n nop\n bogus $t0\n", "unknown mnemonic");
    assert_eq!(line, 3);
    let line = assert_asm_error("\n\n\n\nmain: addiu $t0, $zero, 99999", "does not fit");
    assert_eq!(line, 5);
}

#[test]
fn branch_and_jump_targets() {
    // Branch out of range is covered in unit tests; here: misaligned and
    // wrong-region jumps via .equ'd absolute addresses.
    assert_asm_error("main: j 0x400002", "not word aligned");
    assert_asm_error("main: j 0x90000000", "outside the current 256MB region");
}
