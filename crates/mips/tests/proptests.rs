//! Property-based tests for the ISA layer: encode/decode and
//! assemble/disassemble round-trips over randomly generated instructions.

use dim_mips::{
    asm::assemble, decode, encode, AluImmOp, AluOp, BranchCond, Instruction, MemWidth, MulDivOp,
    Reg, ShiftOp,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Addu),
        Just(AluOp::Sub),
        Just(AluOp::Subu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn any_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Addiu),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
    ]
}

fn any_shift_op() -> impl Strategy<Value = ShiftOp> {
    prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)]
}

fn any_muldiv_op() -> impl Strategy<Value = MulDivOp> {
    prop_oneof![
        Just(MulDivOp::Mult),
        Just(MulDivOp::Multu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
    ]
}

fn any_branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lez),
        Just(BranchCond::Gtz),
        Just(BranchCond::Ltz),
        Just(BranchCond::Gez),
    ]
}

fn any_mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Half),
        Just(MemWidth::Word)
    ]
}

/// Every representable instruction.
fn any_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs, rt)| Instruction::Alu { op, rd, rs, rt }),
        (any_alu_imm_op(), any_reg(), any_reg(), any::<u16>())
            .prop_map(|(op, rt, rs, imm)| Instruction::AluImm { op, rt, rs, imm }),
        (any_shift_op(), any_reg(), any_reg(), 0u8..32)
            .prop_map(|(op, rd, rt, shamt)| Instruction::Shift { op, rd, rt, shamt }),
        (any_shift_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rt, rs)| Instruction::ShiftVar { op, rd, rt, rs }),
        (any_reg(), any::<u16>()).prop_map(|(rt, imm)| Instruction::Lui { rt, imm }),
        (any_muldiv_op(), any_reg(), any_reg()).prop_map(|(op, rs, rt)| Instruction::MulDiv {
            op,
            rs,
            rt
        }),
        any_reg().prop_map(|rd| Instruction::Mfhi { rd }),
        any_reg().prop_map(|rd| Instruction::Mflo { rd }),
        any_reg().prop_map(|rs| Instruction::Mthi { rs }),
        any_reg().prop_map(|rs| Instruction::Mtlo { rs }),
        (
            any_mem_width(),
            any::<bool>(),
            any_reg(),
            any_reg(),
            any::<i16>()
        )
            .prop_map(|(width, signed, rt, base, offset)| Instruction::Load {
                width,
                signed: signed || width == MemWidth::Word,
                rt,
                base,
                offset
            }),
        (any_mem_width(), any_reg(), any_reg(), any::<i16>()).prop_map(
            |(width, rt, base, offset)| Instruction::Store {
                width,
                rt,
                base,
                offset
            }
        ),
        (any::<bool>(), any_reg(), any_reg(), any::<i16>()).prop_map(|(left, rt, base, offset)| {
            Instruction::LoadUnaligned {
                left,
                rt,
                base,
                offset,
            }
        }),
        (any::<bool>(), any_reg(), any_reg(), any::<i16>()).prop_map(|(left, rt, base, offset)| {
            Instruction::StoreUnaligned {
                left,
                rt,
                base,
                offset,
            }
        }),
        (any_branch_cond(), any_reg(), any_reg(), any::<i16>()).prop_map(
            |(cond, rs, rt, offset)| Instruction::Branch {
                cond,
                rs,
                rt: if cond.uses_rt() { rt } else { Reg::ZERO },
                offset
            }
        ),
        (0u32..(1 << 26)).prop_map(|target| Instruction::J { target }),
        (0u32..(1 << 26)).prop_map(|target| Instruction::Jal { target }),
        any_reg().prop_map(|rs| Instruction::Jr { rs }),
        (any_reg(), any_reg()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
        Just(Instruction::Syscall),
        (0u32..(1 << 20)).prop_map(|code| Instruction::Break { code }),
    ]
}

/// Word loads are canonically `signed: false` in our decoder; normalize the
/// generated instruction the same way the decoder would.
fn canonical(i: Instruction) -> Instruction {
    match i {
        Instruction::Load {
            width: MemWidth::Word,
            rt,
            base,
            offset,
            ..
        } => Instruction::Load {
            width: MemWidth::Word,
            signed: false,
            rt,
            base,
            offset,
        },
        other => other,
    }
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in any_instruction()) {
        let inst = canonical(inst);
        let word = encode(&inst);
        prop_assert_eq!(decode(word).unwrap(), inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decode_encode_is_identity_on_valid_words(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            // Not all fields are significant (e.g. rs of sll); decoding the
            // re-encoded canonical word must give the same instruction.
            let canon = encode(&inst);
            prop_assert_eq!(decode(canon).unwrap(), inst);
        }
    }

    #[test]
    fn disassemble_reassemble_roundtrip(inst in any_instruction()) {
        let inst = canonical(inst);
        // Jumps print absolute targets that need region context; branches
        // print raw offsets, both reassemble standalone at base 0x400000
        // only if the target stays in the region — constrain jumps.
        if let Instruction::J { .. } | Instruction::Jal { .. } = inst {
            return Ok(());
        }
        let text = format!("main: {inst}");
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        prop_assert_eq!(program.text.len(), 1, "`{}` expanded unexpectedly", text);
        prop_assert_eq!(decode(program.text[0]).unwrap(), inst);
    }

    #[test]
    fn reads_writes_exclude_zero(inst in any_instruction()) {
        for loc in inst.reads().iter().chain(inst.writes().iter()) {
            prop_assert_ne!(loc, dim_mips::DataLoc::Gpr(Reg::ZERO));
        }
    }

    #[test]
    fn at_most_two_reads_three_writes(inst in any_instruction()) {
        prop_assert!(inst.reads().len() <= 2);
        prop_assert!(inst.writes().len() <= 2);
    }

    /// Program images round-trip for arbitrary assembled programs.
    #[test]
    fn image_roundtrip_arbitrary_programs(
        n_data in 0usize..64,
        n_insts in 1usize..64,
        seed in any::<u32>(),
    ) {
        let mut src = String::from(".data\nbuf:\n");
        let mut x = seed;
        for _ in 0..n_data {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            src.push_str(&format!(" .word {:#x}\n", x));
        }
        src.push_str(".text\nmain:\n");
        for k in 0..n_insts {
            src.push_str(&format!(" addiu $t{}, $t{}, {}\n", k % 8, (k + 1) % 8, k % 100));
        }
        src.push_str(" break 0\n");
        let program = assemble(&src).expect("assembles");
        let bytes = dim_mips::image::save(&program);
        prop_assert_eq!(dim_mips::image::load(&bytes).unwrap(), program);
    }
}
