//! Golden machine-code encodings: one hand-verified word per instruction
//! form, cross-checked against the MIPS ISA manual encodings. Locks the
//! bit-level ABI of the assembler/encoder.

use dim_mips::asm::assemble;

/// (source line, expected machine word)
const GOLDEN: &[(&str, u32)] = &[
    // R-type ALU: op=0, rs, rt, rd, shamt=0, funct
    ("add $t0, $t1, $t2", 0x012a_4020),
    ("addu $t0, $t1, $t2", 0x012a_4021),
    ("sub $s0, $s1, $s2", 0x0232_8022),
    ("subu $s0, $s1, $s2", 0x0232_8023),
    ("and $v0, $a0, $a1", 0x0085_1024),
    ("or $v0, $a0, $a1", 0x0085_1025),
    ("xor $v0, $a0, $a1", 0x0085_1026),
    ("nor $v0, $a0, $a1", 0x0085_1027),
    ("slt $t5, $t6, $t7", 0x01cf_682a),
    ("sltu $t5, $t6, $t7", 0x01cf_682b),
    // shifts
    ("sll $t0, $t1, 4", 0x0009_4100),
    ("srl $t0, $t1, 4", 0x0009_4102),
    ("sra $t0, $t1, 31", 0x0009_47c3),
    ("sllv $t0, $t1, $t2", 0x0149_4004),
    ("srlv $t0, $t1, $t2", 0x0149_4006),
    ("srav $t0, $t1, $t2", 0x0149_4007),
    // mult/div unit
    ("mult $a0, $a1", 0x0085_0018),
    ("multu $a0, $a1", 0x0085_0019),
    ("div $a0, $a1", 0x0085_001a),
    ("divu $a0, $a1", 0x0085_001b),
    ("mfhi $t0", 0x0000_4010),
    ("mflo $t0", 0x0000_4012),
    ("mthi $t0", 0x0100_0011),
    ("mtlo $t0", 0x0100_0013),
    // I-type ALU
    ("addi $t0, $t1, -1", 0x2128_ffff),
    ("addiu $t0, $t1, 100", 0x2528_0064),
    ("slti $t0, $t1, 5", 0x2928_0005),
    ("sltiu $t0, $t1, 5", 0x2d28_0005),
    ("andi $t0, $t1, 0xff", 0x3128_00ff),
    ("ori $t0, $t1, 0xff", 0x3528_00ff),
    ("xori $t0, $t1, 0xff", 0x3928_00ff),
    ("lui $t0, 0x1001", 0x3c08_1001),
    // memory
    ("lb $t0, 4($sp)", 0x83a8_0004),
    ("lbu $t0, 4($sp)", 0x93a8_0004),
    ("lh $t0, 4($sp)", 0x87a8_0004),
    ("lhu $t0, 4($sp)", 0x97a8_0004),
    ("lw $t0, 4($sp)", 0x8fa8_0004),
    ("sb $t0, 4($sp)", 0xa3a8_0004),
    ("sh $t0, 4($sp)", 0xa7a8_0004),
    ("sw $t0, 4($sp)", 0xafa8_0004),
    ("lwl $t0, 3($a0)", 0x8888_0003),
    ("lwr $t0, 0($a0)", 0x9888_0000),
    ("swl $t0, 3($a0)", 0xa888_0003),
    ("swr $t0, 0($a0)", 0xb888_0000),
    // branches (numeric word offsets)
    ("beq $t0, $t1, -1", 0x1109_ffff),
    ("bne $t0, $t1, 3", 0x1509_0003),
    ("blez $t0, 2", 0x1900_0002),
    ("bgtz $t0, 2", 0x1d00_0002),
    ("bltz $t0, 2", 0x0500_0002),
    ("bgez $t0, 2", 0x0501_0002),
    // jumps (absolute targets)
    ("j 0x00400000", 0x0810_0000),
    ("jal 0x00400000", 0x0c10_0000),
    ("jr $ra", 0x03e0_0008),
    ("jalr $t9", 0x0320_f809),
    // system
    ("syscall", 0x0000_000c),
    ("break 7", 0x0000_01cd),
    ("nop", 0x0000_0000),
];

#[test]
fn golden_words_match_the_isa_manual() {
    for &(src, word) in GOLDEN {
        let program = assemble(&format!("main: {src}")).unwrap_or_else(|e| panic!("`{src}`: {e}"));
        assert_eq!(
            program.text.len(),
            1,
            "`{src}` must encode to exactly one word"
        );
        assert_eq!(
            program.text[0], word,
            "`{src}`: got {:#010x}, want {word:#010x}",
            program.text[0]
        );
    }
}

#[test]
fn golden_words_decode_back_to_same_text() {
    for &(src, word) in GOLDEN {
        let printed = dim_mips::disassemble_word(word);
        // Reassembling the disassembly gives the same word (the text may
        // differ, e.g. `nop` prints as `sll $zero, $zero, 0`).
        let again = assemble(&format!("main: {printed}"))
            .unwrap_or_else(|e| panic!("`{printed}` (from `{src}`): {e}"));
        assert_eq!(again.text[0], word, "`{src}` -> `{printed}`");
    }
}
