//! Textual disassembly of decoded instructions.
//!
//! The output uses the same syntax the [assembler](crate::asm) accepts, so
//! `assemble(disassemble(i)) == i` round-trips (branch/jump targets are
//! printed numerically).

use crate::inst::Instruction;
use std::fmt;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Alu { op, rd, rs, rt } => write!(f, "{} {rd}, {rs}, {rt}", op.mnemonic()),
            AluImm { op, rt, rs, imm } => {
                // Logical immediates are zero-extended: print unsigned.
                // Arithmetic/compare immediates are sign-extended: print signed.
                use crate::inst::AluImmOp::*;
                match op {
                    Andi | Ori | Xori => write!(f, "{} {rt}, {rs}, {imm:#x}", op.mnemonic()),
                    _ => write!(f, "{} {rt}, {rs}, {}", op.mnemonic(), imm as i16),
                }
            }
            Shift { op, rd, rt, shamt } => write!(f, "{} {rd}, {rt}, {shamt}", op.mnemonic()),
            ShiftVar { op, rd, rt, rs } => {
                write!(f, "{} {rd}, {rt}, {rs}", op.variable_mnemonic())
            }
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            MulDiv { op, rs, rt } => write!(f, "{} {rs}, {rt}", op.mnemonic()),
            Mfhi { rd } => write!(f, "mfhi {rd}"),
            Mflo { rd } => write!(f, "mflo {rd}"),
            Mthi { rs } => write!(f, "mthi {rs}"),
            Mtlo { rs } => write!(f, "mtlo {rs}"),
            Load {
                width,
                signed,
                rt,
                base,
                offset,
            } => {
                use crate::inst::MemWidth::*;
                let m = match (width, signed) {
                    (Byte, true) => "lb",
                    (Byte, false) => "lbu",
                    (Half, true) => "lh",
                    (Half, false) => "lhu",
                    (Word, _) => "lw",
                };
                write!(f, "{m} {rt}, {offset}({base})")
            }
            LoadUnaligned {
                left,
                rt,
                base,
                offset,
            } => {
                let m = if left { "lwl" } else { "lwr" };
                write!(f, "{m} {rt}, {offset}({base})")
            }
            StoreUnaligned {
                left,
                rt,
                base,
                offset,
            } => {
                let m = if left { "swl" } else { "swr" };
                write!(f, "{m} {rt}, {offset}({base})")
            }
            Store {
                width,
                rt,
                base,
                offset,
                ..
            } => {
                use crate::inst::MemWidth::*;
                let m = match width {
                    Byte => "sb",
                    Half => "sh",
                    Word => "sw",
                };
                write!(f, "{m} {rt}, {offset}({base})")
            }
            Branch {
                cond,
                rs,
                rt,
                offset,
            } => {
                if cond.uses_rt() {
                    write!(f, "{} {rs}, {rt}, {offset}", cond.mnemonic())
                } else {
                    write!(f, "{} {rs}, {offset}", cond.mnemonic())
                }
            }
            J { target } => write!(f, "j {:#x}", target << 2),
            Jal { target } => write!(f, "jal {:#x}", target << 2),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => {
                if rd == crate::Reg::RA {
                    write!(f, "jalr {rs}")
                } else {
                    write!(f, "jalr {rd}, {rs}")
                }
            }
            Syscall => write!(f, "syscall"),
            Break { code } => write!(f, "break {code}"),
        }
    }
}

/// Disassembles a machine word, falling back to a `.word` directive for
/// undecodable values.
///
/// ```
/// use dim_mips::disassemble_word;
/// assert_eq!(disassemble_word(0x012a_4021), "addu $t0, $t1, $t2");
/// assert_eq!(disassemble_word(0xffff_ffff), ".word 0xffffffff");
/// ```
pub fn disassemble_word(word: u32) -> String {
    match crate::decode(word) {
        Ok(i) => i.to_string(),
        Err(_) => format!(".word {word:#010x}"),
    }
}

/// Disassembles a slice of machine words with addresses, one instruction
/// per line — useful for debugging generated programs.
pub fn disassemble_listing(base: u32, words: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (k, &w) in words.iter().enumerate() {
        let addr = base + 4 * k as u32;
        let _ = writeln!(out, "{addr:#010x}: {}", disassemble_word(w));
    }
    out
}

/// Disassembles with synthesized labels: every branch/jump target inside
/// the listing gets an `L<n>:` label, and control transfers print the
/// label instead of a raw offset — far easier to read than
/// [`disassemble_listing`] for nontrivial programs.
pub fn disassemble_labeled(base: u32, words: &[u32]) -> String {
    use crate::inst::Instruction as I;
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    let decoded: Vec<Option<I>> = words.iter().map(|&w| crate::decode(w).ok()).collect();
    let end = base + 4 * words.len() as u32;
    let mut targets: BTreeMap<u32, usize> = BTreeMap::new();
    for (k, inst) in decoded.iter().enumerate() {
        let pc = base + 4 * k as u32;
        let target = match inst {
            Some(i @ I::Branch { .. }) => i.branch_target(pc),
            Some(i @ (I::J { .. } | I::Jal { .. })) => i.jump_target(pc),
            _ => None,
        };
        if let Some(t) = target {
            if (base..end).contains(&t) {
                let next = targets.len();
                targets.entry(t).or_insert(next);
            }
        }
    }
    // Renumber in address order.
    for (n, (_, v)) in targets.iter_mut().enumerate() {
        *v = n;
    }

    let mut out = String::new();
    for (k, inst) in decoded.iter().enumerate() {
        let pc = base + 4 * k as u32;
        if let Some(&n) = targets.get(&pc) {
            let _ = writeln!(out, "L{n}:");
        }
        let text = match inst {
            Some(i @ I::Branch { .. }) => {
                let t = i.branch_target(pc).expect("branch has target");
                match targets.get(&t) {
                    Some(&n) => {
                        let printed = i.to_string();
                        let head = printed.rsplit_once(' ').map_or("", |(h, _)| h);
                        format!("{head} L{n}")
                    }
                    None => i.to_string(),
                }
            }
            Some(i @ (I::J { .. } | I::Jal { .. })) => {
                let t = i.jump_target(pc).expect("jump has target");
                let m = if matches!(i, I::Jal { .. }) {
                    "jal"
                } else {
                    "j"
                };
                match targets.get(&t) {
                    Some(&n) => format!("{m} L{n}"),
                    None => i.to_string(),
                }
            }
            Some(i) => i.to_string(),
            None => format!(".word {:#010x}", words[k]),
        };
        let _ = writeln!(out, "{pc:#010x}:   {text}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BranchCond as BC, Instruction as I, MemWidth, ShiftOp};
    use crate::Reg;

    #[test]
    fn display_forms() {
        assert_eq!(
            I::Branch {
                cond: BC::Lez,
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: -3
            }
            .to_string(),
            "blez $t0, -3"
        );
        assert_eq!(
            I::Load {
                width: MemWidth::Byte,
                signed: false,
                rt: Reg::T0,
                base: Reg::SP,
                offset: -8
            }
            .to_string(),
            "lbu $t0, -8($sp)"
        );
        assert_eq!(
            I::Shift {
                op: ShiftOp::Sll,
                rd: Reg::T1,
                rt: Reg::T2,
                shamt: 4
            }
            .to_string(),
            "sll $t1, $t2, 4"
        );
        assert_eq!(
            I::Jalr {
                rd: Reg::RA,
                rs: Reg::T9
            }
            .to_string(),
            "jalr $t9"
        );
        assert_eq!(
            I::Jalr {
                rd: Reg::V0,
                rs: Reg::T9
            }
            .to_string(),
            "jalr $v0, $t9"
        );
    }

    #[test]
    fn labeled_listing_names_targets() {
        use crate::asm::assemble;
        let p = assemble(
            "main: li $t0, 3
             loop: addiu $t0, $t0, -1
                   bnez $t0, loop
                   j    main
             ",
        )
        .unwrap();
        let s = disassemble_labeled(p.text_base, &p.text);
        assert!(s.contains("L0:"), "{s}");
        assert!(s.contains("L1:"), "{s}");
        assert!(s.contains("bne $t0, $zero, L1"), "{s}");
        assert!(s.contains("j L0"), "{s}");
    }

    #[test]
    fn listing_includes_addresses() {
        let l = disassemble_listing(0x400000, &[0, 0x012a_4021]);
        assert!(l.contains("0x00400000:"));
        assert!(l.contains("addu $t0, $t1, $t2"));
    }
}
