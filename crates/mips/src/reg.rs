//! General-purpose register names for the MIPS-I integer register file.

use std::fmt;
use std::str::FromStr;

/// One of the 32 MIPS general-purpose registers.
///
/// Register 0 (`$zero`) reads as zero and ignores writes, which the
/// simulator enforces. The type guarantees the index is in `0..32`.
///
/// ```
/// use dim_mips::Reg;
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 29);
/// assert_eq!(sp.to_string(), "$sp");
/// assert_eq!("$t0".parse::<Reg>()?, Reg::T0);
/// # Ok::<(), dim_mips::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// Canonical ABI names indexed by register number.
pub const ABI_NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

impl Reg {
    /// The hard-wired zero register `$zero`.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary `$at` (used by pseudo-instruction expansion).
    pub const AT: Reg = Reg(1);
    /// Result register `$v0`.
    pub const V0: Reg = Reg(2);
    /// Result register `$v1`.
    pub const V1: Reg = Reg(3);
    /// Argument register `$a0`.
    pub const A0: Reg = Reg(4);
    /// Argument register `$a1`.
    pub const A1: Reg = Reg(5);
    /// Argument register `$a2`.
    pub const A2: Reg = Reg(6);
    /// Argument register `$a3`.
    pub const A3: Reg = Reg(7);
    /// Temporary `$t0`.
    pub const T0: Reg = Reg(8);
    /// Temporary `$t1`.
    pub const T1: Reg = Reg(9);
    /// Temporary `$t2`.
    pub const T2: Reg = Reg(10);
    /// Temporary `$t3`.
    pub const T3: Reg = Reg(11);
    /// Temporary `$t4`.
    pub const T4: Reg = Reg(12);
    /// Temporary `$t5`.
    pub const T5: Reg = Reg(13);
    /// Temporary `$t6`.
    pub const T6: Reg = Reg(14);
    /// Temporary `$t7`.
    pub const T7: Reg = Reg(15);
    /// Saved register `$s0`.
    pub const S0: Reg = Reg(16);
    /// Saved register `$s1`.
    pub const S1: Reg = Reg(17);
    /// Saved register `$s2`.
    pub const S2: Reg = Reg(18);
    /// Saved register `$s3`.
    pub const S3: Reg = Reg(19);
    /// Saved register `$s4`.
    pub const S4: Reg = Reg(20);
    /// Saved register `$s5`.
    pub const S5: Reg = Reg(21);
    /// Saved register `$s6`.
    pub const S6: Reg = Reg(22);
    /// Saved register `$s7`.
    pub const S7: Reg = Reg(23);
    /// Temporary `$t8`.
    pub const T8: Reg = Reg(24);
    /// Temporary `$t9`.
    pub const T9: Reg = Reg(25);
    /// Kernel register `$k0`.
    pub const K0: Reg = Reg(26);
    /// Kernel register `$k1`.
    pub const K1: Reg = Reg(27);
    /// Global pointer `$gp`.
    pub const GP: Reg = Reg(28);
    /// Stack pointer `$sp`.
    pub const SP: Reg = Reg(29);
    /// Frame pointer `$fp`.
    pub const FP: Reg = Reg(30);
    /// Return address `$ra`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index` is not in `0..32`.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// Creates a register from the low five bits of a machine-code field.
    pub fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The ABI name without the leading `$`.
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.index()]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.abi_name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    /// The text that failed to parse.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `$t0` / `t0` / `$8` / `8` forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let name = s.strip_prefix('$').unwrap_or(s);
        if let Ok(n) = name.parse::<u8>() {
            return Reg::new(n).ok_or_else(|| ParseRegError { text: s.to_owned() });
        }
        // `$s8` is an accepted alias for `$fp`.
        if name == "s8" {
            return Ok(Reg::FP);
        }
        ABI_NAMES
            .iter()
            .position(|&abi| abi == name)
            .map(|i| Reg(i as u8))
            .ok_or_else(|| ParseRegError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(31), Some(Reg::RA));
        assert_eq!(Reg::new(0), Some(Reg::ZERO));
    }

    #[test]
    fn from_field_masks_to_five_bits() {
        assert_eq!(Reg::from_field(0xffff_ffe9), Reg::new(9).unwrap());
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::ZERO.to_string(), "$zero");
        assert_eq!(Reg::T9.to_string(), "$t9");
        assert_eq!(Reg::FP.to_string(), "$fp");
    }

    #[test]
    fn parse_accepts_numeric_and_abi_forms() {
        assert_eq!("$4".parse::<Reg>().unwrap(), Reg::A0);
        assert_eq!("29".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("$ra".parse::<Reg>().unwrap(), Reg::RA);
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("$s8".parse::<Reg>().unwrap(), Reg::FP);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("$t10".parse::<Reg>().is_err());
        assert!("$32".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn roundtrip_all_registers() {
        for r in Reg::all() {
            let printed = r.to_string();
            assert_eq!(printed.parse::<Reg>().unwrap(), r);
        }
    }
}
