//! # dim-mips
//!
//! MIPS-I integer instruction-set model for the DIM (Dynamic Instruction
//! Merging) reproduction: decoded [`Instruction`]s with dataflow
//! classification, binary [`encode`]/[`decode`], a two-pass
//! [assembler](asm) with pseudo-instruction support, and a
//! [disassembler](disassemble_word).
//!
//! This crate is deliberately independent of any simulator so it can be
//! reused by the execution substrate (`dim-mips-sim`), the
//! binary-translation engine (`dim-core`) and the benchmark suite
//! (`dim-workloads`).
//!
//! ```
//! use dim_mips::{asm::assemble, decode, Instruction};
//!
//! let program = assemble("
//!     main: li   $a0, 3
//!           li   $a1, 4
//!           addu $v0, $a0, $a1
//!           break 0
//! ")?;
//! let first = decode(program.text[0])?;
//! assert_eq!(first.to_string(), "addiu $a0, $zero, 3");
//! assert!(matches!(decode(*program.text.last().unwrap())?, Instruction::Break { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
mod code;
mod disasm;
pub mod image;
mod inst;
mod reg;

pub use code::{decode, encode, DecodeError};
pub use disasm::{disassemble_labeled, disassemble_listing, disassemble_word};
pub use inst::{
    AluImmOp, AluOp, BranchCond, DataLoc, FuClass, Instruction, Locs, MemWidth, MulDivOp, ShiftOp,
};
pub use reg::{ParseRegError, Reg, ABI_NAMES};
