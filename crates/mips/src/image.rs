//! A simple binary container for assembled [`Program`]s, so programs can
//! be assembled once and shipped/loaded without the source — the
//! `dim` CLI's object format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   4 bytes  "DIM1"
//! text_base u32, data_base u32, entry u32
//! text_words u32, data_bytes u32, symbol_count u32
//! text      text_words × u32
//! data      data_bytes × u8
//! symbols   symbol_count × { name_len u32, name bytes, addr u32 }
//! ```

use crate::asm::Program;
use std::collections::HashMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"DIM1";

/// Error deserializing a program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The magic bytes are wrong (not a DIM image).
    BadMagic,
    /// The image is shorter than its headers promise.
    Truncated,
    /// A symbol name is not valid UTF-8.
    BadSymbolName,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadMagic => write!(f, "not a DIM program image (bad magic)"),
            ImageError::Truncated => write!(f, "truncated program image"),
            ImageError::BadSymbolName => write!(f, "symbol name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Serializes a program into the image format.
///
/// ```
/// use dim_mips::asm::assemble;
/// use dim_mips::image;
/// let p = assemble("main: nop\n break 0")?;
/// let bytes = image::save(&p);
/// assert_eq!(image::load(&bytes)?, p);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn save(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    for v in [
        program.text_base,
        program.data_base,
        program.entry,
        program.text.len() as u32,
        program.data.len() as u32,
        program.symbols.len() as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &w in &program.text {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&program.data);
    // Deterministic symbol order.
    let mut symbols: Vec<(&String, &u32)> = program.symbols.iter().collect();
    symbols.sort();
    for (name, &addr) in symbols {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&addr.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.pos.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
}

/// Deserializes a program image.
///
/// # Errors
///
/// [`ImageError`] if the bytes are not a valid image.
pub fn load(bytes: &[u8]) -> Result<Program, ImageError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let text_base = r.u32()?;
    let data_base = r.u32()?;
    let entry = r.u32()?;
    let text_words = r.u32()? as usize;
    let data_bytes = r.u32()? as usize;
    let symbol_count = r.u32()? as usize;
    let mut text = Vec::with_capacity(text_words.min(1 << 22));
    for _ in 0..text_words {
        text.push(r.u32()?);
    }
    let data = r.take(data_bytes)?.to_vec();
    let mut symbols = HashMap::with_capacity(symbol_count.min(1 << 20));
    for _ in 0..symbol_count {
        let len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(len)?)
            .map_err(|_| ImageError::BadSymbolName)?
            .to_owned();
        let addr = r.u32()?;
        symbols.insert(name, addr);
    }
    Ok(Program {
        text_base,
        text,
        data_base,
        data,
        entry,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn roundtrip_program_with_data_and_symbols() {
        let p = assemble(
            ".data
             v: .word 1, 2, 3
             s: .asciiz \"hey\"
             .text
             main: la $t0, v
                   lw $t1, 0($t0)
             loop: addiu $t1, $t1, -1
                   bnez $t1, loop
                   break 0",
        )
        .unwrap();
        let bytes = save(&p);
        assert_eq!(load(&bytes).unwrap(), p);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(load(b"NOPE....").unwrap_err(), ImageError::BadMagic);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let p = assemble("main: nop\n break 0").unwrap();
        let bytes = save(&p);
        for cut in 0..bytes.len() {
            assert!(
                load(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn deterministic_output() {
        let p = assemble("a: nop\nb: nop\nmain: break 0").unwrap();
        assert_eq!(save(&p), save(&p));
    }
}
