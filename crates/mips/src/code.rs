//! Binary encoding and decoding of MIPS-I machine words.

use crate::inst::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth, MulDivOp, ShiftOp};
use crate::Reg;
use std::fmt;

/// Error returned when a 32-bit word is not a recognized MIPS-I instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The offending machine word.
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode machine word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;

fn rs_of(w: u32) -> Reg {
    Reg::from_field(w >> 21)
}
fn rt_of(w: u32) -> Reg {
    Reg::from_field(w >> 16)
}
fn rd_of(w: u32) -> Reg {
    Reg::from_field(w >> 11)
}
fn shamt_of(w: u32) -> u8 {
    ((w >> 6) & 0x1f) as u8
}
fn imm_of(w: u32) -> u16 {
    (w & 0xffff) as u16
}

/// Decodes a 32-bit machine word into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeError`] for words outside the supported MIPS-I integer
/// subset (coprocessor, floating point, unaligned-access helpers, ...).
///
/// ```
/// use dim_mips::{decode, Instruction};
/// // addu $t0, $t1, $t2
/// let inst = decode(0x012a_4021)?;
/// assert!(matches!(inst, Instruction::Alu { .. }));
/// # Ok::<(), dim_mips::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let op = word >> 26;
    let err = Err(DecodeError { word });
    Ok(match op {
        OP_SPECIAL => {
            let funct = word & 0x3f;
            match funct {
                0x00 => Instruction::Shift {
                    op: ShiftOp::Sll,
                    rd: rd_of(word),
                    rt: rt_of(word),
                    shamt: shamt_of(word),
                },
                0x02 => Instruction::Shift {
                    op: ShiftOp::Srl,
                    rd: rd_of(word),
                    rt: rt_of(word),
                    shamt: shamt_of(word),
                },
                0x03 => Instruction::Shift {
                    op: ShiftOp::Sra,
                    rd: rd_of(word),
                    rt: rt_of(word),
                    shamt: shamt_of(word),
                },
                0x04 => Instruction::ShiftVar {
                    op: ShiftOp::Sll,
                    rd: rd_of(word),
                    rt: rt_of(word),
                    rs: rs_of(word),
                },
                0x06 => Instruction::ShiftVar {
                    op: ShiftOp::Srl,
                    rd: rd_of(word),
                    rt: rt_of(word),
                    rs: rs_of(word),
                },
                0x07 => Instruction::ShiftVar {
                    op: ShiftOp::Sra,
                    rd: rd_of(word),
                    rt: rt_of(word),
                    rs: rs_of(word),
                },
                0x08 => Instruction::Jr { rs: rs_of(word) },
                0x09 => Instruction::Jalr {
                    rd: rd_of(word),
                    rs: rs_of(word),
                },
                0x0c => Instruction::Syscall,
                0x0d => Instruction::Break {
                    code: (word >> 6) & 0xfffff,
                },
                0x10 => Instruction::Mfhi { rd: rd_of(word) },
                0x11 => Instruction::Mthi { rs: rs_of(word) },
                0x12 => Instruction::Mflo { rd: rd_of(word) },
                0x13 => Instruction::Mtlo { rs: rs_of(word) },
                0x18 => Instruction::MulDiv {
                    op: MulDivOp::Mult,
                    rs: rs_of(word),
                    rt: rt_of(word),
                },
                0x19 => Instruction::MulDiv {
                    op: MulDivOp::Multu,
                    rs: rs_of(word),
                    rt: rt_of(word),
                },
                0x1a => Instruction::MulDiv {
                    op: MulDivOp::Div,
                    rs: rs_of(word),
                    rt: rt_of(word),
                },
                0x1b => Instruction::MulDiv {
                    op: MulDivOp::Divu,
                    rs: rs_of(word),
                    rt: rt_of(word),
                },
                0x20..=0x27 | 0x2a | 0x2b => {
                    let alu = match funct {
                        0x20 => AluOp::Add,
                        0x21 => AluOp::Addu,
                        0x22 => AluOp::Sub,
                        0x23 => AluOp::Subu,
                        0x24 => AluOp::And,
                        0x25 => AluOp::Or,
                        0x26 => AluOp::Xor,
                        0x27 => AluOp::Nor,
                        0x2a => AluOp::Slt,
                        _ => AluOp::Sltu,
                    };
                    Instruction::Alu {
                        op: alu,
                        rd: rd_of(word),
                        rs: rs_of(word),
                        rt: rt_of(word),
                    }
                }
                _ => return err,
            }
        }
        OP_REGIMM => {
            let code = (word >> 16) & 0x1f;
            let cond = match code {
                0x00 => BranchCond::Ltz,
                0x01 => BranchCond::Gez,
                _ => return err,
            };
            Instruction::Branch {
                cond,
                rs: rs_of(word),
                rt: Reg::ZERO,
                offset: imm_of(word) as i16,
            }
        }
        0x02 => Instruction::J {
            target: word & 0x03ff_ffff,
        },
        0x03 => Instruction::Jal {
            target: word & 0x03ff_ffff,
        },
        0x04 => Instruction::Branch {
            cond: BranchCond::Eq,
            rs: rs_of(word),
            rt: rt_of(word),
            offset: imm_of(word) as i16,
        },
        0x05 => Instruction::Branch {
            cond: BranchCond::Ne,
            rs: rs_of(word),
            rt: rt_of(word),
            offset: imm_of(word) as i16,
        },
        0x06 => Instruction::Branch {
            cond: BranchCond::Lez,
            rs: rs_of(word),
            rt: Reg::ZERO,
            offset: imm_of(word) as i16,
        },
        0x07 => Instruction::Branch {
            cond: BranchCond::Gtz,
            rs: rs_of(word),
            rt: Reg::ZERO,
            offset: imm_of(word) as i16,
        },
        0x08..=0x0e => {
            let alu = match op {
                0x08 => AluImmOp::Addi,
                0x09 => AluImmOp::Addiu,
                0x0a => AluImmOp::Slti,
                0x0b => AluImmOp::Sltiu,
                0x0c => AluImmOp::Andi,
                0x0d => AluImmOp::Ori,
                _ => AluImmOp::Xori,
            };
            Instruction::AluImm {
                op: alu,
                rt: rt_of(word),
                rs: rs_of(word),
                imm: imm_of(word),
            }
        }
        0x0f => Instruction::Lui {
            rt: rt_of(word),
            imm: imm_of(word),
        },
        0x20 => load(word, MemWidth::Byte, true),
        0x22 => Instruction::LoadUnaligned {
            left: true,
            rt: rt_of(word),
            base: rs_of(word),
            offset: imm_of(word) as i16,
        },
        0x26 => Instruction::LoadUnaligned {
            left: false,
            rt: rt_of(word),
            base: rs_of(word),
            offset: imm_of(word) as i16,
        },
        0x2a => Instruction::StoreUnaligned {
            left: true,
            rt: rt_of(word),
            base: rs_of(word),
            offset: imm_of(word) as i16,
        },
        0x2e => Instruction::StoreUnaligned {
            left: false,
            rt: rt_of(word),
            base: rs_of(word),
            offset: imm_of(word) as i16,
        },
        0x21 => load(word, MemWidth::Half, true),
        0x23 => load(word, MemWidth::Word, false),
        0x24 => load(word, MemWidth::Byte, false),
        0x25 => load(word, MemWidth::Half, false),
        0x28 => store(word, MemWidth::Byte),
        0x29 => store(word, MemWidth::Half),
        0x2b => store(word, MemWidth::Word),
        _ => return err,
    })
}

fn load(word: u32, width: MemWidth, signed: bool) -> Instruction {
    Instruction::Load {
        width,
        signed,
        rt: rt_of(word),
        base: rs_of(word),
        offset: imm_of(word) as i16,
    }
}

fn store(word: u32, width: MemWidth) -> Instruction {
    Instruction::Store {
        width,
        rt: rt_of(word),
        base: rs_of(word),
        offset: imm_of(word) as i16,
    }
}

fn r_type(funct: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u8) -> u32 {
    ((rs.index() as u32) << 21)
        | ((rt.index() as u32) << 16)
        | ((rd.index() as u32) << 11)
        | ((shamt as u32) << 6)
        | funct
}

fn i_type(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | ((rs.index() as u32) << 21) | ((rt.index() as u32) << 16) | imm as u32
}

/// Encodes an [`Instruction`] back into its 32-bit machine word.
///
/// Encoding is total: every representable `Instruction` has exactly one
/// canonical word, and `decode(encode(i)) == i` (verified by property
/// tests).
///
/// ```
/// use dim_mips::{decode, encode, Instruction, Reg, AluOp};
/// let i = Instruction::Alu { op: AluOp::Xor, rd: Reg::T0, rs: Reg::T1, rt: Reg::T2 };
/// assert_eq!(decode(encode(&i))?, i);
/// # Ok::<(), dim_mips::DecodeError>(())
/// ```
pub fn encode(inst: &Instruction) -> u32 {
    use Instruction::*;
    match *inst {
        Alu { op, rd, rs, rt } => {
            let funct = match op {
                AluOp::Add => 0x20,
                AluOp::Addu => 0x21,
                AluOp::Sub => 0x22,
                AluOp::Subu => 0x23,
                AluOp::And => 0x24,
                AluOp::Or => 0x25,
                AluOp::Xor => 0x26,
                AluOp::Nor => 0x27,
                AluOp::Slt => 0x2a,
                AluOp::Sltu => 0x2b,
            };
            r_type(funct, rs, rt, rd, 0)
        }
        AluImm { op, rt, rs, imm } => {
            let opc = match op {
                AluImmOp::Addi => 0x08,
                AluImmOp::Addiu => 0x09,
                AluImmOp::Slti => 0x0a,
                AluImmOp::Sltiu => 0x0b,
                AluImmOp::Andi => 0x0c,
                AluImmOp::Ori => 0x0d,
                AluImmOp::Xori => 0x0e,
            };
            i_type(opc, rs, rt, imm)
        }
        Shift { op, rd, rt, shamt } => {
            let funct = match op {
                ShiftOp::Sll => 0x00,
                ShiftOp::Srl => 0x02,
                ShiftOp::Sra => 0x03,
            };
            r_type(funct, Reg::ZERO, rt, rd, shamt)
        }
        ShiftVar { op, rd, rt, rs } => {
            let funct = match op {
                ShiftOp::Sll => 0x04,
                ShiftOp::Srl => 0x06,
                ShiftOp::Sra => 0x07,
            };
            r_type(funct, rs, rt, rd, 0)
        }
        Lui { rt, imm } => i_type(0x0f, Reg::ZERO, rt, imm),
        MulDiv { op, rs, rt } => {
            let funct = match op {
                MulDivOp::Mult => 0x18,
                MulDivOp::Multu => 0x19,
                MulDivOp::Div => 0x1a,
                MulDivOp::Divu => 0x1b,
            };
            r_type(funct, rs, rt, Reg::ZERO, 0)
        }
        Mfhi { rd } => r_type(0x10, Reg::ZERO, Reg::ZERO, rd, 0),
        Mthi { rs } => r_type(0x11, rs, Reg::ZERO, Reg::ZERO, 0),
        Mflo { rd } => r_type(0x12, Reg::ZERO, Reg::ZERO, rd, 0),
        Mtlo { rs } => r_type(0x13, rs, Reg::ZERO, Reg::ZERO, 0),
        Load {
            width,
            signed,
            rt,
            base,
            offset,
        } => {
            let opc = match (width, signed) {
                (MemWidth::Byte, true) => 0x20,
                (MemWidth::Half, true) => 0x21,
                (MemWidth::Word, _) => 0x23,
                (MemWidth::Byte, false) => 0x24,
                (MemWidth::Half, false) => 0x25,
            };
            i_type(opc, base, rt, offset as u16)
        }
        Store {
            width,
            rt,
            base,
            offset,
        } => {
            let opc = match width {
                MemWidth::Byte => 0x28,
                MemWidth::Half => 0x29,
                MemWidth::Word => 0x2b,
            };
            i_type(opc, base, rt, offset as u16)
        }
        LoadUnaligned {
            left,
            rt,
            base,
            offset,
        } => i_type(if left { 0x22 } else { 0x26 }, base, rt, offset as u16),
        StoreUnaligned {
            left,
            rt,
            base,
            offset,
        } => i_type(if left { 0x2a } else { 0x2e }, base, rt, offset as u16),
        Branch {
            cond,
            rs,
            rt,
            offset,
        } => match cond {
            BranchCond::Eq => i_type(0x04, rs, rt, offset as u16),
            BranchCond::Ne => i_type(0x05, rs, rt, offset as u16),
            BranchCond::Lez => i_type(0x06, rs, Reg::ZERO, offset as u16),
            BranchCond::Gtz => i_type(0x07, rs, Reg::ZERO, offset as u16),
            BranchCond::Ltz => i_type(OP_REGIMM, rs, Reg::ZERO, offset as u16),
            BranchCond::Gez => {
                (OP_REGIMM << 26)
                    | ((rs.index() as u32) << 21)
                    | (0x01 << 16)
                    | (offset as u16) as u32
            }
        },
        J { target } => (0x02 << 26) | (target & 0x03ff_ffff),
        Jal { target } => (0x03 << 26) | (target & 0x03ff_ffff),
        Jr { rs } => r_type(0x08, rs, Reg::ZERO, Reg::ZERO, 0),
        Jalr { rd, rs } => r_type(0x09, rs, Reg::ZERO, rd, 0),
        Syscall => 0x0c,
        Break { code } => ((code & 0xfffff) << 6) | 0x0d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction) {
        assert_eq!(decode(encode(&i)).unwrap(), i, "{i:?}");
    }

    #[test]
    fn roundtrip_representative_sample() {
        use Instruction::*;
        let cases = [
            Alu {
                op: AluOp::Addu,
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Alu {
                op: AluOp::Sltu,
                rd: Reg::V0,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            AluImm {
                op: AluImmOp::Addiu,
                rt: Reg::SP,
                rs: Reg::SP,
                imm: 0xfff8,
            },
            AluImm {
                op: AluImmOp::Xori,
                rt: Reg::T3,
                rs: Reg::T4,
                imm: 0x1234,
            },
            Shift {
                op: ShiftOp::Sra,
                rd: Reg::T5,
                rt: Reg::T6,
                shamt: 31,
            },
            ShiftVar {
                op: ShiftOp::Sll,
                rd: Reg::T7,
                rt: Reg::T8,
                rs: Reg::T9,
            },
            Lui {
                rt: Reg::GP,
                imm: 0x1001,
            },
            MulDiv {
                op: MulDivOp::Divu,
                rs: Reg::S0,
                rt: Reg::S1,
            },
            Mfhi { rd: Reg::S2 },
            Mflo { rd: Reg::S3 },
            Mthi { rs: Reg::S4 },
            Mtlo { rs: Reg::S5 },
            Load {
                width: MemWidth::Byte,
                signed: true,
                rt: Reg::T0,
                base: Reg::SP,
                offset: -4,
            },
            Load {
                width: MemWidth::Half,
                signed: false,
                rt: Reg::T1,
                base: Reg::GP,
                offset: 100,
            },
            Load {
                width: MemWidth::Word,
                signed: false,
                rt: Reg::T2,
                base: Reg::FP,
                offset: 0,
            },
            Store {
                width: MemWidth::Word,
                rt: Reg::RA,
                base: Reg::SP,
                offset: 28,
            },
            Store {
                width: MemWidth::Byte,
                rt: Reg::V1,
                base: Reg::A3,
                offset: -1,
            },
            Branch {
                cond: BranchCond::Eq,
                rs: Reg::T0,
                rt: Reg::T1,
                offset: -5,
            },
            Branch {
                cond: BranchCond::Ltz,
                rs: Reg::A2,
                rt: Reg::ZERO,
                offset: 12,
            },
            Branch {
                cond: BranchCond::Gez,
                rs: Reg::A2,
                rt: Reg::ZERO,
                offset: -12,
            },
            Branch {
                cond: BranchCond::Lez,
                rs: Reg::K0,
                rt: Reg::ZERO,
                offset: 3,
            },
            Branch {
                cond: BranchCond::Gtz,
                rs: Reg::K1,
                rt: Reg::ZERO,
                offset: 3,
            },
            J {
                target: 0x0010_0000,
            },
            Jal {
                target: 0x03ff_ffff,
            },
            Jr { rs: Reg::RA },
            Jalr {
                rd: Reg::RA,
                rs: Reg::T9,
            },
            Syscall,
            Break { code: 0x7 },
            Instruction::NOP,
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn decode_known_words() {
        // Classic encodings cross-checked against the MIPS ISA manual.
        // addu $t0,$t1,$t2 = 000000 01001 01010 01000 00000 100001
        assert_eq!(
            decode(0x012a_4021).unwrap(),
            Instruction::Alu {
                op: AluOp::Addu,
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2
            }
        );
        // lw $t0, 4($sp)
        assert_eq!(
            decode(0x8fa8_0004).unwrap(),
            Instruction::Load {
                width: MemWidth::Word,
                signed: false,
                rt: Reg::T0,
                base: Reg::SP,
                offset: 4
            }
        );
        // syscall
        assert_eq!(decode(0x0000_000c).unwrap(), Instruction::Syscall);
        // sll $zero,$zero,0 == canonical nop == word 0
        assert_eq!(decode(0).unwrap(), Instruction::NOP);
    }

    #[test]
    fn decode_rejects_unknown() {
        assert!(decode(0xffff_ffff).is_err()); // opcode 0x3f
        assert!(decode(0x4000_0000).is_err()); // coprocessor 0
        assert!(decode(0x0000_003f).is_err()); // SPECIAL funct 0x3f
        let e = decode(0x4000_0000).unwrap_err();
        assert_eq!(e.word(), 0x4000_0000);
        assert!(e.to_string().contains("0x40000000"));
    }
}
