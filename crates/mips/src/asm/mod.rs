//! Two-pass macro assembler for the MIPS-I subset.
//!
//! Supports labels, the usual data directives (`.text`, `.data`, `.word`,
//! `.half`, `.byte`, `.ascii`, `.asciiz`, `.space`, `.align`, `.globl`),
//! numeric literals in decimal/hex/binary/char form, and the common
//! pseudo-instructions (`li`, `la`, `move`, `b`, `beqz`, `bnez`,
//! `blt`/`bge`/`bgt`/`ble` and unsigned variants, `neg`, `not`, `mul`,
//! `div rd,rs,rt`, `rem`, `nop`).
//!
//! ```
//! use dim_mips::asm::assemble;
//! let program = assemble("
//!     .text
//! main:
//!     li   $t0, 10
//!     li   $t1, 0
//! loop:
//!     addu $t1, $t1, $t0
//!     addiu $t0, $t0, -1
//!     bnez $t0, loop
//!     break 0
//! ")?;
//! assert!(program.text.len() >= 6);
//! # Ok::<(), dim_mips::asm::AsmError>(())
//! ```

mod expand;
mod item;

use crate::Instruction;
use item::{DirArg, Stmt};
use std::collections::HashMap;
use std::fmt;

/// Default base address of the text segment.
pub const DEFAULT_TEXT_BASE: u32 = 0x0040_0000;
/// Default base address of the data segment.
pub const DEFAULT_DATA_BASE: u32 = 0x1001_0000;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error (0 when not attributable).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description without the line number.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembler options (segment base addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmOptions {
    /// Base address for `.text`.
    pub text_base: u32,
    /// Base address for `.data`.
    pub data_base: u32,
}

impl Default for AsmOptions {
    fn default() -> Self {
        AsmOptions {
            text_base: DEFAULT_TEXT_BASE,
            data_base: DEFAULT_DATA_BASE,
        }
    }
}

/// An assembled program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Initialized data bytes.
    pub data: Vec<u8>,
    /// Entry point (the `main` label if present, else `text_base`).
    pub entry: u32,
    /// All label addresses.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Decodes the text segment back into instructions (for inspection).
    pub fn decoded(&self) -> Vec<Instruction> {
        self.text
            .iter()
            .map(|&w| crate::decode(w).expect("assembled words always decode"))
            .collect()
    }
}

/// Collects `.equ NAME, value` definitions and folds every use of the
/// constant (operands, memory offsets, data arguments) into plain
/// numbers, so the rest of the assembler never sees them as symbols.
/// Definitions may appear anywhere in the file; redefinition is an error.
fn substitute_constants(stmts: &mut [Stmt]) -> Result<(), AsmError> {
    let mut consts: HashMap<String, i64> = HashMap::new();
    for stmt in stmts.iter() {
        if let Stmt::Directive { name, args, line } = stmt {
            if name == "equ" {
                let (DirArg::Sym(cname, 0), Some(DirArg::Num(v))) =
                    (args.first().cloned().unwrap_or(DirArg::Num(0)), args.get(1))
                else {
                    return Err(AsmError::new(*line, ".equ expects `name, numeric-value`"));
                };
                if consts.insert(cname.clone(), *v).is_some() {
                    return Err(AsmError::new(
                        *line,
                        format!("constant `{cname}` redefined"),
                    ));
                }
            }
        }
    }
    if consts.is_empty() {
        return Ok(());
    }
    for stmt in stmts.iter_mut() {
        match stmt {
            Stmt::Op { operands, .. } => {
                for op in operands.iter_mut() {
                    match op {
                        item::Operand::Sym { name, addend } => {
                            if let Some(&v) = consts.get(name.as_str()) {
                                *op = item::Operand::Imm(v + *addend);
                            }
                        }
                        item::Operand::Mem {
                            sym: Some(name),
                            offset,
                            base,
                        } => {
                            if let Some(&v) = consts.get(name.as_str()) {
                                *op = item::Operand::Mem {
                                    sym: None,
                                    offset: v + *offset,
                                    base: *base,
                                };
                            }
                        }
                        _ => {}
                    }
                }
            }
            Stmt::Directive { args, .. } => {
                for a in args.iter_mut() {
                    if let DirArg::Sym(name, add) = a {
                        if let Some(&v) = consts.get(name.as_str()) {
                            *a = DirArg::Num(v + *add);
                        }
                    }
                }
            }
            Stmt::Label { name, line } => {
                if consts.contains_key(name.as_str()) {
                    return Err(AsmError::new(
                        *line,
                        format!("`{name}` is both a label and a constant"),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// Assembles `src` with default segment bases.
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the first offending source line
/// (unknown mnemonic, malformed operand, undefined or duplicate label,
/// out-of-range immediate or branch, data directive in `.text`, ...).
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    assemble_with(src, AsmOptions::default())
}

/// Assembles `src` with explicit options. See [`assemble`].
pub fn assemble_with(src: &str, opts: AsmOptions) -> Result<Program, AsmError> {
    let mut stmts = item::parse_source(src)?;
    substitute_constants(&mut stmts)?;

    // Pass 1: assign addresses to labels.
    let mut symbols: HashMap<String, u32> = HashMap::new();
    {
        let mut seg = Segment::Text;
        let mut text_pc = opts.text_base;
        let mut data_pc = opts.data_base;
        for stmt in &stmts {
            match stmt {
                Stmt::Label { name, line } => {
                    let addr = match seg {
                        Segment::Text => text_pc,
                        Segment::Data => data_pc,
                    };
                    if symbols.insert(name.clone(), addr).is_some() {
                        return Err(AsmError::new(*line, format!("duplicate label `{name}`")));
                    }
                }
                Stmt::Op {
                    mnemonic,
                    operands,
                    line,
                } => {
                    if seg != Segment::Text {
                        return Err(AsmError::new(*line, "instruction outside .text segment"));
                    }
                    // Length is resolver-independent; resolve every symbol to
                    // the instruction's own address so offsets stay encodable.
                    let insts =
                        expand::encode_op(mnemonic, operands, text_pc, *line, &mut |_, _| {
                            Ok(text_pc)
                        })?;
                    text_pc += 4 * insts.len() as u32;
                }
                Stmt::Directive { name, args, line } => {
                    apply_directive(
                        name,
                        args,
                        *line,
                        &mut seg,
                        &mut text_pc,
                        &mut data_pc,
                        opts,
                        None,
                    )?;
                }
            }
        }
    }

    // Pass 2: emit.
    let mut text: Vec<u32> = Vec::new();
    let mut data: Vec<u8> = Vec::new();
    {
        let mut seg = Segment::Text;
        let mut text_pc = opts.text_base;
        let mut data_pc = opts.data_base;
        for stmt in &stmts {
            match stmt {
                Stmt::Label { .. } => {}
                Stmt::Op {
                    mnemonic,
                    operands,
                    line,
                } => {
                    let insts =
                        expand::encode_op(mnemonic, operands, text_pc, *line, &mut |name, add| {
                            let base = symbols.get(name).copied().ok_or_else(|| {
                                AsmError::new(*line, format!("undefined symbol `{name}`"))
                            })?;
                            Ok(base.wrapping_add(add as u32))
                        })?;
                    for inst in &insts {
                        text.push(crate::encode(inst));
                    }
                    text_pc += 4 * insts.len() as u32;
                }
                Stmt::Directive { name, args, line } => {
                    apply_directive(
                        name,
                        args,
                        *line,
                        &mut seg,
                        &mut text_pc,
                        &mut data_pc,
                        opts,
                        Some((&mut data, &symbols)),
                    )?;
                }
            }
        }
    }

    let entry = symbols
        .get("main")
        .or_else(|| symbols.get("_start"))
        .copied()
        .unwrap_or(opts.text_base);

    Ok(Program {
        text_base: opts.text_base,
        text,
        data_base: opts.data_base,
        data,
        entry,
        symbols,
    })
}

/// Applies one directive, updating segment state. When `sink` is provided
/// (pass 2) data bytes are materialized; otherwise only counters move.
#[allow(clippy::too_many_arguments)]
fn apply_directive(
    name: &str,
    args: &[DirArg],
    line: usize,
    seg: &mut Segment,
    text_pc: &mut u32,
    data_pc: &mut u32,
    opts: AsmOptions,
    mut sink: Option<(&mut Vec<u8>, &HashMap<String, u32>)>,
) -> Result<(), AsmError> {
    let numeric = |a: &DirArg,
                   sink: &Option<(&mut Vec<u8>, &HashMap<String, u32>)>|
     -> Result<i64, AsmError> {
        match a {
            DirArg::Num(n) => Ok(*n),
            DirArg::Sym(s, add) => match sink {
                Some((_, symbols)) => symbols
                    .get(s)
                    .map(|&v| v as i64 + add)
                    .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{s}`"))),
                // Pass 1: value irrelevant, only the size matters.
                None => Ok(0),
            },
            DirArg::Str(_) => Err(AsmError::new(line, "unexpected string argument")),
        }
    };
    let emit = |bytes: &[u8],
                data_pc: &mut u32,
                sink: &mut Option<(&mut Vec<u8>, &HashMap<String, u32>)>| {
        if let Some((data, _)) = sink {
            data.extend_from_slice(bytes);
        }
        *data_pc += bytes.len() as u32;
    };
    match name {
        "text" => {
            *seg = Segment::Text;
            if let Some(a) = args.first() {
                let addr = numeric(a, &sink)? as u32;
                if sink.is_none() && addr != opts.text_base {
                    return Err(AsmError::new(line, "relocating .text is not supported"));
                }
                let _ = text_pc;
            }
        }
        "data" => {
            *seg = Segment::Data;
            if let Some(a) = args.first() {
                let addr = numeric(a, &sink)? as u32;
                if sink.is_none() && addr != opts.data_base {
                    return Err(AsmError::new(line, "relocating .data is not supported"));
                }
            }
        }
        "globl" | "global" | "ent" | "end" | "set" | "equ" => {}
        "word" | "half" | "byte" => {
            if *seg != Segment::Data {
                return Err(AsmError::new(
                    line,
                    format!(".{name} outside .data segment"),
                ));
            }
            let width = match name {
                "word" => 4,
                "half" => 2,
                _ => 1,
            };
            // Labels bind before their directive, so silently padding here
            // would leave them pointing at the padding. Require explicit
            // `.align` instead.
            if !(*data_pc).is_multiple_of(width) {
                return Err(AsmError::new(
                    line,
                    format!(".{name} at unaligned address {data_pc:#x}; insert `.align` first"),
                ));
            }
            for a in args {
                let v = numeric(a, &sink)?;
                let bytes = (v as u64).to_le_bytes();
                emit(&bytes[..width as usize], data_pc, &mut sink);
            }
        }
        "ascii" | "asciiz" => {
            if *seg != Segment::Data {
                return Err(AsmError::new(
                    line,
                    format!(".{name} outside .data segment"),
                ));
            }
            for a in args {
                let DirArg::Str(s) = a else {
                    return Err(AsmError::new(
                        line,
                        format!(".{name} expects string literals"),
                    ));
                };
                emit(s.as_bytes(), data_pc, &mut sink);
                if name == "asciiz" {
                    emit(&[0], data_pc, &mut sink);
                }
            }
        }
        "space" | "skip" => {
            if *seg != Segment::Data {
                return Err(AsmError::new(
                    line,
                    format!(".{name} outside .data segment"),
                ));
            }
            let n = numeric(
                args.first()
                    .ok_or_else(|| AsmError::new(line, ".space requires a size"))?,
                &sink,
            )?;
            if !(0..=(1 << 24)).contains(&n) {
                return Err(AsmError::new(line, format!(".space size {n} out of range")));
            }
            for _ in 0..n {
                emit(&[0], data_pc, &mut sink);
            }
        }
        "align" => {
            if *seg != Segment::Data {
                return Err(AsmError::new(line, ".align outside .data segment"));
            }
            let n = numeric(
                args.first()
                    .ok_or_else(|| AsmError::new(line, ".align requires an exponent"))?,
                &sink,
            )?;
            if !(0..=12).contains(&n) {
                return Err(AsmError::new(
                    line,
                    format!(".align exponent {n} out of range"),
                ));
            }
            let align = 1u32 << n;
            while !(*data_pc).is_multiple_of(align) {
                emit(&[0], data_pc, &mut sink);
            }
        }
        other => {
            return Err(AsmError::new(line, format!("unknown directive `.{other}`")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluImmOp, Instruction as I};
    use crate::Reg;

    #[test]
    fn minimal_program_assembles() {
        let p = assemble("main: addiu $t0, $zero, 5\n break 0").unwrap();
        assert_eq!(p.entry, DEFAULT_TEXT_BASE);
        assert_eq!(p.text.len(), 2);
        assert_eq!(
            p.decoded()[0],
            I::AluImm {
                op: AluImmOp::Addiu,
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 5
            }
        );
    }

    #[test]
    fn labels_resolve_across_segments() {
        let p = assemble(
            "
            .data
            v:  .word 1, 2, 3
            s:  .asciiz \"hi\"
            .align 2
            w:  .word v
            .text
            main: la $t0, v
                  lw $t1, 0($t0)
            ",
        )
        .unwrap();
        assert_eq!(p.symbol("v"), Some(DEFAULT_DATA_BASE));
        assert_eq!(p.symbol("s"), Some(DEFAULT_DATA_BASE + 12));
        assert_eq!(p.symbol("w"), Some(DEFAULT_DATA_BASE + 16));
        // .word v stored the address of v.
        let w = &p.data[16..20];
        assert_eq!(u32::from_le_bytes(w.try_into().unwrap()), DEFAULT_DATA_BASE);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a: nop\na: nop").unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble("main: j nowhere").unwrap_err();
        assert!(err.message().contains("undefined"));
    }

    #[test]
    fn data_directive_in_text_rejected() {
        let err = assemble(".text\n .word 4").unwrap_err();
        assert!(err.message().contains("outside .data"));
    }

    #[test]
    fn unaligned_word_is_an_error() {
        let err = assemble(".data\nc: .byte 1\nw: .word 0x11223344").unwrap_err();
        assert!(err.message().contains("unaligned"));
        // With explicit alignment the label lands on the word itself.
        let p = assemble(".data\nc: .byte 1\n.align 2\nw: .word 0x11223344").unwrap();
        assert_eq!(p.symbol("w"), Some(DEFAULT_DATA_BASE + 4));
        assert_eq!(&p.data[4..8], &[0x44, 0x33, 0x22, 0x11]);
    }

    #[test]
    fn entry_prefers_main() {
        let p = assemble("pre: nop\nmain: nop").unwrap();
        assert_eq!(p.entry, DEFAULT_TEXT_BASE + 4);
    }

    #[test]
    fn equ_constants_fold_everywhere() {
        let p = assemble(
            "
            .equ SIZE, 24
            .equ OFF, 8
            .data
            buf: .space SIZE
            tab: .word SIZE, OFF
            .text
            main: li $t0, SIZE
                  lw $t1, OFF($sp)
                  addiu $t2, $zero, SIZE
                  break 0
            ",
        )
        .unwrap();
        assert_eq!(p.symbol("tab"), Some(DEFAULT_DATA_BASE + 24));
        assert_eq!(&p.data[24..28], &24u32.to_le_bytes());
        let d = p.decoded();
        assert_eq!(d[0].to_string(), "addiu $t0, $zero, 24");
        assert_eq!(d[1].to_string(), "lw $t1, 8($sp)");
    }

    #[test]
    fn equ_errors() {
        assert!(assemble(
            ".equ A, 1
.equ A, 2
main: nop"
        )
        .is_err());
        assert!(assemble(
            ".equ A, 1
A: nop"
        )
        .is_err());
        assert!(assemble(
            ".equ A
main: nop"
        )
        .is_err());
    }

    #[test]
    fn half_and_byte_directives() {
        let p = assemble(".data\nh: .half 0x1234, -1\nb: .byte 255, 'A'").unwrap();
        assert_eq!(&p.data[0..2], &[0x34, 0x12]);
        assert_eq!(&p.data[2..4], &[0xff, 0xff]);
        assert_eq!(&p.data[4..6], &[0xff, 65]);
    }
}
