//! Line-level parsing of assembly source into statements.

use crate::asm::AsmError;
use crate::Reg;

/// An operand as written in the source, before symbol resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Operand {
    /// A register.
    Reg(Reg),
    /// A numeric literal (decimal, hex `0x`, binary `0b`, or char `'c'`).
    Imm(i64),
    /// A symbol reference with an optional additive constant,
    /// e.g. `table` or `table+8`.
    Sym { name: String, addend: i64 },
    /// A memory operand `offset(base)`; the offset may be numeric or
    /// symbolic.
    Mem {
        sym: Option<String>,
        offset: i64,
        base: Reg,
    },
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Stmt {
    /// `name:`
    Label { name: String, line: usize },
    /// An instruction or pseudo-instruction.
    Op {
        mnemonic: String,
        operands: Vec<Operand>,
        line: usize,
    },
    /// A `.directive arg, arg, ...`
    Directive {
        name: String,
        args: Vec<DirArg>,
        line: usize,
    },
}

/// A directive argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DirArg {
    /// Numeric value.
    Num(i64),
    /// String literal (escapes already processed).
    Str(String),
    /// Symbol reference with addend (e.g. `.word handler+4`).
    Sym(String, i64),
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

/// Strips a comment (`#` or `;` to end of line), respecting string and
/// char literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        if prev_escape {
            prev_escape = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => prev_escape = true,
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            '#' | ';' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one numeric literal: decimal (optionally negative), `0x`, `0b`,
/// or a character literal.
pub(crate) fn parse_number(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let err = || AsmError::new(line, format!("invalid numeric literal `{t}`"));
    if let Some(body) = t.strip_prefix('\'') {
        let body = body.strip_suffix('\'').ok_or_else(err)?;
        let mut chars = body.chars();
        let c = match chars.next().ok_or_else(err)? {
            '\\' => match chars.next().ok_or_else(err)? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                '0' => '\0',
                '\\' => '\\',
                '\'' => '\'',
                '"' => '"',
                _ => return Err(err()),
            },
            c => c,
        };
        if chars.next().is_some() {
            return Err(err());
        }
        return Ok(c as i64);
    }
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let mag = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| err())?
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).map_err(|_| err())?
    } else {
        t.parse::<i64>().map_err(|_| err())?
    };
    Ok(if neg { -mag } else { mag })
}

/// Splits `sym`, `sym+4`, `sym-4` into name and addend.
fn parse_sym_expr(tok: &str, line: usize) -> Result<(String, i64), AsmError> {
    // Skip the first character so a leading sign stays with the number;
    // scan by char indices (the token may contain multi-byte text).
    let split_at = tok
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i);
    match split_at {
        Some(i) => {
            let name = tok[..i].trim().to_owned();
            let addend = parse_number(tok[i..].trim_start_matches('+'), line)?;
            Ok((name, addend))
        }
        None => Ok((tok.trim().to_owned(), 0)),
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let t = tok.trim();
    if t.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    // Memory operand: [offset](reg)
    if let Some(open) = t.find('(') {
        let close = t
            .rfind(')')
            .filter(|&c| c > open)
            .ok_or_else(|| AsmError::new(line, format!("unterminated memory operand `{t}`")))?;
        let base: Reg = t[open + 1..close]
            .trim()
            .parse()
            .map_err(|e| AsmError::new(line, format!("{e}")))?;
        let off = t[..open].trim();
        if off.is_empty() {
            return Ok(Operand::Mem {
                sym: None,
                offset: 0,
                base,
            });
        }
        if off.starts_with(is_ident_start) && !off.starts_with("0x") && !off.starts_with("0b") {
            let (name, addend) = parse_sym_expr(off, line)?;
            return Ok(Operand::Mem {
                sym: Some(name),
                offset: addend,
                base,
            });
        }
        return Ok(Operand::Mem {
            sym: None,
            offset: parse_number(off, line)?,
            base,
        });
    }
    if t.starts_with('$') {
        return t
            .parse::<Reg>()
            .map(Operand::Reg)
            .map_err(|e| AsmError::new(line, format!("{e}")));
    }
    if t.starts_with(|c: char| c.is_ascii_digit()) || t.starts_with('-') || t.starts_with('\'') {
        return Ok(Operand::Imm(parse_number(t, line)?));
    }
    if t.starts_with(is_ident_start) {
        let (name, addend) = parse_sym_expr(t, line)?;
        return Ok(Operand::Sym { name, addend });
    }
    Err(AsmError::new(line, format!("cannot parse operand `{t}`")))
}

fn parse_string_literal(tok: &str, line: usize) -> Result<String, AsmError> {
    let err = || AsmError::new(line, format!("invalid string literal `{tok}`"));
    let body = tok
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(err)?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            out.push(match chars.next().ok_or_else(err)? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                '0' => '\0',
                '\\' => '\\',
                '"' => '"',
                _ => return Err(err()),
            });
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Splits a comma-separated argument list, keeping string literals intact.
fn split_args(rest: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_str = false;
    let mut escape = false;
    let mut start = 0;
    for (i, c) in rest.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if depth_str => escape = true,
            '"' => depth_str = !depth_str,
            ',' if !depth_str => {
                out.push(rest[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = rest[start..].trim();
    if !last.is_empty() || !out.is_empty() {
        out.push(last);
    }
    out.retain(|s| !s.is_empty());
    out
}

/// Parses a full source file into statements.
pub(crate) fn parse_source(src: &str) -> Result<Vec<Stmt>, AsmError> {
    let mut stmts = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = strip_comment(raw).trim();
        // Possibly several labels on one line: `a: b: op ...`
        while let Some(colon) = line.find(':') {
            let candidate = line[..colon].trim();
            if !candidate.is_empty()
                && candidate.starts_with(is_ident_start)
                && candidate.chars().all(is_ident_char)
            {
                stmts.push(Stmt::Label {
                    name: candidate.to_owned(),
                    line: line_no,
                });
                line = line[colon + 1..].trim();
            } else {
                break;
            }
        }
        if line.is_empty() {
            continue;
        }
        let (head, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        if let Some(dname) = head.strip_prefix('.') {
            let mut args = Vec::new();
            for tok in split_args(rest) {
                if tok.starts_with('"') {
                    args.push(DirArg::Str(parse_string_literal(tok, line_no)?));
                } else if tok.starts_with(|c: char| c.is_ascii_digit())
                    || tok.starts_with('-')
                    || tok.starts_with('\'')
                {
                    args.push(DirArg::Num(parse_number(tok, line_no)?));
                } else {
                    let (name, addend) = parse_sym_expr(tok, line_no)?;
                    args.push(DirArg::Sym(name, addend));
                }
            }
            stmts.push(Stmt::Directive {
                name: dname.to_ascii_lowercase(),
                args,
                line: line_no,
            });
        } else {
            let operands = split_args(rest)
                .into_iter()
                .map(|t| parse_operand(t, line_no))
                .collect::<Result<Vec<_>, _>>()?;
            stmts.push(Stmt::Op {
                mnemonic: head.to_ascii_lowercase(),
                operands,
                line: line_no,
            });
        }
    }
    Ok(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labels_ops_directives() {
        let src = "
            .data
        buf: .space 16   # scratch
            .text
        main:  addiu $sp, $sp, -8
               lw $t0, 4($sp)
               beq $t0, $zero, main
        ";
        let stmts = parse_source(src).unwrap();
        assert!(matches!(&stmts[0], Stmt::Directive { name, .. } if name == "data"));
        assert!(matches!(&stmts[1], Stmt::Label { name, .. } if name == "buf"));
        assert!(matches!(&stmts[2], Stmt::Directive { name, args, .. }
            if name == "space" && args == &[DirArg::Num(16)]));
        let Stmt::Op {
            mnemonic, operands, ..
        } = &stmts[5]
        else {
            panic!()
        };
        assert_eq!(mnemonic, "addiu");
        assert_eq!(operands[2], Operand::Imm(-8));
        let Stmt::Op { operands, .. } = &stmts[6] else {
            panic!()
        };
        assert_eq!(
            operands[1],
            Operand::Mem {
                sym: None,
                offset: 4,
                base: Reg::SP
            }
        );
        let Stmt::Op { operands, .. } = &stmts[7] else {
            panic!()
        };
        assert_eq!(
            operands[2],
            Operand::Sym {
                name: "main".into(),
                addend: 0
            }
        );
    }

    #[test]
    fn numbers_hex_bin_char_negative() {
        assert_eq!(parse_number("0x10", 1).unwrap(), 16);
        assert_eq!(parse_number("-0x10", 1).unwrap(), -16);
        assert_eq!(parse_number("0b101", 1).unwrap(), 5);
        assert_eq!(parse_number("'A'", 1).unwrap(), 65);
        assert_eq!(parse_number("'\\n'", 1).unwrap(), 10);
        assert_eq!(parse_number("'\\0'", 1).unwrap(), 0);
        assert!(parse_number("zz", 1).is_err());
    }

    #[test]
    fn string_escapes_and_commas() {
        let src = r#" .asciiz "a,b\n" "#;
        let stmts = parse_source(src).unwrap();
        let Stmt::Directive { args, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(args, &[DirArg::Str("a,b\n".into())]);
    }

    #[test]
    fn comment_hash_inside_string_kept() {
        let src = r##" .asciiz "a#b"  # real comment "##;
        let stmts = parse_source(src).unwrap();
        let Stmt::Directive { args, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(args, &[DirArg::Str("a#b".into())]);
    }

    #[test]
    fn symbol_plus_offset() {
        let src = "lw $t0, table+8($t1)\n la $t2, arr+4";
        let stmts = parse_source(src).unwrap();
        let Stmt::Op { operands, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(
            operands[1],
            Operand::Mem {
                sym: Some("table".into()),
                offset: 8,
                base: Reg::T1
            }
        );
        let Stmt::Op { operands, .. } = &stmts[1] else {
            panic!()
        };
        assert_eq!(
            operands[1],
            Operand::Sym {
                name: "arr".into(),
                addend: 4
            }
        );
    }

    #[test]
    fn bad_register_reports_line() {
        let err = parse_source("\n\n add $t0, $banana, $t1").unwrap_err();
        assert_eq!(err.line(), 3);
    }
}
