//! Instruction selection: maps mnemonics + operands (including
//! pseudo-instructions) to one or more [`Instruction`]s.

use crate::asm::item::Operand;
use crate::asm::AsmError;
use crate::inst::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth, MulDivOp, ShiftOp};
use crate::Reg;

type Resolver<'a> = dyn FnMut(&str, i64) -> Result<u32, AsmError> + 'a;

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError::new(line, msg)
}

fn expect_len(m: &str, ops: &[Operand], n: usize, line: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(
            line,
            format!("`{m}` expects {n} operand(s), got {}", ops.len()),
        ))
    }
}

fn reg(m: &str, ops: &[Operand], i: usize, line: usize) -> Result<Reg, AsmError> {
    match ops.get(i) {
        Some(Operand::Reg(r)) => Ok(*r),
        _ => Err(err(
            line,
            format!("`{m}` operand {} must be a register", i + 1),
        )),
    }
}

fn imm(m: &str, ops: &[Operand], i: usize, line: usize) -> Result<i64, AsmError> {
    match ops.get(i) {
        Some(Operand::Imm(v)) => Ok(*v),
        _ => Err(err(
            line,
            format!("`{m}` operand {} must be an immediate", i + 1),
        )),
    }
}

fn check_i16(v: i64, line: usize) -> Result<u16, AsmError> {
    if (-32768..=32767).contains(&v) {
        Ok(v as i16 as u16)
    } else {
        Err(err(
            line,
            format!("immediate {v} does not fit in 16 signed bits"),
        ))
    }
}

fn check_u16(v: i64, line: usize) -> Result<u16, AsmError> {
    if (0..=0xffff).contains(&v) {
        Ok(v as u16)
    } else {
        Err(err(
            line,
            format!("immediate {v} does not fit in 16 unsigned bits"),
        ))
    }
}

/// Branch target: a label resolves to a word offset relative to
/// `branch_addr + 4`; a bare immediate is the encoded offset itself.
fn branch_offset(
    m: &str,
    ops: &[Operand],
    i: usize,
    branch_addr: u32,
    line: usize,
    resolve: &mut Resolver<'_>,
) -> Result<i16, AsmError> {
    match ops.get(i) {
        Some(Operand::Imm(v)) => Ok(check_i16(*v, line)? as i16),
        Some(Operand::Sym { name, addend }) => {
            let target = resolve(name, *addend)?;
            let delta = target.wrapping_sub(branch_addr.wrapping_add(4)) as i32;
            if delta % 4 != 0 {
                return Err(err(
                    line,
                    format!("branch target {target:#x} not word aligned"),
                ));
            }
            let words = delta >> 2;
            if !(-32768..=32767).contains(&words) {
                return Err(err(
                    line,
                    format!("branch to `{name}` out of range ({words} words)"),
                ));
            }
            Ok(words as i16)
        }
        _ => Err(err(line, format!("`{m}` needs a label or offset operand"))),
    }
}

fn jump_target(
    m: &str,
    ops: &[Operand],
    addr: u32,
    line: usize,
    resolve: &mut Resolver<'_>,
) -> Result<u32, AsmError> {
    let abs = match ops.first() {
        Some(Operand::Imm(v)) => *v as u32,
        Some(Operand::Sym { name, addend }) => resolve(name, *addend)?,
        _ => return Err(err(line, format!("`{m}` needs a target"))),
    };
    if abs % 4 != 0 {
        return Err(err(line, format!("jump target {abs:#x} not word aligned")));
    }
    if (abs & 0xf000_0000) != (addr.wrapping_add(4) & 0xf000_0000) {
        return Err(err(
            line,
            format!("jump target {abs:#x} outside the current 256MB region"),
        ));
    }
    Ok((abs >> 2) & 0x03ff_ffff)
}

/// Loads/stores accept `offset(base)` or a bare symbol (expanded through
/// `$at`).
enum MemForm {
    Direct { base: Reg, offset: i16 },
    ViaAt { hi: u16, lo: u16 },
}

fn mem_operand(
    m: &str,
    ops: &[Operand],
    i: usize,
    line: usize,
    resolve: &mut Resolver<'_>,
) -> Result<MemForm, AsmError> {
    match ops.get(i) {
        Some(Operand::Mem { sym, offset, base }) => {
            let total = match sym {
                Some(name) => resolve(name, *offset)? as i64,
                None => *offset,
            };
            Ok(MemForm::Direct {
                base: *base,
                offset: check_i16(total, line)? as i16,
            })
        }
        Some(Operand::Sym { name, addend }) => {
            let addr = resolve(name, *addend)?;
            let (hi, lo) = hi_lo(addr);
            Ok(MemForm::ViaAt { hi, lo })
        }
        _ => Err(err(
            line,
            format!("`{m}` operand {} must be a memory operand", i + 1),
        )),
    }
}

/// Splits an address for `lui`/`ori` materialization.
fn hi_lo(addr: u32) -> (u16, u16) {
    ((addr >> 16) as u16, (addr & 0xffff) as u16)
}

/// Encodes one mnemonic into its instruction sequence.
///
/// `addr` is the address of the first emitted word; `resolve` maps symbol
/// names to addresses. The number of emitted instructions never depends on
/// resolved values, which is what makes two-pass assembly sound.
pub(crate) fn encode_op(
    mnemonic: &str,
    ops: &[Operand],
    addr: u32,
    line: usize,
    resolve: &mut Resolver<'_>,
) -> Result<Vec<Instruction>, AsmError> {
    use Instruction as I;
    let m = mnemonic;

    let alu3 = |op: AluOp, ops: &[Operand]| -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 3, line)?;
        Ok(vec![I::Alu {
            op,
            rd: reg(m, ops, 0, line)?,
            rs: reg(m, ops, 1, line)?,
            rt: reg(m, ops, 2, line)?,
        }])
    };
    let alu_imm = |op: AluImmOp, ops: &[Operand], unsigned: bool| -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 3, line)?;
        let v = imm(m, ops, 2, line)?;
        let raw = if unsigned {
            check_u16(v, line)?
        } else {
            check_i16(v, line)?
        };
        Ok(vec![I::AluImm {
            op,
            rt: reg(m, ops, 0, line)?,
            rs: reg(m, ops, 1, line)?,
            imm: raw,
        }])
    };
    let shift = |op: ShiftOp, ops: &[Operand]| -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 3, line)?;
        let amount = imm(m, ops, 2, line)?;
        if !(0..=31).contains(&amount) {
            return Err(err(line, format!("shift amount {amount} out of range")));
        }
        Ok(vec![I::Shift {
            op,
            rd: reg(m, ops, 0, line)?,
            rt: reg(m, ops, 1, line)?,
            shamt: amount as u8,
        }])
    };
    let shift_var = |op: ShiftOp, ops: &[Operand]| -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 3, line)?;
        Ok(vec![I::ShiftVar {
            op,
            rd: reg(m, ops, 0, line)?,
            rt: reg(m, ops, 1, line)?,
            rs: reg(m, ops, 2, line)?,
        }])
    };

    let load = |width: MemWidth,
                signed: bool,
                ops: &[Operand],
                resolve: &mut Resolver<'_>|
     -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 2, line)?;
        let rt = reg(m, ops, 0, line)?;
        Ok(match mem_operand(m, ops, 1, line, resolve)? {
            MemForm::Direct { base, offset } => vec![I::Load {
                width,
                signed,
                rt,
                base,
                offset,
            }],
            MemForm::ViaAt { hi, lo } => vec![
                I::Lui {
                    rt: Reg::AT,
                    imm: hi,
                },
                I::Load {
                    width,
                    signed,
                    rt,
                    base: Reg::AT,
                    offset: lo as i16,
                },
            ],
        })
    };
    let store = |width: MemWidth,
                 ops: &[Operand],
                 resolve: &mut Resolver<'_>|
     -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 2, line)?;
        let rt = reg(m, ops, 0, line)?;
        Ok(match mem_operand(m, ops, 1, line, resolve)? {
            MemForm::Direct { base, offset } => vec![I::Store {
                width,
                rt,
                base,
                offset,
            }],
            MemForm::ViaAt { hi, lo } => vec![
                I::Lui {
                    rt: Reg::AT,
                    imm: hi,
                },
                I::Store {
                    width,
                    rt,
                    base: Reg::AT,
                    offset: lo as i16,
                },
            ],
        })
    };

    let branch2 = |cond: BranchCond,
                   ops: &[Operand],
                   resolve: &mut Resolver<'_>|
     -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 3, line)?;
        Ok(vec![I::Branch {
            cond,
            rs: reg(m, ops, 0, line)?,
            rt: reg(m, ops, 1, line)?,
            offset: branch_offset(m, ops, 2, addr, line, resolve)?,
        }])
    };
    let branch1 = |cond: BranchCond,
                   ops: &[Operand],
                   resolve: &mut Resolver<'_>|
     -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 2, line)?;
        Ok(vec![I::Branch {
            cond,
            rs: reg(m, ops, 0, line)?,
            rt: Reg::ZERO,
            offset: branch_offset(m, ops, 1, addr, line, resolve)?,
        }])
    };
    // Pseudo compare-and-branch: `slt $at, a, b` + conditional branch on $at.
    // The branch is the second emitted word, at addr + 4.
    let cmp_branch = |swap: bool,
                      unsigned: bool,
                      taken_if_set: bool,
                      ops: &[Operand],
                      resolve: &mut Resolver<'_>|
     -> Result<Vec<I>, AsmError> {
        expect_len(m, ops, 3, line)?;
        let a = reg(m, ops, 0, line)?;
        let b = reg(m, ops, 1, line)?;
        let (x, y) = if swap { (b, a) } else { (a, b) };
        let branch_addr = addr + 4;
        let offset = match ops.get(2) {
            Some(Operand::Imm(v)) => check_i16(*v, line)? as i16,
            Some(Operand::Sym { name, addend }) => {
                let target = resolve(name, *addend)?;
                let delta = target.wrapping_sub(branch_addr.wrapping_add(4)) as i32;
                if delta % 4 != 0 {
                    return Err(err(line, "branch target not word aligned"));
                }
                (delta >> 2) as i16
            }
            _ => return Err(err(line, format!("`{m}` needs a label"))),
        };
        Ok(vec![
            I::Alu {
                op: if unsigned { AluOp::Sltu } else { AluOp::Slt },
                rd: Reg::AT,
                rs: x,
                rt: y,
            },
            I::Branch {
                cond: if taken_if_set {
                    BranchCond::Ne
                } else {
                    BranchCond::Eq
                },
                rs: Reg::AT,
                rt: Reg::ZERO,
                offset,
            },
        ])
    };

    match m {
        // --- native ALU ---
        "add" => alu3(AluOp::Add, ops),
        "addu" => alu3(AluOp::Addu, ops),
        "sub" => alu3(AluOp::Sub, ops),
        "subu" => alu3(AluOp::Subu, ops),
        "and" => alu3(AluOp::And, ops),
        "or" => alu3(AluOp::Or, ops),
        "xor" => alu3(AluOp::Xor, ops),
        "nor" => alu3(AluOp::Nor, ops),
        "slt" => alu3(AluOp::Slt, ops),
        "sltu" => alu3(AluOp::Sltu, ops),
        "addi" => alu_imm(AluImmOp::Addi, ops, false),
        "addiu" => alu_imm(AluImmOp::Addiu, ops, false),
        "slti" => alu_imm(AluImmOp::Slti, ops, false),
        "sltiu" => alu_imm(AluImmOp::Sltiu, ops, false),
        "andi" => alu_imm(AluImmOp::Andi, ops, true),
        "ori" => alu_imm(AluImmOp::Ori, ops, true),
        "xori" => alu_imm(AluImmOp::Xori, ops, true),
        "sll" => shift(ShiftOp::Sll, ops),
        "srl" => shift(ShiftOp::Srl, ops),
        "sra" => shift(ShiftOp::Sra, ops),
        "sllv" => shift_var(ShiftOp::Sll, ops),
        "srlv" => shift_var(ShiftOp::Srl, ops),
        "srav" => shift_var(ShiftOp::Sra, ops),
        "lui" => {
            expect_len(m, ops, 2, line)?;
            let v = imm(m, ops, 1, line)?;
            Ok(vec![I::Lui {
                rt: reg(m, ops, 0, line)?,
                imm: check_u16(v, line)?,
            }])
        }
        // --- multiply / divide ---
        "mult" | "multu" | "divu" if ops.len() == 2 => {
            let op = match m {
                "mult" => MulDivOp::Mult,
                "multu" => MulDivOp::Multu,
                _ => MulDivOp::Divu,
            };
            Ok(vec![I::MulDiv {
                op,
                rs: reg(m, ops, 0, line)?,
                rt: reg(m, ops, 1, line)?,
            }])
        }
        "div" if ops.len() == 2 => Ok(vec![I::MulDiv {
            op: MulDivOp::Div,
            rs: reg(m, ops, 0, line)?,
            rt: reg(m, ops, 1, line)?,
        }]),
        // 3-operand pseudo forms.
        "mul" | "div" | "divu" | "rem" | "remu" => {
            expect_len(m, ops, 3, line)?;
            let rd = reg(m, ops, 0, line)?;
            let rs = reg(m, ops, 1, line)?;
            let rt = reg(m, ops, 2, line)?;
            let (op, take_lo) = match m {
                "mul" => (MulDivOp::Mult, true),
                "div" => (MulDivOp::Div, true),
                "divu" => (MulDivOp::Divu, true),
                "rem" => (MulDivOp::Div, false),
                _ => (MulDivOp::Divu, false),
            };
            let mv = if take_lo {
                I::Mflo { rd }
            } else {
                I::Mfhi { rd }
            };
            Ok(vec![I::MulDiv { op, rs, rt }, mv])
        }
        "mfhi" => {
            expect_len(m, ops, 1, line)?;
            Ok(vec![I::Mfhi {
                rd: reg(m, ops, 0, line)?,
            }])
        }
        "mflo" => {
            expect_len(m, ops, 1, line)?;
            Ok(vec![I::Mflo {
                rd: reg(m, ops, 0, line)?,
            }])
        }
        "mthi" => {
            expect_len(m, ops, 1, line)?;
            Ok(vec![I::Mthi {
                rs: reg(m, ops, 0, line)?,
            }])
        }
        "mtlo" => {
            expect_len(m, ops, 1, line)?;
            Ok(vec![I::Mtlo {
                rs: reg(m, ops, 0, line)?,
            }])
        }
        // --- memory ---
        "lb" => load(MemWidth::Byte, true, ops, resolve),
        "lbu" => load(MemWidth::Byte, false, ops, resolve),
        "lh" => load(MemWidth::Half, true, ops, resolve),
        "lhu" => load(MemWidth::Half, false, ops, resolve),
        "lw" => load(MemWidth::Word, false, ops, resolve),
        "sb" => store(MemWidth::Byte, ops, resolve),
        "lwl" | "lwr" | "swl" | "swr" => {
            expect_len(m, ops, 2, line)?;
            let rt = reg(m, ops, 0, line)?;
            let MemForm::Direct { base, offset } = mem_operand(m, ops, 1, line, resolve)? else {
                return Err(err(line, format!("`{m}` requires an offset(base) operand")));
            };
            let left = m.ends_with('l');
            Ok(vec![if m.starts_with('l') {
                I::LoadUnaligned {
                    left,
                    rt,
                    base,
                    offset,
                }
            } else {
                I::StoreUnaligned {
                    left,
                    rt,
                    base,
                    offset,
                }
            }])
        }
        "sh" => store(MemWidth::Half, ops, resolve),
        "sw" => store(MemWidth::Word, ops, resolve),
        // --- branches ---
        "beq" => branch2(BranchCond::Eq, ops, resolve),
        "bne" => branch2(BranchCond::Ne, ops, resolve),
        "blez" => branch1(BranchCond::Lez, ops, resolve),
        "bgtz" => branch1(BranchCond::Gtz, ops, resolve),
        "bltz" => branch1(BranchCond::Ltz, ops, resolve),
        "bgez" => branch1(BranchCond::Gez, ops, resolve),
        "beqz" => {
            expect_len(m, ops, 2, line)?;
            Ok(vec![I::Branch {
                cond: BranchCond::Eq,
                rs: reg(m, ops, 0, line)?,
                rt: Reg::ZERO,
                offset: branch_offset(m, ops, 1, addr, line, resolve)?,
            }])
        }
        "bnez" => {
            expect_len(m, ops, 2, line)?;
            Ok(vec![I::Branch {
                cond: BranchCond::Ne,
                rs: reg(m, ops, 0, line)?,
                rt: Reg::ZERO,
                offset: branch_offset(m, ops, 1, addr, line, resolve)?,
            }])
        }
        "b" => {
            expect_len(m, ops, 1, line)?;
            Ok(vec![I::Branch {
                cond: BranchCond::Eq,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: branch_offset(m, ops, 0, addr, line, resolve)?,
            }])
        }
        "blt" => cmp_branch(false, false, true, ops, resolve),
        "bge" => cmp_branch(false, false, false, ops, resolve),
        "bgt" => cmp_branch(true, false, true, ops, resolve),
        "ble" => cmp_branch(true, false, false, ops, resolve),
        "bltu" => cmp_branch(false, true, true, ops, resolve),
        "bgeu" => cmp_branch(false, true, false, ops, resolve),
        "bgtu" => cmp_branch(true, true, true, ops, resolve),
        "bleu" => cmp_branch(true, true, false, ops, resolve),
        // --- jumps ---
        "j" => Ok(vec![I::J {
            target: jump_target(m, ops, addr, line, resolve)?,
        }]),
        "jal" => Ok(vec![I::Jal {
            target: jump_target(m, ops, addr, line, resolve)?,
        }]),
        "jr" => {
            expect_len(m, ops, 1, line)?;
            Ok(vec![I::Jr {
                rs: reg(m, ops, 0, line)?,
            }])
        }
        "jalr" => match ops.len() {
            1 => Ok(vec![I::Jalr {
                rd: Reg::RA,
                rs: reg(m, ops, 0, line)?,
            }]),
            2 => Ok(vec![I::Jalr {
                rd: reg(m, ops, 0, line)?,
                rs: reg(m, ops, 1, line)?,
            }]),
            n => Err(err(
                line,
                format!("`jalr` expects 1 or 2 operands, got {n}"),
            )),
        },
        // --- system ---
        "syscall" => Ok(vec![I::Syscall]),
        "break" => {
            let code = match ops.first() {
                None => 0,
                Some(Operand::Imm(v)) if (0..1 << 20).contains(v) => *v as u32,
                Some(_) => return Err(err(line, "`break` code out of range")),
            };
            Ok(vec![I::Break { code }])
        }
        "nop" => Ok(vec![I::NOP]),
        // --- register pseudo-ops ---
        "move" => {
            expect_len(m, ops, 2, line)?;
            Ok(vec![I::Alu {
                op: AluOp::Addu,
                rd: reg(m, ops, 0, line)?,
                rs: reg(m, ops, 1, line)?,
                rt: Reg::ZERO,
            }])
        }
        "neg" | "negu" => {
            expect_len(m, ops, 2, line)?;
            Ok(vec![I::Alu {
                op: if m == "neg" { AluOp::Sub } else { AluOp::Subu },
                rd: reg(m, ops, 0, line)?,
                rs: Reg::ZERO,
                rt: reg(m, ops, 1, line)?,
            }])
        }
        "not" => {
            expect_len(m, ops, 2, line)?;
            Ok(vec![I::Alu {
                op: AluOp::Nor,
                rd: reg(m, ops, 0, line)?,
                rs: reg(m, ops, 1, line)?,
                rt: Reg::ZERO,
            }])
        }
        "li" => {
            expect_len(m, ops, 2, line)?;
            let rt = reg(m, ops, 0, line)?;
            let v = imm(m, ops, 1, line)?;
            if !(-(1 << 31)..(1 << 32)).contains(&v) {
                return Err(err(line, format!("`li` value {v} does not fit in 32 bits")));
            }
            let v32 = v as u32;
            if (-32768..=32767).contains(&v) {
                Ok(vec![I::AluImm {
                    op: AluImmOp::Addiu,
                    rt,
                    rs: Reg::ZERO,
                    imm: v as i16 as u16,
                }])
            } else if (0..=0xffff).contains(&v) {
                Ok(vec![I::AluImm {
                    op: AluImmOp::Ori,
                    rt,
                    rs: Reg::ZERO,
                    imm: v as u16,
                }])
            } else {
                let (hi, lo) = hi_lo(v32);
                let mut out = vec![I::Lui { rt, imm: hi }];
                if lo != 0 {
                    out.push(I::AluImm {
                        op: AluImmOp::Ori,
                        rt,
                        rs: rt,
                        imm: lo,
                    });
                }
                Ok(out)
            }
        }
        "la" => {
            expect_len(m, ops, 2, line)?;
            let rt = reg(m, ops, 0, line)?;
            let Some(Operand::Sym { name, addend }) = ops.get(1) else {
                return Err(err(line, "`la` operand 2 must be a symbol"));
            };
            let target = resolve(name, *addend)?;
            let (hi, lo) = hi_lo(target);
            Ok(vec![
                I::Lui { rt, imm: hi },
                I::AluImm {
                    op: AluImmOp::Ori,
                    rt,
                    rs: rt,
                    imm: lo,
                },
            ])
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {

    use crate::asm::assemble;

    #[test]
    fn li_selects_minimal_encoding() {
        let p = assemble(
            "main: li $t0, 5\n li $t1, -3\n li $t2, 0xffff\n li $t3, 0x12345678\n li $t4, 0x10000",
        )
        .unwrap();
        // 1 + 1 + 1 + 2 + 1(lui only) = 6 words
        assert_eq!(p.text.len(), 6);
        let d = p.decoded();
        assert_eq!(d[0].to_string(), "addiu $t0, $zero, 5");
        assert_eq!(d[1].to_string(), "addiu $t1, $zero, -3");
        assert_eq!(d[2].to_string(), "ori $t2, $zero, 0xffff");
        assert_eq!(d[3].to_string(), "lui $t3, 0x1234");
        assert_eq!(d[4].to_string(), "ori $t3, $t3, 0x5678");
        assert_eq!(d[5].to_string(), "lui $t4, 0x1");
    }

    #[test]
    fn la_always_two_words() {
        let p = assemble(".data\nv: .word 0\n.text\nmain: la $t0, v\nla $t1, v+4").unwrap();
        assert_eq!(p.text.len(), 4);
    }

    #[test]
    fn cmp_branch_expands_with_at() {
        let p = assemble("main: blt $t0, $t1, main").unwrap();
        let d = p.decoded();
        assert_eq!(d[0].to_string(), "slt $at, $t0, $t1");
        // Branch at addr+4 targeting main (= addr): offset = -2 words.
        assert_eq!(d[1].to_string(), "bne $at, $zero, -2");
    }

    #[test]
    fn bgt_swaps_operands() {
        let p = assemble("main: bgt $a0, $a1, main").unwrap();
        assert_eq!(p.decoded()[0].to_string(), "slt $at, $a1, $a0");
    }

    #[test]
    fn branch_range_enforced() {
        // Build a program where the branch target is ~40000 words away.
        let mut src = String::from("main: beq $t0, $t1, far\n");
        for _ in 0..40000 {
            src.push_str("nop\n");
        }
        src.push_str("far: nop\n");
        let errv = assemble(&src).unwrap_err();
        assert!(errv.message().contains("out of range"));
    }

    #[test]
    fn load_from_bare_symbol_goes_via_at() {
        let p = assemble(".data\nv: .word 7\n.text\nmain: lw $t0, v").unwrap();
        let d = p.decoded();
        assert_eq!(d[0].to_string(), "lui $at, 0x1001");
        assert!(d[1].to_string().starts_with("lw $t0, 0($at)"));
    }

    #[test]
    fn pseudo_mul_div_rem() {
        let p = assemble("main: mul $t0,$t1,$t2\n div $t3,$t4,$t5\n rem $t6,$t7,$t8").unwrap();
        let d = p.decoded();
        assert_eq!(d[0].to_string(), "mult $t1, $t2");
        assert_eq!(d[1].to_string(), "mflo $t0");
        assert_eq!(d[2].to_string(), "div $t4, $t5");
        assert_eq!(d[3].to_string(), "mflo $t3");
        assert_eq!(d[4].to_string(), "div $t7, $t8");
        assert_eq!(d[5].to_string(), "mfhi $t6");
    }

    #[test]
    fn immediate_overflow_rejected() {
        assert!(assemble("main: addiu $t0, $zero, 40000").is_err());
        assert!(assemble("main: andi $t0, $t0, -1").is_err());
        assert!(assemble("main: sll $t0, $t0, 32").is_err());
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("main: frobnicate $t0").unwrap_err();
        assert!(e.message().contains("unknown mnemonic"));
    }

    #[test]
    fn unaligned_access_mnemonics() {
        let p =
            assemble("main: lwr $t0, 0($a0)\n lwl $t0, 3($a0)\n swr $t0, 4($a1)\n swl $t0, 7($a1)")
                .unwrap();
        let d = p.decoded();
        assert_eq!(d[0].to_string(), "lwr $t0, 0($a0)");
        assert_eq!(d[1].to_string(), "lwl $t0, 3($a0)");
        assert_eq!(d[2].to_string(), "swr $t0, 4($a1)");
        assert_eq!(d[3].to_string(), "swl $t0, 7($a1)");
    }

    #[test]
    fn jump_region_check() {
        let e = assemble("main: j 0x90000000").unwrap_err();
        assert!(e.message().contains("region"));
    }
}
