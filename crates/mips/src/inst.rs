//! Decoded MIPS-I instruction model and dataflow classification helpers.

use crate::Reg;
use std::fmt;

/// A storage location read or written by an instruction.
///
/// The multiply/divide unit results live in the dedicated `HI`/`LO`
/// registers, which the binary-translation engine treats as two extra
/// context-bus lines next to the 32 general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataLoc {
    /// A general-purpose register.
    Gpr(Reg),
    /// The HI special register (upper multiply result / division remainder).
    Hi,
    /// The LO special register (lower multiply result / division quotient).
    Lo,
}

impl DataLoc {
    /// A dense index in `0..34` used for dependence bitmaps
    /// (GPRs at their own index, HI at 32, LO at 33).
    pub fn dense_index(self) -> usize {
        match self {
            DataLoc::Gpr(r) => r.index(),
            DataLoc::Hi => 32,
            DataLoc::Lo => 33,
        }
    }

    /// Total number of dense indices (32 GPRs + HI + LO).
    pub const COUNT: usize = 34;

    /// The inverse of [`dense_index`](DataLoc::dense_index): recovers the
    /// location from its dense index, or `None` when out of range. Used
    /// by the snapshot wire format to round-trip live-in/write-back sets.
    pub fn from_dense_index(index: usize) -> Option<DataLoc> {
        match index {
            0..=31 => Reg::new(index as u8).map(DataLoc::Gpr),
            32 => Some(DataLoc::Hi),
            33 => Some(DataLoc::Lo),
            _ => None,
        }
    }
}

impl fmt::Display for DataLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataLoc::Gpr(r) => write!(f, "{r}"),
            DataLoc::Hi => write!(f, "$hi"),
            DataLoc::Lo => write!(f, "$lo"),
        }
    }
}

/// A small fixed-capacity list of [`DataLoc`]s (an instruction touches at
/// most three locations: e.g. `div` writes HI and LO; `sw` reads two GPRs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Locs {
    buf: [Option<DataLoc>; 3],
    len: u8,
}

impl Locs {
    /// An empty list.
    pub fn empty() -> Locs {
        Locs::default()
    }

    fn push(&mut self, loc: DataLoc) {
        // `$zero` never participates in dataflow: reads are constant zero and
        // writes are discarded, so dependence analysis must ignore it.
        if loc == DataLoc::Gpr(Reg::ZERO) {
            return;
        }
        self.buf[self.len as usize] = Some(loc);
        self.len += 1;
    }

    fn of(locs: &[DataLoc]) -> Locs {
        let mut out = Locs::default();
        for &l in locs {
            out.push(l);
        }
        out
    }

    /// Number of locations in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the locations.
    pub fn iter(&self) -> impl Iterator<Item = DataLoc> + '_ {
        self.buf.iter().take(self.len as usize).map(|l| l.unwrap())
    }

    /// Whether `loc` is present in the list.
    pub fn contains(&self, loc: DataLoc) -> bool {
        self.iter().any(|l| l == loc)
    }
}

impl<'a> IntoIterator for &'a Locs {
    type Item = DataLoc;
    type IntoIter = std::iter::Map<
        std::iter::Take<std::slice::Iter<'a, Option<DataLoc>>>,
        fn(&'a Option<DataLoc>) -> DataLoc,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter().take(self.len as usize).map(|l| l.unwrap())
    }
}

/// Three-operand register ALU operations (`R`-format, rd ← rs op rt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Signed addition (traps on overflow in real hardware; modelled wrapping).
    Add,
    /// Unsigned (non-trapping) addition.
    Addu,
    /// Signed subtraction.
    Sub,
    /// Unsigned (non-trapping) subtraction.
    Subu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set on less than (signed).
    Slt,
    /// Set on less than (unsigned).
    Sltu,
}

impl AluOp {
    /// Evaluates the operation on two 32-bit operands.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add | AluOp::Addu => a.wrapping_add(b),
            AluOp::Sub | AluOp::Subu => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
        }
    }

    /// The canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Addu => "addu",
            AluOp::Sub => "sub",
            AluOp::Subu => "subu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Immediate ALU operations (`I`-format, rt ← rs op imm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// Add immediate, signed semantics (modelled wrapping).
    Addi,
    /// Add immediate unsigned (non-trapping); the immediate is still
    /// sign-extended.
    Addiu,
    /// Set on less than immediate (signed compare with sign-extended imm).
    Slti,
    /// Set on less than immediate unsigned (unsigned compare with
    /// sign-extended imm).
    Sltiu,
    /// AND with zero-extended immediate.
    Andi,
    /// OR with zero-extended immediate.
    Ori,
    /// XOR with zero-extended immediate.
    Xori,
}

impl AluImmOp {
    /// Evaluates the operation given the register operand and the raw
    /// 16-bit immediate field.
    pub fn eval(self, a: u32, imm: u16) -> u32 {
        let sext = imm as i16 as i32 as u32;
        let zext = imm as u32;
        match self {
            AluImmOp::Addi | AluImmOp::Addiu => a.wrapping_add(sext),
            AluImmOp::Slti => ((a as i32) < (sext as i32)) as u32,
            AluImmOp::Sltiu => (a < sext) as u32,
            AluImmOp::Andi => a & zext,
            AluImmOp::Ori => a | zext,
            AluImmOp::Xori => a ^ zext,
        }
    }

    /// The canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Addiu => "addiu",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
        }
    }
}

/// Shift operations; the shift amount is an immediate (`Sll`..) or a
/// register (`Sllv`..).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl ShiftOp {
    /// Evaluates the shift. Only the low five bits of `amount` are used,
    /// matching hardware behaviour.
    pub fn eval(self, value: u32, amount: u32) -> u32 {
        let sh = amount & 0x1f;
        match self {
            ShiftOp::Sll => value << sh,
            ShiftOp::Srl => value >> sh,
            ShiftOp::Sra => ((value as i32) >> sh) as u32,
        }
    }

    /// The canonical mnemonic for the immediate form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
        }
    }

    /// The canonical mnemonic for the register (variable) form.
    pub fn variable_mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sllv",
            ShiftOp::Srl => "srlv",
            ShiftOp::Sra => "srav",
        }
    }
}

/// Multiply/divide unit operations writing HI/LO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Signed 32×32→64 multiply.
    Mult,
    /// Unsigned 32×32→64 multiply.
    Multu,
    /// Signed division (LO = quotient, HI = remainder).
    Div,
    /// Unsigned division.
    Divu,
}

impl MulDivOp {
    /// Evaluates the operation, returning `(hi, lo)`.
    ///
    /// Division by zero leaves unspecified results on hardware; we return
    /// `(a, 0xffff_ffff)`-style values matching common implementations so
    /// behaviour is deterministic.
    pub fn eval(self, a: u32, b: u32) -> (u32, u32) {
        match self {
            MulDivOp::Mult => {
                let p = (a as i32 as i64).wrapping_mul(b as i32 as i64) as u64;
                ((p >> 32) as u32, p as u32)
            }
            MulDivOp::Multu => {
                let p = (a as u64) * (b as u64);
                ((p >> 32) as u32, p as u32)
            }
            MulDivOp::Div => {
                if b == 0 {
                    (a, if (a as i32) < 0 { 1 } else { u32::MAX })
                } else if a == 0x8000_0000 && b == u32::MAX {
                    // i32::MIN / -1 overflows; hardware leaves MIN, 0.
                    (0, 0x8000_0000)
                } else {
                    let (q, r) = ((a as i32) / (b as i32), (a as i32) % (b as i32));
                    (r as u32, q as u32)
                }
            }
            MulDivOp::Divu => {
                if b == 0 {
                    (a, u32::MAX)
                } else {
                    (a % b, a / b)
                }
            }
        }
    }

    /// Whether this is a division.
    pub fn is_div(self) -> bool {
        matches!(self, MulDivOp::Div | MulDivOp::Divu)
    }

    /// The canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mult => "mult",
            MulDivOp::Multu => "multu",
            MulDivOp::Div => "div",
            MulDivOp::Divu => "divu",
        }
    }
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    Byte,
    /// Two bytes (halfword).
    Half,
    /// Four bytes (word).
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq` — rs == rt.
    Eq,
    /// `bne` — rs != rt.
    Ne,
    /// `blez` — rs <= 0 (signed).
    Lez,
    /// `bgtz` — rs > 0 (signed).
    Gtz,
    /// `bltz` — rs < 0 (signed).
    Ltz,
    /// `bgez` — rs >= 0 (signed).
    Gez,
}

impl BranchCond {
    /// Evaluates the condition. `b` is ignored for the compare-with-zero
    /// conditions.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lez => (a as i32) <= 0,
            BranchCond::Gtz => (a as i32) > 0,
            BranchCond::Ltz => (a as i32) < 0,
            BranchCond::Gez => (a as i32) >= 0,
        }
    }

    /// Whether the condition compares two registers (`beq`/`bne`).
    pub fn uses_rt(self) -> bool {
        matches!(self, BranchCond::Eq | BranchCond::Ne)
    }

    /// The canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lez => "blez",
            BranchCond::Gtz => "bgtz",
            BranchCond::Ltz => "bltz",
            BranchCond::Gez => "bgez",
        }
    }
}

/// A decoded MIPS-I instruction.
///
/// This is the form produced by the [decoder](crate::decode) and the
/// [assembler](crate::asm), consumed by the simulator and by the DIM
/// binary-translation engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register-register ALU operation: `rd ← rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// Immediate ALU operation: `rt ← rs op imm`.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination.
        rt: Reg,
        /// Source.
        rs: Reg,
        /// Raw 16-bit immediate (sign/zero extension depends on `op`).
        imm: u16,
    },
    /// Constant-amount shift: `rd ← rt shift shamt`.
    Shift {
        /// Shift kind.
        op: ShiftOp,
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rt: Reg,
        /// Shift amount in `0..32`.
        shamt: u8,
    },
    /// Register-amount shift: `rd ← rt shift rs`.
    ShiftVar {
        /// Shift kind.
        op: ShiftOp,
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rt: Reg,
        /// Register holding the shift amount (low 5 bits used).
        rs: Reg,
    },
    /// Load upper immediate: `rt ← imm << 16`.
    Lui {
        /// Destination.
        rt: Reg,
        /// Immediate placed in the upper halfword.
        imm: u16,
    },
    /// Multiply/divide writing HI and LO.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// First operand.
        rs: Reg,
        /// Second operand.
        rt: Reg,
    },
    /// Move from HI: `rd ← HI`.
    Mfhi {
        /// Destination.
        rd: Reg,
    },
    /// Move from LO: `rd ← LO`.
    Mflo {
        /// Destination.
        rd: Reg,
    },
    /// Move to HI: `HI ← rs`.
    Mthi {
        /// Source.
        rs: Reg,
    },
    /// Move to LO: `LO ← rs`.
    Mtlo {
        /// Source.
        rs: Reg,
    },
    /// Memory load: `rt ← mem[rs + offset]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Whether sub-word loads sign-extend (`lb`/`lh`) or zero-extend
        /// (`lbu`/`lhu`). Ignored for word loads.
        signed: bool,
        /// Destination.
        rt: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Unaligned-load helper (`lwl`/`lwr`): merges part of a word into
    /// `rt`. Note these *read* `rt` as well.
    LoadUnaligned {
        /// `true` for `lwl`, `false` for `lwr`.
        left: bool,
        /// Destination (and merge source).
        rt: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Unaligned-store helper (`swl`/`swr`): stores part of `rt`.
    StoreUnaligned {
        /// `true` for `swl`, `false` for `swr`.
        left: bool,
        /// Value register.
        rt: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Memory store: `mem[rs + offset] ← rt`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value register.
        rt: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Conditional branch. `offset` is in instructions (words) relative to
    /// the instruction after the branch, as encoded.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compared register.
        rs: Reg,
        /// Second compared register (`$zero` for compare-with-zero forms).
        rt: Reg,
        /// Encoded word offset.
        offset: i16,
    },
    /// Unconditional jump to `(pc & 0xf000_0000) | (target << 2)`.
    J {
        /// 26-bit word target field.
        target: u32,
    },
    /// Jump and link (`$ra ← return address`).
    Jal {
        /// 26-bit word target field.
        target: u32,
    },
    /// Jump to register.
    Jr {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Jump to register and link into `rd`.
    Jalr {
        /// Link destination (usually `$ra`).
        rd: Reg,
        /// Register holding the target address.
        rs: Reg,
    },
    /// System call (service selected via `$v0` by convention).
    Syscall,
    /// Breakpoint with a 20-bit code field.
    Break {
        /// Code field (used by the runtime as a halt reason).
        code: u32,
    },
}

/// The functional-unit class an instruction needs in the reconfigurable
/// array, or the reason it cannot be mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple ALU / shifter / comparator operation (one array "level").
    Alu,
    /// Multiplier (multi-cycle unit).
    Multiplier,
    /// Load/store unit (memory-port limited).
    LoadStore,
    /// Branches end a basic block; with speculation they become gating
    /// compares inside the array.
    Branch,
    /// Not mappable to the array (div, jumps, syscall, ...).
    Unsupported,
}

impl Instruction {
    /// Canonical no-operation (`sll $zero, $zero, 0`).
    pub const NOP: Instruction = Instruction::Shift {
        op: ShiftOp::Sll,
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Locations read by this instruction (excluding `$zero`).
    pub fn reads(&self) -> Locs {
        use Instruction::*;
        match *self {
            Alu { rs, rt, .. } => Locs::of(&[DataLoc::Gpr(rs), DataLoc::Gpr(rt)]),
            AluImm { rs, .. } => Locs::of(&[DataLoc::Gpr(rs)]),
            Shift { rt, .. } => Locs::of(&[DataLoc::Gpr(rt)]),
            ShiftVar { rt, rs, .. } => Locs::of(&[DataLoc::Gpr(rt), DataLoc::Gpr(rs)]),
            Lui { .. } => Locs::empty(),
            MulDiv { rs, rt, .. } => Locs::of(&[DataLoc::Gpr(rs), DataLoc::Gpr(rt)]),
            Mfhi { .. } => Locs::of(&[DataLoc::Hi]),
            Mflo { .. } => Locs::of(&[DataLoc::Lo]),
            Mthi { rs } | Mtlo { rs } => Locs::of(&[DataLoc::Gpr(rs)]),
            Load { base, .. } => Locs::of(&[DataLoc::Gpr(base)]),
            // lwl/lwr merge into rt, so they read it too.
            LoadUnaligned { rt, base, .. } => Locs::of(&[DataLoc::Gpr(rt), DataLoc::Gpr(base)]),
            Store { rt, base, .. } | StoreUnaligned { rt, base, .. } => {
                Locs::of(&[DataLoc::Gpr(rt), DataLoc::Gpr(base)])
            }
            Branch { cond, rs, rt, .. } => {
                if cond.uses_rt() {
                    Locs::of(&[DataLoc::Gpr(rs), DataLoc::Gpr(rt)])
                } else {
                    Locs::of(&[DataLoc::Gpr(rs)])
                }
            }
            J { .. } | Jal { .. } | Syscall | Break { .. } => Locs::empty(),
            Jr { rs } | Jalr { rs, .. } => Locs::of(&[DataLoc::Gpr(rs)]),
        }
    }

    /// Locations written by this instruction (excluding `$zero`).
    pub fn writes(&self) -> Locs {
        use Instruction::*;
        match *self {
            Alu { rd, .. }
            | Shift { rd, .. }
            | ShiftVar { rd, .. }
            | Mfhi { rd }
            | Mflo { rd }
            | Jalr { rd, .. } => Locs::of(&[DataLoc::Gpr(rd)]),
            AluImm { rt, .. } | Lui { rt, .. } | Load { rt, .. } | LoadUnaligned { rt, .. } => {
                Locs::of(&[DataLoc::Gpr(rt)])
            }
            MulDiv { .. } => Locs::of(&[DataLoc::Hi, DataLoc::Lo]),
            Mthi { .. } => Locs::of(&[DataLoc::Hi]),
            Mtlo { .. } => Locs::of(&[DataLoc::Lo]),
            Jal { .. } => Locs::of(&[DataLoc::Gpr(Reg::RA)]),
            Store { .. }
            | StoreUnaligned { .. }
            | Branch { .. }
            | J { .. }
            | Jr { .. }
            | Syscall
            | Break { .. } => Locs::empty(),
        }
    }

    /// Whether this instruction transfers control (branch or jump).
    pub fn is_control(&self) -> bool {
        use Instruction::*;
        matches!(
            self,
            Branch { .. } | J { .. } | Jal { .. } | Jr { .. } | Jalr { .. }
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Instruction::Branch { .. })
    }

    /// Whether this is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::LoadUnaligned { .. }
                | Instruction::StoreUnaligned { .. }
        )
    }

    /// The functional-unit class needed to execute this instruction in the
    /// reconfigurable array.
    pub fn fu_class(&self) -> FuClass {
        use Instruction::*;
        match self {
            Alu { .. }
            | AluImm { .. }
            | Shift { .. }
            | ShiftVar { .. }
            | Lui { .. }
            | Mfhi { .. }
            | Mflo { .. }
            | Mthi { .. }
            | Mtlo { .. } => FuClass::Alu,
            MulDiv { op, .. } => {
                if op.is_div() {
                    // The array has no divider (paper §4.1: ALUs, shifters,
                    // multipliers and LD/ST units only).
                    FuClass::Unsupported
                } else {
                    FuClass::Multiplier
                }
            }
            Load { .. } | Store { .. } => FuClass::LoadStore,
            // The array's LD/ST units handle whole accesses only; the
            // partial-word merges stay on the processor.
            LoadUnaligned { .. } | StoreUnaligned { .. } => FuClass::Unsupported,
            Branch { .. } => FuClass::Branch,
            J { .. } | Jal { .. } | Jr { .. } | Jalr { .. } | Syscall | Break { .. } => {
                FuClass::Unsupported
            }
        }
    }

    /// For PC-relative branches, the absolute target given the branch's own
    /// address. Returns `None` for non-branches.
    pub fn branch_target(&self, pc: u32) -> Option<u32> {
        match self {
            Instruction::Branch { offset, .. } => Some(
                pc.wrapping_add(4)
                    .wrapping_add(((*offset as i32) << 2) as u32),
            ),
            _ => None,
        }
    }

    /// For absolute jumps (`j`/`jal`), the target address given the jump's
    /// own address.
    pub fn jump_target(&self, pc: u32) -> Option<u32> {
        match self {
            Instruction::J { target } | Instruction::Jal { target } => {
                Some((pc.wrapping_add(4) & 0xf000_0000) | (target << 2))
            }
            _ => None,
        }
    }

    /// The *encoded* destination register, including `$zero`. Unlike
    /// [`writes`](Instruction::writes) — which models architectural
    /// effect and therefore drops `$zero` — this reports what the
    /// instruction word says, so static analyzers can flag suspicious
    /// writes to the hardwired zero register. `jal`'s implicit `$ra` and
    /// HI/LO destinations are not encoded register fields and return
    /// `None`.
    pub fn dest_gpr(&self) -> Option<Reg> {
        use Instruction::*;
        match *self {
            Alu { rd, .. }
            | Shift { rd, .. }
            | ShiftVar { rd, .. }
            | Mfhi { rd }
            | Mflo { rd }
            | Jalr { rd, .. } => Some(rd),
            AluImm { rt, .. } | Lui { rt, .. } | Load { rt, .. } | LoadUnaligned { rt, .. } => {
                Some(rt)
            }
            _ => None,
        }
    }

    /// Whether this is the canonical no-op (`sll $zero, $zero, 0`).
    pub fn is_nop(&self) -> bool {
        *self == Instruction::NOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_never_in_dataflow() {
        let i = Instruction::Alu {
            op: AluOp::Addu,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::T0,
        };
        assert_eq!(i.writes().len(), 0);
        let reads: Vec<_> = i.reads().iter().collect();
        assert_eq!(reads, vec![DataLoc::Gpr(Reg::T0)]);
    }

    #[test]
    fn muldiv_writes_hi_and_lo() {
        let i = Instruction::MulDiv {
            op: MulDivOp::Mult,
            rs: Reg::A0,
            rt: Reg::A1,
        };
        assert!(i.writes().contains(DataLoc::Hi));
        assert!(i.writes().contains(DataLoc::Lo));
        assert_eq!(i.fu_class(), FuClass::Multiplier);
    }

    #[test]
    fn div_is_unsupported_in_array() {
        let i = Instruction::MulDiv {
            op: MulDivOp::Div,
            rs: Reg::A0,
            rt: Reg::A1,
        };
        assert_eq!(i.fu_class(), FuClass::Unsupported);
    }

    #[test]
    fn alu_eval_matches_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u32::MAX);
        assert_eq!(AluOp::Slt.eval(u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.eval(u32::MAX, 0), 0);
        assert_eq!(AluOp::Nor.eval(0, 0), u32::MAX);
    }

    #[test]
    fn imm_ops_extend_correctly() {
        assert_eq!(AluImmOp::Addiu.eval(10, 0xffff), 9); // -1 sign-extended
        assert_eq!(AluImmOp::Ori.eval(0, 0xffff), 0xffff); // zero-extended
        assert_eq!(AluImmOp::Slti.eval(0, 0xffff), 0); // 0 < -1 is false
        assert_eq!(AluImmOp::Sltiu.eval(0, 0xffff), 1); // 0 < 0xffffffff
    }

    #[test]
    fn shift_masks_amount() {
        assert_eq!(ShiftOp::Sll.eval(1, 33), 2);
        assert_eq!(ShiftOp::Sra.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(ShiftOp::Srl.eval(0x8000_0000, 31), 1);
    }

    #[test]
    fn muldiv_eval_div_by_zero_is_deterministic() {
        assert_eq!(MulDivOp::Divu.eval(7, 0), (7, u32::MAX));
        assert_eq!(MulDivOp::Div.eval(0x8000_0000, u32::MAX), (0, 0x8000_0000));
        assert_eq!(MulDivOp::Div.eval(7, 2), (1, 3));
        assert_eq!(
            MulDivOp::Div.eval((-7i32) as u32, 2),
            ((-1i32) as u32, (-3i32) as u32)
        );
    }

    #[test]
    fn mult_eval_full_width() {
        let (hi, lo) = MulDivOp::Multu.eval(0xffff_ffff, 2);
        assert_eq!((hi, lo), (1, 0xffff_fffe));
        let (hi, lo) = MulDivOp::Mult.eval((-3i32) as u32, 4);
        assert_eq!(((hi as i64) << 32 | lo as i64), -12);
    }

    #[test]
    fn branch_target_computation() {
        let b = Instruction::Branch {
            cond: BranchCond::Eq,
            rs: Reg::T0,
            rt: Reg::T1,
            offset: -2,
        };
        assert_eq!(b.branch_target(0x100), Some(0x100 + 4 - 8));
    }

    #[test]
    fn jump_target_uses_region_bits() {
        let j = Instruction::J { target: 0x40 };
        assert_eq!(j.jump_target(0x1000_0000), Some(0x1000_0100));
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Lez.eval(0, 0));
        assert!(BranchCond::Lez.eval((-5i32) as u32, 0));
        assert!(!BranchCond::Gtz.eval(0, 0));
        assert!(BranchCond::Gez.eval(0, 0));
        assert!(BranchCond::Ltz.eval(0x8000_0000, 0));
        assert!(BranchCond::Ne.eval(1, 2));
    }

    #[test]
    fn nop_constant_is_inert() {
        assert_eq!(Instruction::NOP.reads().len(), 0);
        assert_eq!(Instruction::NOP.writes().len(), 0);
        assert_eq!(Instruction::NOP.fu_class(), FuClass::Alu);
    }
}
