//! The `dim serve` daemon: accept loop, bounded request queue, wave
//! scheduling onto the dim-sweep work-stealing pool, shared warm shards,
//! live status, and graceful drain.
//!
//! Life of a request: a connection thread reads one request-batch frame,
//! answers `status`/`shutdown` inline, and tries to queue the rest.
//! Queueing is where backpressure lives — a full queue or an exhausted
//! tenant quota earns an immediate [`Reply::Busy`] with a retry hint;
//! the server never buffers without bound. The dispatcher drains the
//! queue in waves and runs each wave on `dim_sweep::execute_jobs`, so
//! request execution shares the sweep engine's pool, panic capture, and
//! per-worker [`FlightGuard`] discipline. Workers send replies back
//! through per-request channels; the connection thread writes the reply
//! batch in request order.
//!
//! Graceful shutdown (`shutdown` request): stop accepting, refuse new
//! work, drain in-flight waves, flush replies, snapshot every shard to
//! `--shard-dir`, publish a final `done` status, remove the socket.

use crate::proto::{
    encode_reply_batch, scale_name, Command, Reply, Request, MAX_FRAME_PAYLOAD, WIRE_FRAME,
};
use crate::request::validate_request;
use crate::shard::{shard_id, ShardManager};
use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::{HaltReason, Machine};
use dim_obs::frame::{read_frame, write_frame};
use dim_obs::span::percentile_nanos;
use dim_obs::status::{write_status, StatusEntry, StatusFile, StatusPulse, STATUS_FILE_NAME};
use dim_obs::{
    FlightGuard, MonotonicClock, ObjectWriter, Probe as _, SharedClock, SpanId, SpanSheet,
    SPAN_FILE_NAME,
};
use dim_sweep::{atomic_write, capture_panics, execute_jobs, DEFAULT_FLIGHT_CAPACITY};
use dim_workloads::validate;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Status-pulse cadence when the request does not override it.
const DEFAULT_PULSE_CYCLES: u64 = 250_000;
/// Accept-loop poll interval while waiting for connections or drain.
/// This bounds both connection-setup latency and shutdown reaction
/// time, so it is deliberately short.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// How long the drain waits for final replies to reach their sockets.
const REPLY_FLUSH_TIMEOUT: Duration = Duration::from_secs(3);
/// Default span-sheet capacity (spans, not requests; a request tree is
/// typically 6–7 spans).
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;
/// Recent request latencies kept for the live p99 column.
const LATENCY_WINDOW: usize = 1_024;

/// Everything `dim serve` needs to run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Worker threads per dispatch wave.
    pub jobs: usize,
    /// Bounded queue capacity; beyond it requests earn `Busy`.
    pub queue_capacity: usize,
    /// Maximum queued-or-running requests per tenant.
    pub tenant_quota: usize,
    /// Shard warm-start/drain directory (`<id>.dimrc` per shard).
    pub shard_dir: Option<PathBuf>,
    /// Directory for `status.dimstat` and `flight/` failure dumps.
    pub out_dir: Option<PathBuf>,
    /// Flight-recorder window per worker (0 disables the black box).
    pub flight_capacity: usize,
    /// Status/telemetry publish cadence in simulated cycles.
    pub telemetry_interval: u64,
    /// Wall-clock span capacity (0 disables span tracing). Spans dump
    /// to `out_dir/spans.dimspan` at drain.
    pub span_capacity: usize,
}

impl ServeOptions {
    /// Defaults for everything but the socket path.
    pub fn new(socket: PathBuf) -> ServeOptions {
        ServeOptions {
            socket,
            jobs: 2,
            queue_capacity: 64,
            tenant_quota: 16,
            shard_dir: None,
            out_dir: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            telemetry_interval: DEFAULT_PULSE_CYCLES,
            span_capacity: DEFAULT_SPAN_CAPACITY,
        }
    }
}

/// Why the server could not start or finish cleanly.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem trouble.
    Io(io::Error),
    /// Anything else, human-readable.
    Msg(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve: {e}"),
            ServeError::Msg(m) => write!(f, "serve: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// What a finished server did, for logs and tests.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that completed with `Ok`.
    pub completed: u64,
    /// Requests that completed with `Error`.
    pub failed: u64,
    /// Requests refused with `Busy`.
    pub busy_rejected: u64,
    /// Shards alive at drain.
    pub shards: usize,
    /// Shard images imported at start.
    pub shards_imported: usize,
    /// Import failures (file name: reason), server kept going.
    pub import_errors: Vec<String>,
}

#[derive(Debug, Default, Clone)]
struct TenantStats {
    outstanding: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    busy: u64,
}

struct Pending {
    seq: u64,
    request: Request,
    reply_tx: mpsc::Sender<Reply>,
    /// Root of this request's span tree (opened at enqueue, closed in
    /// `finish_request`); `SpanId::NONE` when tracing is off.
    root_span: SpanId,
    /// The currently open stage child (`queue_wait`, then `schedule`).
    stage_span: SpanId,
    /// Clock reading at enqueue, for end-to-end latency.
    enqueue_nanos: u64,
}

/// Entry 0 aggregates the server; entries `1..=jobs` track workers.
struct StatusBoard {
    path: Option<PathBuf>,
    entries: Mutex<Vec<StatusEntry>>,
}

impl StatusBoard {
    fn new(path: Option<PathBuf>, label: &str, jobs: usize) -> StatusBoard {
        let mut entries = vec![StatusEntry {
            source: "serve".into(),
            label: label.to_string(),
            state: "running".into(),
            ..Default::default()
        }];
        for w in 0..jobs {
            entries.push(StatusEntry {
                source: format!("worker-{w}"),
                state: "idle".into(),
                ..Default::default()
            });
        }
        StatusBoard {
            path,
            entries: Mutex::new(entries),
        }
    }

    fn update(&self, f: impl FnOnce(&mut Vec<StatusEntry>)) {
        let mut entries = self.entries.lock().expect("status board lock");
        f(&mut entries);
        if let Some(path) = &self.path {
            let file = StatusFile {
                entries: entries.clone(),
            };
            // Advisory host-side output: write errors are swallowed.
            let _ = write_status(path, &file);
        }
    }
}

/// Fixed window of recent request latencies (microseconds) feeding the
/// live p99 column; overwrites oldest-first once full.
#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    fn p99(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        percentile_nanos(&sorted, 99)
    }
}

struct ServerState {
    opts: ServeOptions,
    clock: SharedClock,
    /// Wall-clock span sheet shared by listener, dispatcher and
    /// workers; `None` when `span_capacity` is 0.
    spans: Option<SpanSheet>,
    latencies: Mutex<LatencyRing>,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    seq: AtomicU64,
    /// Request batches currently being read/executed/written by
    /// connection threads; the drain waits for zero so the last reply
    /// reaches its socket before the process exits.
    batches_in_flight: AtomicI64,
    tenants: Mutex<BTreeMap<String, TenantStats>>,
    shards: ShardManager,
    board: StatusBoard,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    busy_rejected: AtomicU64,
}

impl ServerState {
    fn span_begin_root(&self, stage: &'static str, tenant: &str, seq: u64) -> SpanId {
        self.spans
            .as_ref()
            .map_or(SpanId::NONE, |s| s.begin_root(stage, tenant, seq))
    }

    fn span_begin(&self, stage: &'static str, parent: SpanId) -> SpanId {
        self.spans
            .as_ref()
            .map_or(SpanId::NONE, |s| s.begin(stage, parent))
    }

    fn span_end(&self, id: SpanId) {
        if let Some(sheet) = &self.spans {
            sheet.end(id);
        }
    }

    /// A drop guard for a fallible section; ends the span on every
    /// exit path. `None` when tracing is off (dropping `None` is
    /// free).
    fn span_guard(&self, stage: &'static str, parent: SpanId) -> Option<dim_obs::SpanGuard<'_>> {
        self.spans.as_ref().map(|s| s.guard(stage, parent))
    }

    fn status_json(&self) -> String {
        let queue_depth = self.queue.lock().expect("queue lock").len() as u64;
        let mut tenants_json = String::from("[");
        {
            let tenants = self.tenants.lock().expect("tenant lock");
            for (i, (name, t)) in tenants.iter().enumerate() {
                if i > 0 {
                    tenants_json.push(',');
                }
                let mut o = ObjectWriter::new();
                o.field_str("tenant", name)
                    .field_u64("outstanding", t.outstanding)
                    .field_u64("submitted", t.submitted)
                    .field_u64("completed", t.completed)
                    .field_u64("failed", t.failed)
                    .field_u64("busy_rejected", t.busy);
                tenants_json.push_str(&o.finish());
            }
        }
        tenants_json.push(']');
        let mut shards_json = String::from("[");
        for (i, s) in self.shards.stats().iter().enumerate() {
            if i > 0 {
                shards_json.push(',');
            }
            let mut o = ObjectWriter::new();
            o.field_str("id", &s.id)
                .field_u64("resident", s.resident)
                .field_u64("admissions", s.admissions)
                .field_u64("admitted_configs", s.admitted_configs)
                .field_u64("duplicates", s.duplicates)
                .field_u64("evictions", s.evictions)
                .field_u64("rejected", s.rejected)
                .field_u64("warm_loads", s.warm_loads);
            shards_json.push_str(&o.finish());
        }
        shards_json.push(']');
        let mut o = ObjectWriter::new();
        o.field_str("command", "status")
            .field_bool("draining", self.draining.load(Ordering::SeqCst))
            .field_u64("queue_depth", queue_depth)
            .field_u64("queue_capacity", self.opts.queue_capacity as u64)
            .field_u64("jobs", self.opts.jobs as u64)
            .field_u64("submitted", self.submitted.load(Ordering::SeqCst))
            .field_u64("completed", self.completed.load(Ordering::SeqCst))
            .field_u64("failed", self.failed.load(Ordering::SeqCst))
            .field_u64("busy_rejected", self.busy_rejected.load(Ordering::SeqCst))
            .field_raw("tenants", &tenants_json)
            .field_raw("shards", &shards_json);
        o.finish()
    }

    /// Handles one request at enqueue time. `Some(reply)` answers it
    /// immediately (inline command, backpressure, or validation error);
    /// `None` means it was queued and will reply through `reply_tx`.
    fn immediate_or_enqueue(
        self: &Arc<ServerState>,
        request: Request,
        reply_tx: &mpsc::Sender<Reply>,
    ) -> Option<Reply> {
        match request.command {
            Command::Status => {
                return Some(Reply::Ok {
                    json: self.status_json(),
                })
            }
            Command::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                self.queue_cv.notify_all();
                let mut o = ObjectWriter::new();
                o.field_str("command", "shutdown")
                    .field_bool("draining", true);
                return Some(Reply::Ok { json: o.finish() });
            }
            Command::Run | Command::Accel | Command::Explain => {}
        }
        if let Err(message) = validate_request(&request) {
            return Some(Reply::Error {
                message: format!("invalid request: {message}"),
            });
        }
        if dim_workloads::by_name(&request.workload).is_none() {
            return Some(Reply::Error {
                message: format!("unknown workload `{}`", request.workload),
            });
        }
        let mut queue = self.queue.lock().expect("queue lock");
        if self.draining.load(Ordering::SeqCst) {
            return Some(Reply::Error {
                message: "server is draining (shutdown in progress)".into(),
            });
        }
        if queue.len() >= self.opts.queue_capacity {
            self.busy_rejected.fetch_add(1, Ordering::SeqCst);
            self.bump_tenant(&request.tenant, |t| t.busy += 1);
            return Some(Reply::Busy {
                retry_after_ms: self.retry_hint(queue.len()),
                reason: format!("queue full ({}/{})", queue.len(), self.opts.queue_capacity),
            });
        }
        {
            let mut tenants = self.tenants.lock().expect("tenant lock");
            let t = tenants.entry(request.tenant.clone()).or_default();
            if t.outstanding >= self.opts.tenant_quota as u64 {
                t.busy += 1;
                drop(tenants);
                self.busy_rejected.fetch_add(1, Ordering::SeqCst);
                return Some(Reply::Busy {
                    retry_after_ms: self.retry_hint(queue.len()),
                    reason: format!(
                        "tenant `{}` quota exhausted ({}/{})",
                        request.tenant, self.opts.tenant_quota, self.opts.tenant_quota
                    ),
                });
            }
            t.outstanding += 1;
            t.submitted += 1;
        }
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.submitted.fetch_add(1, Ordering::SeqCst);
        // The span tree starts the moment the request is accepted:
        // root "request" plus its first stage child "queue_wait".
        let root_span = self.span_begin_root("request", &request.tenant, seq);
        let stage_span = self.span_begin("queue_wait", root_span);
        let enqueue_nanos = self.clock.now_nanos();
        queue.push_back(Pending {
            seq,
            request,
            reply_tx: reply_tx.clone(),
            root_span,
            stage_span,
            enqueue_nanos,
        });
        let depth = queue.len() as u64;
        drop(queue);
        self.board.update(|entries| {
            entries[0].total += 1;
            entries[0].queue_depth = depth;
        });
        self.queue_cv.notify_all();
        None
    }

    fn retry_hint(&self, queue_len: usize) -> u32 {
        // Rough time for the backlog to clear one wave: deeper queue,
        // longer hint. Clamped so clients never stall for long.
        let per_job = (queue_len / self.opts.jobs.max(1)) as u32;
        (100 + per_job * 50).min(2_000)
    }

    fn bump_tenant(&self, tenant: &str, f: impl FnOnce(&mut TenantStats)) {
        let mut tenants = self.tenants.lock().expect("tenant lock");
        f(tenants.entry(tenant.to_string()).or_default());
    }

    fn finish_request(&self, pending: &Pending, reply: Reply) {
        // Close the tree first so bookkeeping below (board I/O) does
        // not inflate the recorded wall time.
        self.span_end(pending.root_span);
        let latency_micros = self.clock.now_nanos().saturating_sub(pending.enqueue_nanos) / 1_000;
        let p99 = {
            let mut ring = self.latencies.lock().expect("latency lock");
            ring.record(latency_micros);
            ring.p99()
        };
        let depth = self.queue.lock().expect("queue lock").len() as u64;
        let ok = matches!(reply, Reply::Ok { .. });
        if ok {
            self.completed.fetch_add(1, Ordering::SeqCst);
        } else {
            self.failed.fetch_add(1, Ordering::SeqCst);
        }
        self.bump_tenant(&pending.request.tenant, |t| {
            t.outstanding = t.outstanding.saturating_sub(1);
            if ok {
                t.completed += 1;
            } else {
                t.failed += 1;
            }
        });
        self.board.update(|entries| {
            entries[0].done += 1;
            entries[0].latency_p99_micros = p99;
            entries[0].queue_depth = depth;
        });
        // A dropped receiver (client gone) just discards the reply.
        let _ = pending.reply_tx.send(reply);
    }
}

fn system_config(request: &Request) -> SystemConfig {
    let shape = match request.shape {
        1 => ArrayShape::config1(),
        2 => ArrayShape::config2(),
        3 => ArrayShape::config3(),
        _ => ArrayShape::infinite(),
    };
    SystemConfig::new(shape, request.slots as usize, request.speculation)
}

fn flight_dump_suffix(state: &ServerState, guard: Option<&FlightGuard>, seq: u64) -> String {
    let (Some(out_dir), Some(guard)) = (&state.opts.out_dir, guard) else {
        return String::new();
    };
    let dump = guard
        .trip_dump()
        .map_or_else(|| guard.dump(), str::to_string);
    let path = out_dir.join("flight").join(format!("req-{seq}.jsonl"));
    match atomic_write(&path, dump.as_bytes()) {
        Ok(()) => format!("; flight dump: {}", path.display()),
        Err(e) => format!("; flight dump write failed: {e}"),
    }
}

/// Executes one queued request on worker `worker`; returns the reply.
/// `exec_span` (open for the duration of this call) parents the
/// per-phase child spans recorded here.
fn run_one(state: &ServerState, pending: &Pending, worker: usize, exec_span: SpanId) -> Reply {
    let request = &pending.request;
    let fail = |message: String| Reply::Error { message };
    let Some(spec) = dim_workloads::by_name(&request.workload) else {
        return fail(format!("unknown workload `{}`", request.workload));
    };
    let built = (spec.build)(request.scale);
    let max_steps = if request.max_steps > 0 {
        request.max_steps
    } else {
        built.max_steps
    };
    let label = format!("req-{}__{}", pending.seq, request.workload);

    if request.command == Command::Run {
        let mut machine = Machine::load(&built.program);
        let sim_guard = state.span_guard("simulate", exec_span);
        let halt = match capture_panics(|| machine.run(max_steps)) {
            Ok(halt) => halt,
            Err(panic_msg) => return fail(format!("worker panic: {panic_msg}")),
        };
        match halt {
            Ok(HaltReason::Exit(_)) => {}
            Ok(HaltReason::StepLimit) => {
                return fail(format!("did not halt within {max_steps} instructions"))
            }
            Err(e) => return fail(format!("simulation failed: {e}")),
        }
        drop(sim_guard);
        let validate_guard = state.span_guard("validate", exec_span);
        if let Err(e) = validate(&machine, &built) {
            return fail(format!("validation failed: {e}"));
        }
        drop(validate_guard);
        let mut o = ObjectWriter::new();
        o.field_str("command", "run")
            .field_str("workload", &request.workload)
            .field_str("scale", scale_name(request.scale))
            .field_u64("retired", machine.stats.instructions)
            .field_u64("cycles", machine.stats.cycles);
        return Reply::Ok { json: o.finish() };
    }

    let config = system_config(request);
    let mut system = System::new(Machine::load(&built.program), config);
    if state.spans.is_some() {
        // Attribute engine host time on the same timebase as the spans.
        system.enable_host_split(Arc::clone(&state.clock));
    }

    // Warm-start from the shared shard. The shard image already passed
    // the trust boundary at admission, and `load_rcache` re-verifies —
    // defense in depth around shared state.
    let id = shard_id(
        &request.workload,
        request.shape,
        request.slots,
        request.speculation,
    );
    let warm_guard = state.span_guard("warm_start", exec_span);
    let mut warm_loaded = false;
    if request.shared_shard {
        if let Some(bytes) = state.shards.warm_bytes(&id) {
            match system.load_rcache(&bytes) {
                Ok(()) => warm_loaded = true,
                Err(e) => return fail(format!("shared shard rejected at load: {e}")),
            }
        }
    }
    drop(warm_guard);

    let mut guard = (state.opts.flight_capacity > 0).then(|| {
        let mut g = FlightGuard::new(
            &label,
            state.opts.flight_capacity,
            request.slots as usize,
            system.stored_bits_per_config(),
        );
        for config in system.cache().iter() {
            g.watchdog_mut().seed_resident(config.entry_pc);
        }
        g
    });
    let mut sink = (request.command == Command::Explain)
        .then(|| dim_obs::JsonlSink::new(Vec::new(), &label, system.stored_bits_per_config()));
    let mut pulse = {
        let entry = StatusEntry {
            source: format!("worker-{worker}"),
            label: label.clone(),
            state: "running".into(),
            total: 1,
            ..Default::default()
        };
        let interval = state.opts.telemetry_interval.max(1);
        let board = &state.board;
        StatusPulse::with_clock(
            entry,
            interval,
            Arc::clone(&state.clock),
            move |e: &StatusEntry| {
                board.update(|entries| entries[worker + 1] = e.clone());
            },
        )
    };

    let sim_guard = state.span_guard("simulate", exec_span);
    let run_result = {
        let mut probe = (sink.as_mut(), (guard.as_mut(), &mut pulse));
        capture_panics(|| {
            let halt = system.run_probed(max_steps, &mut probe);
            probe.finish();
            halt
        })
    };
    drop(sim_guard);
    // The host-split estimate covers the simulate phase; attach it to
    // the exec span whether or not the checks below pass, so failed
    // requests still explain where their time went.
    if let (Some(sheet), Some(split)) = (&state.spans, system.host_split()) {
        sheet.attr(exec_span, split);
    }
    let fail_dump = |reason: String, guard: Option<&FlightGuard>| Reply::Error {
        message: format!("{reason}{}", flight_dump_suffix(state, guard, pending.seq)),
    };
    let halt = match run_result {
        Ok(halt) => halt,
        Err(panic_msg) => return fail_dump(format!("worker panic: {panic_msg}"), guard.as_ref()),
    };
    match halt {
        Ok(HaltReason::Exit(_)) => {}
        Ok(HaltReason::StepLimit) => {
            return fail_dump(
                format!("did not halt within {max_steps} instructions"),
                guard.as_ref(),
            )
        }
        Err(e) => return fail_dump(format!("simulation failed: {e}"), guard.as_ref()),
    }
    if let Some(violation) = guard.as_ref().and_then(FlightGuard::violation) {
        return fail_dump(format!("watchdog tripped: {violation}"), guard.as_ref());
    }
    let validate_guard = state.span_guard("validate", exec_span);
    if let Err(e) = validate(system.machine(), &built) {
        return fail_dump(format!("validation failed: {e}"), guard.as_ref());
    }
    drop(validate_guard);

    let mut explain_json = None;
    if let Some(sink) = sink.take() {
        let (buf, io_error) = sink.into_inner();
        if let Some(e) = io_error {
            return fail(format!("trace capture failed: {e}"));
        }
        let text = match String::from_utf8(buf) {
            Ok(text) => text,
            Err(e) => return fail(format!("trace capture failed: {e}")),
        };
        match dim_explain::explain_text(&text) {
            Ok(ex) => explain_json = Some(ex.to_json()),
            Err(e) => return fail(format!("explain failed: {e}")),
        }
    }

    // Offer the warmed cache back to the shard. Self-produced snapshots
    // re-cross the trust boundary like everyone else's.
    let mut shard_json = None;
    let admit_guard = state.span_guard("shard_admit", exec_span);
    if request.shared_shard {
        let bytes = system.save_rcache();
        match state.shards.admit(&id, &config, &bytes) {
            Ok(outcome) => {
                let mut o = ObjectWriter::new();
                o.field_str("id", &id)
                    .field_u64("admitted", u64::from(outcome.admitted))
                    .field_u64("duplicates", u64::from(outcome.duplicates))
                    .field_u64("evicted", u64::from(outcome.evicted));
                shard_json = Some(o.finish());
            }
            Err(e) => return fail(format!("shard admission failed: {e}")),
        }
    }
    drop(admit_guard);

    let (hits, misses) = system.cache().hit_miss();
    let stats = system.stats();
    let mut cache = ObjectWriter::new();
    cache
        .field_u64("hits", hits)
        .field_u64("misses", misses)
        .field_u64("resident", system.cache().len() as u64)
        .field_u64("configs_built", stats.configs_built);
    let mut o = ObjectWriter::new();
    o.field_str("command", request.command.name())
        .field_str("workload", &request.workload)
        .field_str("scale", scale_name(request.scale))
        .field_u64("shape", u64::from(request.shape))
        .field_u64("slots", u64::from(request.slots))
        .field_bool("speculation", request.speculation)
        .field_bool("shared_shard", request.shared_shard)
        .field_bool("warm_loaded", warm_loaded)
        .field_u64("retired", system.total_instructions())
        .field_u64("accel_cycles", system.total_cycles())
        .field_u64("invocations", stats.array_invocations)
        .field_raw("rcache", &cache.finish());
    if let Some(shard) = shard_json {
        o.field_raw("shard", &shard);
    }
    if let Some(explain) = explain_json {
        o.field_raw("explain", &explain);
    }
    o.field_str("report", &system.report().to_string());
    Reply::Ok { json: o.finish() }
}

/// The dispatcher: drains the queue in waves and runs each wave on the
/// dim-sweep pool. Returns once draining is set and the queue is empty.
fn dispatcher(state: &Arc<ServerState>) {
    loop {
        let (wave, depth): (Vec<Pending>, u64) = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _timeout) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .expect("queue lock");
                queue = guard;
            }
            let take = queue.len().min(state.opts.jobs.max(1) * 4);
            let wave = queue.drain(..take).collect();
            (wave, queue.len() as u64)
        };
        state.board.update(|entries| entries[0].queue_depth = depth);
        let jobs: Vec<_> = wave
            .into_iter()
            .map(|mut pending| {
                // Queue wait ends when the wave drains; the request is
                // now scheduled, waiting for a free worker.
                state.span_end(pending.stage_span);
                pending.stage_span = state.span_begin("schedule", pending.root_span);
                let state = Arc::clone(state);
                move |worker: usize| {
                    state.span_end(pending.stage_span);
                    let exec_span = state.span_begin("exec", pending.root_span);
                    let reply = run_one(&state, &pending, worker, exec_span);
                    state.span_end(exec_span);
                    state.finish_request(&pending, reply);
                    state.board.update(|entries| {
                        entries[worker + 1].state = "idle".into();
                    });
                }
            })
            .collect();
        let threads = state.opts.jobs;
        let _ = execute_jobs(jobs, threads);
    }
}

enum Slot {
    Now(Reply),
    Later(mpsc::Receiver<Reply>),
}

/// Serves one client connection until EOF, protocol error, or drain.
fn connection(state: &Arc<ServerState>, mut stream: UnixStream) {
    loop {
        let payload = match read_frame(WIRE_FRAME, &mut stream, MAX_FRAME_PAYLOAD) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(_) => return,
        };
        state.batches_in_flight.fetch_add(1, Ordering::SeqCst);
        let requests = crate::proto::decode_request_batch(&payload);
        let replies: Vec<Reply> = match requests {
            Err(e) => vec![Reply::Error {
                message: format!("malformed request batch: {e}"),
            }],
            Ok(requests) => {
                let slots: Vec<Slot> = requests
                    .into_iter()
                    .map(|request| {
                        let (tx, rx) = mpsc::channel();
                        match state.immediate_or_enqueue(request, &tx) {
                            Some(reply) => Slot::Now(reply),
                            None => Slot::Later(rx),
                        }
                    })
                    .collect();
                slots
                    .into_iter()
                    .map(|slot| match slot {
                        Slot::Now(reply) => reply,
                        Slot::Later(rx) => rx.recv().unwrap_or(Reply::Error {
                            message: "worker dropped before replying".into(),
                        }),
                    })
                    .collect()
            }
        };
        let wrote = write_frame(WIRE_FRAME, &mut stream, &encode_reply_batch(&replies));
        state.batches_in_flight.fetch_sub(1, Ordering::SeqCst);
        if wrote.is_err() {
            return;
        }
    }
}

fn import_shards(state: &ServerState, summary: &mut ServeSummary) {
    let Some(dir) = &state.opts.shard_dir else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // Directory appears on drain.
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "dimrc"))
        .collect();
    paths.sort();
    for path in paths {
        let id = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let outcome = std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| state.shards.import(&id, &bytes).map_err(|e| e.to_string()));
        match outcome {
            Ok(_) => summary.shards_imported += 1,
            Err(e) => summary
                .import_errors
                .push(format!("{}: {e}", path.display())),
        }
    }
}

fn export_shards(state: &ServerState) -> io::Result<usize> {
    let Some(dir) = &state.opts.shard_dir else {
        return Ok(0);
    };
    let drained = state.shards.export_all();
    let count = drained.len();
    for (id, bytes) in drained {
        atomic_write(&dir.join(format!("{id}.dimrc")), &bytes)?;
    }
    Ok(count)
}

/// Runs the daemon to completion: binds the socket, serves until a
/// `shutdown` request, drains, snapshots shards, and cleans up.
///
/// # Errors
///
/// [`ServeError`] when the socket cannot be bound or the drain cannot
/// persist its artifacts.
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, ServeError> {
    if opts.jobs == 0 {
        return Err(ServeError::Msg("--jobs must be at least 1".into()));
    }
    if opts.queue_capacity == 0 {
        return Err(ServeError::Msg("--queue must be at least 1".into()));
    }
    if opts.socket.exists() {
        std::fs::remove_file(&opts.socket)?;
    }
    let listener = UnixListener::bind(&opts.socket)?;
    listener.set_nonblocking(true)?;

    let status_path = opts.out_dir.as_ref().map(|dir| dir.join(STATUS_FILE_NAME));
    let label = opts.socket.display().to_string();
    let clock: SharedClock = MonotonicClock::shared();
    let state = Arc::new(ServerState {
        opts: opts.clone(),
        spans: (opts.span_capacity > 0)
            .then(|| SpanSheet::new(Arc::clone(&clock), opts.span_capacity)),
        clock,
        latencies: Mutex::new(LatencyRing::default()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        draining: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        batches_in_flight: AtomicI64::new(0),
        tenants: Mutex::new(BTreeMap::new()),
        shards: ShardManager::new(),
        board: StatusBoard::new(status_path, &label, opts.jobs),
        submitted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        busy_rejected: AtomicU64::new(0),
    });
    let mut summary = ServeSummary::default();
    import_shards(&state, &mut summary);
    state.board.update(|_| {}); // Publish the initial board.

    let dispatcher_handle = {
        let state = Arc::clone(&state);
        thread::spawn(move || dispatcher(&state))
    };
    // Accept loop: nonblocking so the drain flag is honored promptly.
    // Connection threads are detached; they refuse new work once
    // draining and exit on client EOF.
    while !state.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let state = Arc::clone(&state);
                thread::spawn(move || connection(&state, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    dispatcher_handle
        .join()
        .map_err(|_| ServeError::Msg("dispatcher panicked".into()))?;

    // Let connection threads flush the final replies before exiting.
    let flush_deadline = state.clock.now_nanos() + REPLY_FLUSH_TIMEOUT.as_nanos() as u64;
    while state.batches_in_flight.load(Ordering::SeqCst) > 0
        && state.clock.now_nanos() < flush_deadline
    {
        thread::sleep(Duration::from_millis(10));
    }

    // Span dump: host-side output outside the determinism contract,
    // written once at drain like the final status.
    if let (Some(dir), Some(sheet)) = (&opts.out_dir, &state.spans) {
        atomic_write(&dir.join(SPAN_FILE_NAME), sheet.render().as_bytes())?;
    }

    summary.shards = export_shards(&state)?;
    summary.submitted = state.submitted.load(Ordering::SeqCst);
    summary.completed = state.completed.load(Ordering::SeqCst);
    summary.failed = state.failed.load(Ordering::SeqCst);
    summary.busy_rejected = state.busy_rejected.load(Ordering::SeqCst);
    state.board.update(|entries| {
        entries[0].state = "done".into();
        for entry in entries.iter_mut().skip(1) {
            entry.state = "done".into();
        }
    });
    let _ = std::fs::remove_file(&opts.socket);
    Ok(summary)
}
