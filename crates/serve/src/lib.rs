//! dim-serve: a persistent multi-tenant acceleration service.
//!
//! The DATE'08 DIM system assumes it owns the machine: one binary, one
//! translator, one reconfiguration cache. Real embedded deployments
//! multiplex — several applications share the CGRA, and the expensive
//! part (binary translation into configurations) is exactly what is
//! worth sharing. This crate turns the one-shot `dim accel` flow into a
//! long-running daemon: clients submit run/accel/explain requests over
//! a Unix socket, a bounded queue feeds the dim-sweep worker pool, and
//! translated configurations outlive the request that produced them in
//! **shared warm shards**, keyed by (workload, shape, slots,
//! speculation). A later request against the same shard starts with the
//! translator's work already done.
//!
//! Sharing translated state across tenants is a trust problem, so every
//! snapshot entering a shard — imported from disk, or offered back by a
//! worker — must pass the structural configuration verifier first
//! ([`dim_core::SnapshotContents::verify`]); a poisoned image is
//! rejected at the boundary and the shard stays clean. Shards drain to
//! ordinary `.dimrc` files on shutdown and warm-start from them on
//! boot, so `dim verify` and `dim accel --load-rcache` interoperate
//! with the daemon's state.
//!
//! Every request records a wall-clock span tree (accept → queue →
//! schedule → execute, with sampled engine host-time attribution)
//! through [`dim_obs::SpanSheet`]; the daemon dumps them to
//! `<status-dir>/spans.dimspan` at drain for `dim spans` to turn into
//! latency waterfalls. All host timing flows through an injectable
//! [`dim_obs::Clock`], so latency behavior is testable with a fake
//! clock and none of it touches the deterministic simulated results.
//!
//! Module map: [`proto`] (wire frames over the shared
//! [`dim_obs::frame`] layout), [`request`] (request-file parsing and
//! validation), [`shard`] (admission, eviction, trust boundary),
//! [`server`] (daemon), [`client`] (one-shot submit), [`selftest`]
//! (in-process load generator behind `dim serve --selftest`).

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod request;
pub mod selftest;
pub mod server;
pub mod shard;

pub use client::{submit, ClientError};
pub use proto::{Command, Reply, Request};
pub use request::{parse_request, validate_request};
pub use selftest::{run_selftest, SelftestOptions, SelftestReport};
pub use server::{serve, ServeError, ServeOptions, ServeSummary};
pub use shard::{shard_id, AdmitOutcome, Shard, ShardError, ShardManager, ShardStats};
