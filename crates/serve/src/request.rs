//! The `dim submit` request file: a strict `key = value` subset (the
//! same dialect as sweep specs — `#` comments, optional quotes,
//! `on`/`off` booleans), parsed into a wire [`Request`] and validated
//! with the same zero-tolerance posture as the CLI's flag checking:
//! unknown keys, malformed values, and contradictory combinations are
//! hard errors, never silently defaulted.

use crate::proto::{Command, Request};
use dim_workloads::Scale;

/// Parses and validates one request file.
///
/// # Errors
///
/// A human-readable message naming the offending line or field.
pub fn parse_request(text: &str) -> Result<Request, String> {
    let mut req = Request::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", idx + 1);
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"');
        if value.is_empty() {
            return Err(err(format!("`{key}` has no value")));
        }
        match key {
            "tenant" => req.tenant = value.to_string(),
            "command" => {
                req.command = match value {
                    "run" => Command::Run,
                    "accel" => Command::Accel,
                    "explain" => Command::Explain,
                    "status" => Command::Status,
                    "shutdown" => Command::Shutdown,
                    other => {
                        return Err(err(format!(
                            "unknown command `{other}` (run|accel|explain|status|shutdown)"
                        )))
                    }
                };
            }
            "workload" => req.workload = value.to_string(),
            "scale" => {
                req.scale = match value {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(err(format!("unknown scale `{other}` (tiny|small|full)"))),
                };
            }
            "shape" => {
                req.shape = match value {
                    "1" | "config1" | "c1" => 1,
                    "2" | "config2" | "c2" => 2,
                    "3" | "config3" | "c3" => 3,
                    "ideal" => 0,
                    other => return Err(err(format!("unknown shape `{other}` (1|2|3|ideal)"))),
                };
            }
            "slots" => {
                req.slots = value
                    .parse::<u32>()
                    .map_err(|_| err(format!("`slots` must be a number, got `{value}`")))?;
            }
            "speculation" => req.speculation = parse_bool(value).map_err(err)?,
            "shared_shard" => req.shared_shard = parse_bool(value).map_err(err)?,
            "max_steps" => {
                req.max_steps = value
                    .parse::<u64>()
                    .map_err(|_| err(format!("`max_steps` must be a number, got `{value}`")))?;
            }
            other => return Err(err(format!("unknown key `{other}`"))),
        }
    }
    validate_request(&req)?;
    Ok(req)
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "on" | "true" | "yes" | "1" => Ok(true),
        "off" | "false" | "no" | "0" => Ok(false),
        other => Err(format!("expected on/off, got `{other}`")),
    }
}

/// The shared request sanity rules, applied both client-side (so `dim
/// submit` fails fast) and server-side at enqueue (so a hand-rolled
/// client cannot sneak an invalid request past the file parser).
///
/// # Errors
///
/// A human-readable message naming the violated rule.
pub fn validate_request(req: &Request) -> Result<(), String> {
    if req.tenant.is_empty() {
        return Err("`tenant` must not be empty".into());
    }
    match req.command {
        Command::Status | Command::Shutdown => {
            if !req.workload.is_empty() {
                return Err(format!(
                    "`workload` does not apply to command `{}`",
                    req.command.name()
                ));
            }
        }
        Command::Run | Command::Accel | Command::Explain => {
            if req.workload.is_empty() {
                return Err(format!(
                    "command `{}` requires a `workload`",
                    req.command.name()
                ));
            }
            if req.slots == 0 {
                return Err("`slots` must be at least 1".into());
            }
        }
    }
    if req.shape > 3 {
        return Err(format!("shape tag {} out of range (0..=3)", req.shape));
    }
    if req.shared_shard && req.shape == 0 {
        return Err(
            "shared shards are not supported with shape `ideal` (the idealized array has no \
             finite cache to share)"
                .into(),
        );
    }
    if req.shared_shard && req.command == Command::Run {
        return Err("`shared_shard` does not apply to command `run` (no accelerator)".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_request() {
        let req = parse_request(
            "
            # an accel request
            tenant = alice
            command = accel
            workload = \"crc32\"
            scale = small
            shape = 3
            slots = 16
            speculation = off
            shared_shard = on
            max_steps = 5000000
            ",
        )
        .unwrap();
        assert_eq!(req.tenant, "alice");
        assert_eq!(req.command, Command::Accel);
        assert_eq!(req.workload, "crc32");
        assert_eq!(req.scale, Scale::Small);
        assert_eq!(req.shape, 3);
        assert_eq!(req.slots, 16);
        assert!(!req.speculation);
        assert!(req.shared_shard);
        assert_eq!(req.max_steps, 5_000_000);
    }

    #[test]
    fn defaults_are_sane() {
        let req = parse_request("workload = crc32").unwrap();
        assert_eq!(req.tenant, "default");
        assert_eq!(req.command, Command::Accel);
        assert_eq!(req.scale, Scale::Tiny);
        assert_eq!(req.shape, 2);
        assert_eq!(req.slots, 64);
        assert!(req.speculation);
        assert!(!req.shared_shard);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        for (text, needle) in [
            ("wrkload = crc32", "unknown key"),
            ("workload = crc32\nscale = huge", "unknown scale"),
            ("workload = crc32\nshape = 9", "unknown shape"),
            ("workload = crc32\nslots = many", "must be a number"),
            ("workload = crc32\nspeculation = maybe", "expected on/off"),
            ("workload crc32", "expected `key = value`"),
            ("workload =", "has no value"),
        ] {
            let err = parse_request(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` → `{err}`");
        }
    }

    #[test]
    fn rejects_contradictions() {
        for (text, needle) in [
            ("command = accel", "requires a `workload`"),
            ("command = status\nworkload = crc32", "does not apply"),
            ("workload = crc32\nslots = 0", "at least 1"),
            (
                "workload = crc32\nshape = ideal\nshared_shard = on",
                "not supported with shape `ideal`",
            ),
            (
                "command = run\nworkload = crc32\nshared_shard = on",
                "does not apply to command `run`",
            ),
            ("workload = crc32\ntenant = \"\"", "has no value"),
        ] {
            let err = parse_request(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` → `{err}`");
        }
        // A hand-rolled wire request can carry an empty tenant even
        // though the file parser cannot express one.
        let req = Request {
            workload: "crc32".into(),
            tenant: String::new(),
            ..Request::default()
        };
        let err = validate_request(&req).unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");
    }

    #[test]
    fn status_and_shutdown_need_no_workload() {
        assert_eq!(
            parse_request("command = status").unwrap().command,
            Command::Status
        );
        assert_eq!(
            parse_request("command = shutdown").unwrap().command,
            Command::Shutdown
        );
    }
}
