//! One-shot client for the serve wire protocol: connect, write one
//! request batch, read one reply batch. This is all `dim submit` needs,
//! and the selftest load generator reuses it verbatim so the benchmark
//! exercises the same path a real client does.

use crate::proto::{
    decode_reply_batch, encode_request_batch, Reply, Request, MAX_FRAME_PAYLOAD, WIRE_FRAME,
};
use dim_obs::frame::{read_frame, write_frame, ReadFrameError};
use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a submission failed before a reply arrived.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or the stream broke mid-exchange.
    Io(io::Error),
    /// The server's bytes did not parse as a reply frame.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "submit: {e}"),
            ClientError::Protocol(m) => write!(f, "submit: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ReadFrameError> for ClientError {
    fn from(e: ReadFrameError) -> ClientError {
        match e {
            ReadFrameError::Io(e) => ClientError::Io(e),
            ReadFrameError::Frame(e) => ClientError::Protocol(format!("bad reply frame: {e}")),
        }
    }
}

/// Sends one batch of requests and waits for the matching replies.
///
/// The reply vector is index-aligned with `requests`.
///
/// # Errors
///
/// [`ClientError`] on connection failure, a torn stream, or a reply
/// that fails frame/batch validation (including a count mismatch).
pub fn submit(socket: &Path, requests: &[Request]) -> Result<Vec<Reply>, ClientError> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(WIRE_FRAME, &mut stream, &encode_request_batch(requests))?;
    let payload = read_frame(WIRE_FRAME, &mut stream, MAX_FRAME_PAYLOAD)?
        .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
    let replies =
        decode_reply_batch(&payload).map_err(|e| ClientError::Protocol(format!("{e}")))?;
    if replies.len() != requests.len() {
        return Err(ClientError::Protocol(format!(
            "reply count mismatch: sent {}, got {}",
            requests.len(),
            replies.len()
        )));
    }
    Ok(replies)
}
