//! The `dim serve` wire protocol.
//!
//! One message = one binary frame from the shared [`dim_core::frame`]
//! helper — magic `DIMSV\0`, version, payload length, payload, FNV-1a 64
//! checksum — exactly the `.dimrc` framing discipline, so a corrupted or
//! truncated message is rejected before any field is interpreted. The
//! payload is a *batch*: a kind tag, an item count, then the items, all
//! little-endian via the `dim_cgra::snapshot` wire primitives.
//!
//! A client writes one request-batch frame and reads exactly one
//! reply-batch frame with one [`Reply`] per [`Request`], in request
//! order. Backpressure is explicit: a server that cannot queue a request
//! answers it with [`Reply::Busy`] and a retry hint instead of buffering
//! without bound.

use dim_cgra::snapshot::{put_u32, put_u64, Cursor, WireError};
use dim_core::frame::FrameSpec;
use dim_workloads::Scale;

/// Frame magic of a serve wire message.
pub const WIRE_MAGIC: &[u8; 6] = b"DIMSV\0";
/// Current wire protocol version.
pub const WIRE_VERSION: u16 = 1;
/// The wire protocol's frame identity for [`dim_core::frame`].
pub const WIRE_FRAME: FrameSpec = FrameSpec {
    magic: WIRE_MAGIC,
    version: WIRE_VERSION,
};
/// Ceiling on a single frame's payload: a corrupt length field must not
/// be able to request an unbounded allocation.
pub const MAX_FRAME_PAYLOAD: u64 = 16 * 1024 * 1024;

/// Ceiling on strings and batch sizes inside a payload (same defense as
/// [`MAX_FRAME_PAYLOAD`], one layer down).
const MAX_STRING: u32 = 4096;
const MAX_BATCH: u32 = 4096;

const KIND_REQUEST_BATCH: u8 = 1;
const KIND_REPLY_BATCH: u8 = 2;

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Plain (unaccelerated) simulation of a workload.
    Run,
    /// Accelerated simulation; the only command that touches shards.
    Accel,
    /// Accelerated simulation returning region-level explain JSON.
    Explain,
    /// Server statistics snapshot; never queued.
    Status,
    /// Begin graceful shutdown: drain the queue, snapshot shards, exit.
    Shutdown,
}

impl Command {
    fn to_tag(self) -> u8 {
        match self {
            Command::Run => 0,
            Command::Accel => 1,
            Command::Explain => 2,
            Command::Status => 3,
            Command::Shutdown => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Command, WireError> {
        match tag {
            0 => Ok(Command::Run),
            1 => Ok(Command::Accel),
            2 => Ok(Command::Explain),
            3 => Ok(Command::Status),
            4 => Ok(Command::Shutdown),
            other => Err(WireError::Corrupt(format!("command tag {other}"))),
        }
    }

    /// The name used in request files and result JSON.
    pub fn name(self) -> &'static str {
        match self {
            Command::Run => "run",
            Command::Accel => "accel",
            Command::Explain => "explain",
            Command::Status => "status",
            Command::Shutdown => "shutdown",
        }
    }
}

/// One unit of work submitted to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Quota/accounting identity of the submitter.
    pub tenant: String,
    /// What to do.
    pub command: Command,
    /// Workload name from `dim_workloads::suite()` (empty for
    /// status/shutdown).
    pub workload: String,
    /// Input scale.
    pub scale: Scale,
    /// Array geometry: 1–3 for the paper's configs, 0 for the idealized
    /// infinite array.
    pub shape: u8,
    /// Reconfiguration-cache slots.
    pub slots: u32,
    /// Whether speculation is enabled.
    pub speculation: bool,
    /// Whether this request warm-starts from (and feeds) the shared
    /// per-workload rcache shard.
    pub shared_shard: bool,
    /// Instruction budget override (0 = the workload's default).
    pub max_steps: u64,
}

impl Default for Request {
    fn default() -> Request {
        Request {
            tenant: "default".into(),
            command: Command::Accel,
            workload: String::new(),
            scale: Scale::Tiny,
            shape: 2,
            slots: 64,
            speculation: true,
            shared_shard: false,
            max_steps: 0,
        }
    }
}

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The request completed; `json` is the command's result object.
    Ok {
        /// Result JSON (one object, no trailing newline).
        json: String,
    },
    /// The server refused to queue the request — bounded queue full or
    /// tenant quota exhausted. Retry after the hinted delay.
    Busy {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u32,
        /// Which limit was hit (for humans and logs).
        reason: String,
    },
    /// The request was invalid or its execution failed.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(c: &mut Cursor<'_>) -> Result<String, WireError> {
    let len = c.u32()?;
    if len > MAX_STRING {
        return Err(WireError::Corrupt(format!("string length {len}")));
    }
    let mut bytes = Vec::with_capacity(len as usize);
    for _ in 0..len {
        bytes.push(c.u8()?);
    }
    String::from_utf8(bytes).map_err(|_| WireError::Corrupt("non-UTF-8 string".into()))
}

fn scale_tag(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

fn scale_from_tag(tag: u8) -> Result<Scale, WireError> {
    match tag {
        0 => Ok(Scale::Tiny),
        1 => Ok(Scale::Small),
        2 => Ok(Scale::Full),
        other => Err(WireError::Corrupt(format!("scale tag {other}"))),
    }
}

/// The name used in request files and result JSON.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

fn put_request(out: &mut Vec<u8>, req: &Request) {
    put_string(out, &req.tenant);
    out.push(req.command.to_tag());
    put_string(out, &req.workload);
    out.push(scale_tag(req.scale));
    out.push(req.shape);
    put_u32(out, req.slots);
    out.push(u8::from(req.speculation));
    out.push(u8::from(req.shared_shard));
    put_u64(out, req.max_steps);
}

fn read_request(c: &mut Cursor<'_>) -> Result<Request, WireError> {
    Ok(Request {
        tenant: read_string(c)?,
        command: Command::from_tag(c.u8()?)?,
        workload: read_string(c)?,
        scale: scale_from_tag(c.u8()?)?,
        shape: c.u8()?,
        slots: c.u32()?,
        speculation: c.u8()? != 0,
        shared_shard: c.u8()? != 0,
        max_steps: c.u64()?,
    })
}

fn put_reply(out: &mut Vec<u8>, reply: &Reply) {
    match reply {
        Reply::Ok { json } => {
            out.push(0);
            // Result JSON can exceed MAX_STRING (explain output); length
            // it as a raw u32 with the frame checksum as integrity.
            put_u32(out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        Reply::Busy {
            retry_after_ms,
            reason,
        } => {
            out.push(1);
            put_u32(out, *retry_after_ms);
            put_string(out, reason);
        }
        Reply::Error { message } => {
            out.push(2);
            put_string(out, message);
        }
    }
}

fn read_reply(c: &mut Cursor<'_>) -> Result<Reply, WireError> {
    match c.u8()? {
        0 => {
            let len = c.u32()?;
            if len as u64 > MAX_FRAME_PAYLOAD {
                return Err(WireError::Corrupt(format!("result length {len}")));
            }
            let mut bytes = Vec::with_capacity(len as usize);
            for _ in 0..len {
                bytes.push(c.u8()?);
            }
            let json = String::from_utf8(bytes)
                .map_err(|_| WireError::Corrupt("non-UTF-8 result".into()))?;
            Ok(Reply::Ok { json })
        }
        1 => Ok(Reply::Busy {
            retry_after_ms: c.u32()?,
            reason: read_string(c)?,
        }),
        2 => Ok(Reply::Error {
            message: read_string(c)?,
        }),
        other => Err(WireError::Corrupt(format!("reply tag {other}"))),
    }
}

fn batch_count(c: &mut Cursor<'_>, what: &str) -> Result<u32, WireError> {
    let count = c.u32()?;
    if count > MAX_BATCH {
        return Err(WireError::Corrupt(format!("{what} batch of {count}")));
    }
    Ok(count)
}

fn finish<T>(c: &Cursor<'_>, items: Vec<T>) -> Result<Vec<T>, WireError> {
    if c.remaining() != 0 {
        return Err(WireError::Corrupt(format!(
            "{} unread payload bytes",
            c.remaining()
        )));
    }
    Ok(items)
}

/// Serializes a request batch into a frame payload.
pub fn encode_request_batch(requests: &[Request]) -> Vec<u8> {
    let mut out = vec![KIND_REQUEST_BATCH];
    put_u32(&mut out, requests.len() as u32);
    for req in requests {
        put_request(&mut out, req);
    }
    out
}

/// Decodes a request-batch frame payload.
///
/// # Errors
///
/// [`WireError`] when the payload is not a well-formed request batch.
pub fn decode_request_batch(payload: &[u8]) -> Result<Vec<Request>, WireError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    if kind != KIND_REQUEST_BATCH {
        return Err(WireError::Corrupt(format!("payload kind {kind}")));
    }
    let count = batch_count(&mut c, "request")?;
    let mut requests = Vec::with_capacity(count as usize);
    for _ in 0..count {
        requests.push(read_request(&mut c)?);
    }
    finish(&c, requests)
}

/// Serializes a reply batch into a frame payload.
pub fn encode_reply_batch(replies: &[Reply]) -> Vec<u8> {
    let mut out = vec![KIND_REPLY_BATCH];
    put_u32(&mut out, replies.len() as u32);
    for reply in replies {
        put_reply(&mut out, reply);
    }
    out
}

/// Decodes a reply-batch frame payload.
///
/// # Errors
///
/// [`WireError`] when the payload is not a well-formed reply batch.
pub fn decode_reply_batch(payload: &[u8]) -> Result<Vec<Reply>, WireError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    if kind != KIND_REPLY_BATCH {
        return Err(WireError::Corrupt(format!("payload kind {kind}")));
    }
    let count = batch_count(&mut c, "reply")?;
    let mut replies = Vec::with_capacity(count as usize);
    for _ in 0..count {
        replies.push(read_reply(&mut c)?);
    }
    finish(&c, replies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_core::frame::{decode_frame, encode_frame};

    fn sample_requests() -> Vec<Request> {
        vec![
            Request {
                tenant: "alice".into(),
                command: Command::Accel,
                workload: "crc32".into(),
                scale: Scale::Small,
                shape: 2,
                slots: 64,
                speculation: true,
                shared_shard: true,
                max_steps: 1_000_000,
            },
            Request {
                tenant: "bob".into(),
                command: Command::Status,
                ..Request::default()
            },
        ]
    }

    #[test]
    fn request_batch_roundtrips() {
        let requests = sample_requests();
        let payload = encode_request_batch(&requests);
        assert_eq!(decode_request_batch(&payload).unwrap(), requests);
    }

    #[test]
    fn reply_batch_roundtrips() {
        let replies = vec![
            Reply::Ok {
                json: "{\"accel_cycles\":123}".into(),
            },
            Reply::Busy {
                retry_after_ms: 250,
                reason: "queue full (8/8)".into(),
            },
            Reply::Error {
                message: "unknown workload `nope`".into(),
            },
        ];
        let payload = encode_reply_batch(&replies);
        assert_eq!(decode_reply_batch(&payload).unwrap(), replies);
    }

    #[test]
    fn rejects_wrong_kind_and_truncation() {
        let requests = sample_requests();
        let payload = encode_request_batch(&requests);
        assert!(decode_reply_batch(&payload).is_err());
        for len in 0..payload.len() {
            assert!(
                decode_request_batch(&payload[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_request_batch(&trailing).is_err());
    }

    /// The wire frame is the `.dimrc` frame with a different magic —
    /// pinned here so the formats cannot drift apart.
    #[test]
    fn wire_frame_follows_shared_framing() {
        let payload = encode_request_batch(&sample_requests());
        let frame = encode_frame(WIRE_FRAME, &payload);
        assert_eq!(&frame[..6], WIRE_MAGIC);
        assert_eq!(frame[6..8], WIRE_VERSION.to_le_bytes());
        assert_eq!(frame[8..16], (payload.len() as u64).to_le_bytes());
        let (version, decoded) = decode_frame(WIRE_FRAME, &frame).unwrap();
        assert_eq!(version, WIRE_VERSION);
        assert_eq!(decoded, payload.as_slice());
    }
}
