//! Shared warm reconfiguration-cache shards.
//!
//! A shard is the server's cross-request, cross-tenant pool of
//! translated configurations for one (workload, shape, slots,
//! speculation) point. Requests with `shared_shard` warm-start from the
//! shard's current contents and, after running, offer their own
//! `.dimrc` snapshot back for admission.
//!
//! **Trust boundary.** Nothing enters a shard unverified: every
//! admission runs the full snapshot pipeline — frame checksum, wire
//! decode, compatibility header, and the static configuration verifier
//! (`dim_cgra::verify` via [`SnapshotContents::verify`]) — the same
//! gauntlet `System::load_rcache` applies. A structurally perfect
//! snapshot whose payload describes a region the translator could never
//! have committed is rejected and the shard is left untouched (the
//! poisoned-entry drill test below proves it).
//!
//! **Determinism.** A shard's drained snapshot is a pure function of its
//! admission sequence: configurations merge in admission order,
//! duplicate entry PCs keep the first-admitted configuration
//! (first-writer-wins), and capacity evicts in FIFO order. Shards share
//! *only* configurations — predictor counters and misspeculation strikes
//! are per-request state and export empty — so a drained shard is a
//! valid `.dimrc` that `dim verify` accepts and a serial replay of the
//! same admissions reproduces byte for byte.

use dim_core::{SnapshotContents, SnapshotError, SystemConfig};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Why an admission or import was refused.
#[derive(Debug)]
pub enum ShardError {
    /// The offered bytes failed the snapshot pipeline (checksum, wire
    /// decode, or the configuration verifier) — the trust boundary.
    Snapshot(SnapshotError),
    /// The snapshot is valid but was taken under different accelerator
    /// parameters than this shard's.
    Incompatible(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Snapshot(e) => write!(f, "shard admission rejected: {e}"),
            ShardError::Incompatible(what) => {
                write!(f, "shard admission incompatible: {what}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<SnapshotError> for ShardError {
    fn from(e: SnapshotError) -> ShardError {
        ShardError::Snapshot(e)
    }
}

/// What one admission did to a shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmitOutcome {
    /// Configurations newly admitted.
    pub admitted: u32,
    /// Configurations skipped because their entry PC was already
    /// resident (first-writer-wins).
    pub duplicates: u32,
    /// Configurations evicted (FIFO) to stay within capacity.
    pub evicted: u32,
}

/// Live counters for one shard, for `status` replies and logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard identity (`<workload>__<shape>_s<slots>_<spec>`).
    pub id: String,
    /// Configurations currently resident.
    pub resident: u64,
    /// Successful admissions (snapshots merged).
    pub admissions: u64,
    /// Configurations admitted across all admissions.
    pub admitted_configs: u64,
    /// Configurations skipped as duplicates.
    pub duplicates: u64,
    /// Configurations evicted for capacity.
    pub evictions: u64,
    /// Admissions rejected at the trust boundary.
    pub rejected: u64,
    /// Warm starts served from this shard.
    pub warm_loads: u64,
}

/// One shared warm shard. All mutation goes through [`admit`](Shard::admit).
#[derive(Debug)]
pub struct Shard {
    /// The compatibility header every admission must match, held as an
    /// otherwise-empty snapshot. `contents.configs` is the resident set
    /// in FIFO admission order.
    contents: SnapshotContents,
    capacity: usize,
    stats: ShardStats,
    /// Cached `contents.encode()`; invalidated by admission.
    encoded: Option<Vec<u8>>,
    /// When recording, every successfully admitted snapshot image in
    /// admission order — the replay script for the determinism tests.
    log: Option<Vec<Vec<u8>>>,
}

impl Shard {
    /// An empty shard whose compatibility header is taken from `config`
    /// — the parameters every admission and warm start must match.
    pub fn new(id: &str, config: &SystemConfig) -> Shard {
        Shard {
            contents: SnapshotContents {
                shape: config.shape,
                cache_slots: config.cache_slots as u64,
                cache_policy: config.cache_policy,
                speculation: config.speculation,
                max_spec_blocks: config.max_spec_blocks,
                support_shifts: config.support_shifts,
                misspec_flush_threshold: config.misspec_flush_threshold,
                predictor: Vec::new(),
                strikes: Vec::new(),
                configs: Vec::new(),
            },
            capacity: config.cache_slots,
            stats: ShardStats {
                id: id.to_string(),
                ..ShardStats::default()
            },
            encoded: None,
            log: None,
        }
    }

    /// Starts recording admitted snapshot images for serial replay.
    pub fn record_admissions(&mut self) {
        self.log = Some(Vec::new());
    }

    /// The recorded admission sequence, if recording.
    pub fn take_log(&mut self) -> Option<Vec<Vec<u8>>> {
        self.log.take()
    }

    /// Current counters.
    pub fn stats(&self) -> ShardStats {
        let mut stats = self.stats.clone();
        stats.resident = self.contents.configs.len() as u64;
        stats
    }

    fn check_header(&self, incoming: &SnapshotContents) -> Result<(), ShardError> {
        let h = &self.contents;
        let mismatch = |field: &str| {
            Err(ShardError::Incompatible(format!(
                "{field} differs from the shard's"
            )))
        };
        if incoming.shape != h.shape {
            return mismatch("array shape");
        }
        if incoming.cache_slots != h.cache_slots {
            return mismatch("cache slots");
        }
        if incoming.cache_policy != h.cache_policy {
            return mismatch("replacement policy");
        }
        if incoming.speculation != h.speculation {
            return mismatch("speculation");
        }
        if incoming.max_spec_blocks != h.max_spec_blocks {
            return mismatch("max_spec_blocks");
        }
        if incoming.support_shifts != h.support_shifts {
            return mismatch("support_shifts");
        }
        if incoming.misspec_flush_threshold != h.misspec_flush_threshold {
            return mismatch("misspec_flush_threshold");
        }
        Ok(())
    }

    /// Offers a `.dimrc` snapshot image for admission. Parses, verifies
    /// (the trust boundary), checks the compatibility header, then
    /// merges: new entry PCs append in order, resident PCs win over
    /// incoming duplicates, FIFO eviction keeps the shard within its
    /// slot capacity. On any error the shard is unchanged.
    ///
    /// # Errors
    ///
    /// [`ShardError`] when the bytes fail the snapshot pipeline or were
    /// taken under different parameters.
    pub fn admit(&mut self, bytes: &[u8]) -> Result<AdmitOutcome, ShardError> {
        let incoming = match SnapshotContents::parse(bytes).and_then(|c| c.verify().map(|()| c)) {
            Ok(contents) => contents,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e.into());
            }
        };
        if let Err(e) = self.check_header(&incoming) {
            self.stats.rejected += 1;
            return Err(e);
        }
        if let Some(log) = &mut self.log {
            log.push(bytes.to_vec());
        }
        let mut outcome = AdmitOutcome::default();
        for config in incoming.configs {
            if self
                .contents
                .configs
                .iter()
                .any(|resident| resident.entry_pc == config.entry_pc)
            {
                outcome.duplicates += 1;
            } else {
                self.contents.configs.push(config);
                outcome.admitted += 1;
            }
        }
        while self.contents.configs.len() > self.capacity {
            self.contents.configs.remove(0);
            outcome.evicted += 1;
        }
        if outcome.admitted > 0 || outcome.evicted > 0 {
            self.encoded = None;
        }
        self.stats.admissions += 1;
        self.stats.admitted_configs += u64::from(outcome.admitted);
        self.stats.duplicates += u64::from(outcome.duplicates);
        self.stats.evictions += u64::from(outcome.evicted);
        Ok(outcome)
    }

    /// The shard as a complete `.dimrc` image (predictor and strikes
    /// empty by policy) — the warm-start payload and the drain artifact.
    pub fn export(&mut self) -> Vec<u8> {
        self.encoded
            .get_or_insert_with(|| self.contents.encode())
            .clone()
    }

    /// Number of resident configurations.
    pub fn resident(&self) -> usize {
        self.contents.configs.len()
    }
}

/// The server's shard table: one [`Shard`] per id, created lazily on
/// first admission and drained to `.dimrc` files at shutdown.
#[derive(Debug, Default)]
pub struct ShardManager {
    shards: Mutex<HashMap<String, Shard>>,
}

/// Identity of the shard a request maps to.
pub fn shard_id(workload: &str, shape: u8, slots: u32, speculation: bool) -> String {
    let shape_key = match shape {
        1 => "c1",
        2 => "c2",
        3 => "c3",
        _ => "ideal",
    };
    let spec = if speculation { "spec" } else { "nospec" };
    format!("{workload}__{shape_key}_s{slots}_{spec}")
}

impl ShardManager {
    /// An empty table.
    pub fn new() -> ShardManager {
        ShardManager::default()
    }

    /// The shard's current image for warm-starting, or `None` when the
    /// shard does not exist or is still empty (a cold start).
    pub fn warm_bytes(&self, id: &str) -> Option<Vec<u8>> {
        let mut shards = self.shards.lock().expect("shard table lock");
        let shard = shards.get_mut(id)?;
        if shard.resident() == 0 {
            return None;
        }
        shard.stats.warm_loads += 1;
        Some(shard.export())
    }

    /// Admits `bytes` into the shard `id`, creating it with `config`'s
    /// compatibility header on first contact.
    ///
    /// # Errors
    ///
    /// [`ShardError`] from [`Shard::admit`].
    pub fn admit(
        &self,
        id: &str,
        config: &SystemConfig,
        bytes: &[u8],
    ) -> Result<AdmitOutcome, ShardError> {
        let mut shards = self.shards.lock().expect("shard table lock");
        shards
            .entry(id.to_string())
            .or_insert_with(|| Shard::new(id, config))
            .admit(bytes)
    }

    /// Imports a drained `.dimrc` image as shard `id` (server start with
    /// `--shard-dir`). The image passes the same trust boundary as any
    /// admission; its own header seeds the shard's.
    ///
    /// # Errors
    ///
    /// [`ShardError`] when the image fails the snapshot pipeline.
    pub fn import(&self, id: &str, bytes: &[u8]) -> Result<AdmitOutcome, ShardError> {
        let contents = SnapshotContents::parse(bytes)?;
        contents.verify()?;
        let mut config = SystemConfig::new(
            contents.shape,
            usize::try_from(contents.cache_slots).map_err(|_| {
                ShardError::Incompatible(format!("cache_slots {} overflows", contents.cache_slots))
            })?,
            contents.speculation,
        );
        config.cache_policy = contents.cache_policy;
        config.max_spec_blocks = contents.max_spec_blocks;
        config.support_shifts = contents.support_shifts;
        config.misspec_flush_threshold = contents.misspec_flush_threshold;
        let mut shards = self.shards.lock().expect("shard table lock");
        shards
            .entry(id.to_string())
            .or_insert_with(|| Shard::new(id, &config))
            .admit(bytes)
    }

    /// Drains every shard to its `.dimrc` image, sorted by id so the
    /// drain order is deterministic.
    pub fn export_all(&self) -> Vec<(String, Vec<u8>)> {
        let mut shards = self.shards.lock().expect("shard table lock");
        let mut out: Vec<(String, Vec<u8>)> = shards
            .iter_mut()
            .map(|(id, shard)| (id.clone(), shard.export()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Counters for every shard, sorted by id.
    pub fn stats(&self) -> Vec<ShardStats> {
        let shards = self.shards.lock().expect("shard table lock");
        let mut out: Vec<ShardStats> = shards.values().map(Shard::stats).collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// Runs `f` on shard `id` if it exists (test hook for recording).
    pub fn with_shard<T>(&self, id: &str, f: impl FnOnce(&mut Shard) -> T) -> Option<T> {
        let mut shards = self.shards.lock().expect("shard table lock");
        shards.get_mut(id).map(f)
    }

    /// Creates shard `id` with `config`'s header if absent (test hook).
    pub fn ensure(&self, id: &str, config: &SystemConfig) {
        let mut shards = self.shards.lock().expect("shard table lock");
        shards
            .entry(id.to_string())
            .or_insert_with(|| Shard::new(id, config));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_core::System;
    use dim_mips::asm::assemble;
    use dim_mips_sim::Machine;
    use std::sync::Arc;

    const SLOTS: usize = 4;

    fn shard_config() -> SystemConfig {
        SystemConfig::new(dim_cgra::ArrayShape::config1(), SLOTS, true)
    }

    /// A program whose hot loop sits `pad` instructions into the text
    /// segment, so different `pad` values yield configurations at
    /// different entry PCs — distinct shard entries.
    fn padded_loop(pad: usize) -> String {
        let mut text = String::from("main: li $s0, 200\n      li $v0, 7\n");
        for i in 0..pad {
            text.push_str(&format!("      addiu $v0, $v0, {}\n", i + 1));
        }
        text.push_str(
            "loop: addu $v0, $v0, $s0
                  xor  $t1, $v0, $s0
                  addu $v0, $v0, $t1
                  addiu $s0, $s0, -1
                  bnez $s0, loop
                  break 0",
        );
        text
    }

    /// A warmed `.dimrc` image from the `pad`-shifted loop, taken under
    /// the shard's exact configuration.
    fn warmed_snapshot(pad: usize) -> Vec<u8> {
        let program = assemble(&padded_loop(pad)).unwrap();
        let mut sys = System::new(Machine::load(&program), shard_config());
        sys.run(10_000_000).unwrap();
        assert!(!sys.cache().is_empty(), "warm-up produced no configs");
        sys.save_rcache()
    }

    #[test]
    fn admission_merges_dedups_and_evicts() {
        let mut shard = Shard::new("t", &shard_config());
        let a = warmed_snapshot(0);
        let first = shard.admit(&a).unwrap();
        assert!(first.admitted > 0);
        assert_eq!(first.duplicates, 0);
        // Re-admitting the same snapshot is pure duplicates.
        let again = shard.admit(&a).unwrap();
        assert_eq!(again.admitted, 0);
        assert_eq!(again.duplicates, first.admitted);
        // Distinct programs land distinct PCs until capacity evicts.
        let mut total = shard.resident();
        for pad in 1..=SLOTS + 2 {
            let outcome = shard.admit(&warmed_snapshot(pad)).unwrap();
            total += outcome.admitted as usize;
            assert!(shard.resident() <= SLOTS, "capacity exceeded");
        }
        assert!(total > SLOTS, "test never filled the shard");
        assert!(shard.stats().evictions > 0, "no evictions exercised");
        // The drained image passes the same pipeline `dim verify` runs.
        let drained = shard.export();
        let contents = SnapshotContents::parse(&drained).expect("drained image parses");
        contents.verify().expect("drained image verifies");
        assert!(contents.predictor.is_empty() && contents.strikes.is_empty());
        assert_eq!(contents.configs.len(), shard.resident());
    }

    /// The poisoned-entry drill: a snapshot with a valid checksum whose
    /// payload fails the static verifier must be rejected at admission,
    /// leaving the shard byte-identical.
    #[test]
    fn poisoned_snapshot_is_rejected_at_the_trust_boundary() {
        let mut shard = Shard::new("t", &shard_config());
        shard.admit(&warmed_snapshot(0)).unwrap();
        let before = shard.export();

        let mut contents = SnapshotContents::parse(&warmed_snapshot(1)).unwrap();
        let victim = &mut contents.configs[0];
        let (loc, _) = victim.writebacks().next().expect("region writes something");
        victim.remove_writeback(loc);
        let poisoned = contents.encode();
        // The poison is structurally perfect: it still parses.
        assert!(SnapshotContents::parse(&poisoned).is_ok());

        match shard.admit(&poisoned).unwrap_err() {
            ShardError::Snapshot(SnapshotError::InvalidConfig { detail, .. }) => {
                assert!(detail.contains("writeback-mismatch"), "{detail}");
            }
            other => panic!("expected InvalidConfig at the trust boundary, got {other:?}"),
        }
        assert_eq!(
            shard.export(),
            before,
            "rejected admission mutated the shard"
        );
        assert_eq!(shard.stats().rejected, 1);

        // Corrupted-byte and wrong-header admissions die the same way.
        let mut torn = warmed_snapshot(1);
        let mid = torn.len() / 2;
        torn[mid] ^= 0x20;
        assert!(matches!(
            shard.admit(&torn).unwrap_err(),
            ShardError::Snapshot(SnapshotError::ChecksumMismatch { .. })
        ));
        let program = assemble(&padded_loop(1)).unwrap();
        let mut other = System::new(
            Machine::load(&program),
            SystemConfig::new(dim_cgra::ArrayShape::config1(), SLOTS * 2, true),
        );
        other.run(10_000_000).unwrap();
        assert!(matches!(
            shard.admit(&other.save_rcache()).unwrap_err(),
            ShardError::Incompatible(_)
        ));
        assert_eq!(shard.export(), before);
    }

    /// The concurrent torture test: N threads hammer one shard through
    /// the admission path; the drained snapshot must round-trip, verify,
    /// and equal the byte-identical result of serially replaying the
    /// recorded admission sequence.
    #[test]
    fn concurrent_admissions_replay_serially_byte_identical() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 5;
        let snapshots: Arc<Vec<Vec<u8>>> = Arc::new((0..SLOTS + 2).map(warmed_snapshot).collect());

        let manager = Arc::new(ShardManager::new());
        manager.ensure("torture", &shard_config());
        manager
            .with_shard("torture", Shard::record_admissions)
            .unwrap();

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let manager = Arc::clone(&manager);
                let snapshots = Arc::clone(&snapshots);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        for i in 0..snapshots.len() {
                            // Thread-dependent order so interleavings differ.
                            let pick = (t + round + i) % snapshots.len();
                            manager
                                .admit("torture", &shard_config(), &snapshots[pick])
                                .unwrap();
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let drained = manager.with_shard("torture", Shard::export).unwrap();
        let contents = SnapshotContents::parse(&drained).expect("drained image parses");
        contents.verify().expect("drained image verifies");
        assert_eq!(contents.encode(), drained, "drained image round-trips");

        let log = manager
            .with_shard("torture", Shard::take_log)
            .unwrap()
            .expect("recording was on");
        assert_eq!(log.len(), THREADS * ROUNDS * snapshots.len());
        let mut replay = Shard::new("torture", &shard_config());
        for bytes in &log {
            replay.admit(bytes).unwrap();
        }
        assert_eq!(
            replay.export(),
            drained,
            "serial replay of the admission sequence diverged"
        );
    }

    #[test]
    fn warm_bytes_skips_missing_and_empty_shards() {
        let manager = ShardManager::new();
        assert!(manager.warm_bytes("absent").is_none());
        manager.ensure("empty", &shard_config());
        assert!(manager.warm_bytes("empty").is_none());
        manager
            .admit("warm", &shard_config(), &warmed_snapshot(0))
            .unwrap();
        let bytes = manager.warm_bytes("warm").expect("warm shard serves");
        assert!(SnapshotContents::parse(&bytes).is_ok());
        assert_eq!(manager.stats()[1].warm_loads, 1);
    }

    #[test]
    fn import_export_roundtrips_through_manager() {
        let manager = ShardManager::new();
        manager
            .admit("a", &shard_config(), &warmed_snapshot(0))
            .unwrap();
        manager
            .admit("b", &shard_config(), &warmed_snapshot(1))
            .unwrap();
        let drained = manager.export_all();
        assert_eq!(drained.len(), 2);
        let restored = ShardManager::new();
        for (id, bytes) in &drained {
            restored.import(id, bytes).unwrap();
        }
        assert_eq!(restored.export_all(), drained);
        // Import is behind the same trust boundary.
        let mut bad = drained[0].1.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            restored.import("c", &bad).unwrap_err(),
            ShardError::Snapshot(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn shard_ids_are_stable() {
        assert_eq!(shard_id("crc32", 2, 64, true), "crc32__c2_s64_spec");
        assert_eq!(shard_id("sha", 1, 16, false), "sha__c1_s16_nospec");
    }
}
