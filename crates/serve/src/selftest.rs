//! `dim serve --selftest`: an in-process load generator that stands up
//! a real server on a temp socket, drives it through the real client,
//! and writes `BENCH_serve.json`.
//!
//! Two phases. The **ramp** sends sequential shared-shard accel
//! requests for one workload and records the simulated cycle count of
//! each; the first request is a cold start (empty shard) and the last
//! is fully warm, so `warm_cycles < cold_cycles` is the headline gate —
//! shared shards must actually buy cycles, not just exist. The **load**
//! phase runs concurrent client threads (distinct tenants, rotating
//! workloads) with busy-retry, and reports throughput plus wall-clock
//! latency percentiles.
//!
//! The server runs with span tracing on and dumps
//! `spans.dimspan` into `bench_out` at drain; the selftest parses it
//! back and folds span-derived stage breakdowns (queue-wait /
//! warm-start / exec percentiles) into `BENCH_serve.json`. The
//! cold-vs-warm gate additionally asserts the warm ramp request's
//! simulate stage took less *host* time than the cold one — the warm
//! shard must buy wall-clock, not just simulated cycles.

use crate::client::submit;
use crate::proto::{Command, Reply, Request};
use crate::server::{serve, ServeOptions};
use dim_obs::span::{percentile_nanos, read_span_file, SpanForest};
use dim_obs::{parse_json, Clock as _, MonotonicClock, ObjectWriter, SPAN_FILE_NAME};
use dim_sweep::atomic_write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Knobs for the load generator.
#[derive(Debug, Clone)]
pub struct SelftestOptions {
    /// Server worker threads.
    pub jobs: usize,
    /// Concurrent client threads in the load phase.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Directory receiving `BENCH_serve.json` and `spans.dimspan`.
    pub bench_out: PathBuf,
}

impl Default for SelftestOptions {
    fn default() -> SelftestOptions {
        SelftestOptions {
            jobs: 2,
            clients: 4,
            requests_per_client: 6,
            bench_out: PathBuf::from("bench-out"),
        }
    }
}

/// What the selftest measured; `ok` is the CI gate.
#[derive(Debug, Clone)]
pub struct SelftestReport {
    /// All requests completed, the warm shard beat the cold start in
    /// both simulated cycles and simulate-stage host time, and the
    /// span trees passed the well-formedness laws.
    pub ok: bool,
    /// Simulated cycles of the first (cold) ramp request.
    pub cold_cycles: u64,
    /// Simulated cycles of the last (warm) ramp request.
    pub warm_cycles: u64,
    /// Simulate-stage host nanoseconds of the cold ramp request.
    pub cold_sim_nanos: u64,
    /// Best simulate-stage host nanoseconds across the warm ramp
    /// requests (min-of-N to ride out scheduler jitter).
    pub warm_sim_nanos: u64,
    /// Whether every span tree passed the well-formedness laws.
    pub span_laws_ok: bool,
    /// Load-phase requests that completed with `Ok`.
    pub completed: u64,
    /// Load-phase requests attempted.
    pub requests_total: u64,
    /// `Busy` replies absorbed by client-side retry.
    pub busy_retries: u64,
    /// Load-phase throughput in requests per second.
    pub throughput_rps: f64,
    /// Where `BENCH_serve.json` landed.
    pub bench_path: PathBuf,
}

const RAMP_WORKLOAD: &str = "crc32";
const RAMP_LEN: usize = 5;
const LOAD_WORKLOADS: &[&str] = &["crc32", "bitcount", "quicksort"];
/// Span stages surfaced as percentile breakdowns in the bench file.
const BREAKDOWN_STAGES: &[&str] = &["queue_wait", "schedule", "exec", "warm_start", "simulate"];

fn accel_request(tenant: &str, workload: &str) -> Request {
    Request {
        tenant: tenant.to_string(),
        command: Command::Accel,
        workload: workload.to_string(),
        shared_shard: true,
        ..Request::default()
    }
}

fn accel_cycles(reply: &Reply) -> Result<u64, String> {
    match reply {
        Reply::Ok { json } => parse_json(json)
            .ok()
            .as_ref()
            .and_then(|v| v.get("accel_cycles"))
            .and_then(dim_obs::JsonValue::as_u64)
            .ok_or_else(|| "reply json missing accel_cycles".to_string()),
        Reply::Busy { reason, .. } => Err(format!("unexpected Busy during ramp: {reason}")),
        Reply::Error { message } => Err(format!("ramp request failed: {message}")),
    }
}

/// Sends one request, absorbing `Busy` with the server's retry hint.
fn submit_with_retry(
    socket: &Path,
    request: &Request,
    busy_retries: &AtomicU64,
) -> Result<Reply, String> {
    for _ in 0..64 {
        let reply = submit(socket, std::slice::from_ref(request))
            .map_err(|e| e.to_string())?
            .pop()
            .ok_or_else(|| "empty reply batch".to_string())?;
        match reply {
            Reply::Busy { retry_after_ms, .. } => {
                busy_retries.fetch_add(1, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(u64::from(retry_after_ms.min(500))));
            }
            other => return Ok(other),
        }
    }
    Err("request still busy after 64 retries".into())
}

/// What the client threads observed, before span analysis.
struct DriveStats {
    ramp_cycles: Vec<u64>,
    latencies_micros: Vec<u64>,
    completed: u64,
    failed: u64,
    requests_total: u64,
    busy_retries: u64,
    throughput_rps: f64,
}

/// Span-derived stage breakdowns extracted from the server's dump.
struct SpanStats {
    laws_ok: bool,
    /// stage name → ascending durations in nanoseconds.
    stage_nanos: Vec<(String, Vec<u64>)>,
    cold_sim_nanos: u64,
    warm_sim_nanos: u64,
}

/// Runs the selftest end to end and writes `BENCH_serve.json`.
///
/// # Errors
///
/// A human-readable message when the server cannot start, a ramp
/// request fails, the span dump is missing or malformed, or the
/// benchmark file cannot be written.
pub fn run_selftest(opts: &SelftestOptions) -> Result<SelftestReport, String> {
    let socket =
        std::env::temp_dir().join(format!("dim-serve-selftest-{}.sock", std::process::id()));
    let mut serve_opts = ServeOptions::new(socket.clone());
    serve_opts.jobs = opts.jobs.max(1);
    serve_opts.queue_capacity = (opts.clients * 2).max(4);
    serve_opts.tenant_quota = 8;
    // Spans land in bench_out next to BENCH_serve.json (so does the
    // live status file — both are advisory host-side artifacts).
    serve_opts.out_dir = Some(opts.bench_out.clone());
    let server = {
        let serve_opts = serve_opts.clone();
        thread::spawn(move || serve(&serve_opts))
    };
    for _ in 0..100 {
        if socket.exists() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    if !socket.exists() {
        return Err("server socket never appeared".into());
    }

    let result = drive(&socket, opts);

    // Always shut the server down, even if the drive failed.
    let _ = submit(
        &socket,
        &[Request {
            command: Command::Shutdown,
            workload: String::new(),
            ..Request::default()
        }],
    );
    match server.join() {
        Ok(Ok(_summary)) => {}
        Ok(Err(e)) => return Err(format!("server failed: {e}")),
        Err(_) => return Err("server thread panicked".into()),
    }
    let stats = result?;
    let spans = analyze_spans(&opts.bench_out.join(SPAN_FILE_NAME))?;
    write_report(opts, &stats, &spans)
}

fn drive(socket: &Path, opts: &SelftestOptions) -> Result<DriveStats, String> {
    // Ramp: same shard, sequential, cold → warm.
    let mut ramp_cycles = Vec::with_capacity(RAMP_LEN);
    let busy_retries = Arc::new(AtomicU64::new(0));
    for _ in 0..RAMP_LEN {
        let reply =
            submit_with_retry(socket, &accel_request("ramp", RAMP_WORKLOAD), &busy_retries)?;
        ramp_cycles.push(accel_cycles(&reply)?);
    }

    // Load: concurrent tenants, rotating workloads, busy-retry.
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let clock = MonotonicClock::new();
    let load_start = clock.now_nanos();
    let mut latencies_micros: Vec<u64> = Vec::new();
    let mut handles = Vec::new();
    for c in 0..opts.clients {
        let socket = socket.to_path_buf();
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let busy_retries = Arc::clone(&busy_retries);
        let requests_per_client = opts.requests_per_client;
        let clock = clock.clone();
        handles.push(thread::spawn(move || {
            let tenant = format!("client-{c}");
            let mut local: Vec<u64> = Vec::with_capacity(requests_per_client);
            for r in 0..requests_per_client {
                let workload = LOAD_WORKLOADS[(c + r) % LOAD_WORKLOADS.len()];
                let start = clock.now_nanos();
                match submit_with_retry(&socket, &accel_request(&tenant, workload), &busy_retries) {
                    Ok(Reply::Ok { .. }) => {
                        completed.fetch_add(1, Ordering::SeqCst);
                        local.push(clock.now_nanos().saturating_sub(start) / 1_000);
                    }
                    _ => {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            local
        }));
    }
    for handle in handles {
        latencies_micros.extend(handle.join().map_err(|_| "client thread panicked")?);
    }
    let elapsed = (clock.now_nanos().saturating_sub(load_start) as f64 / 1e9).max(1e-9);
    latencies_micros.sort_unstable();

    let requests_total = (opts.clients * opts.requests_per_client) as u64;
    let completed = completed.load(Ordering::SeqCst);
    Ok(DriveStats {
        ramp_cycles,
        latencies_micros,
        completed,
        failed: failed.load(Ordering::SeqCst),
        requests_total,
        busy_retries: busy_retries.load(Ordering::SeqCst),
        throughput_rps: completed as f64 / elapsed,
    })
}

/// Finds the duration of the `simulate` child under a root's `exec`
/// child; 0 when absent.
fn simulate_nanos(forest: &SpanForest, root: usize) -> u64 {
    for &child in &forest.children[root] {
        if forest.spans[child].stage == "exec" {
            for &grandchild in &forest.children[child] {
                if forest.spans[grandchild].stage == "simulate" {
                    return forest.spans[grandchild].duration_nanos();
                }
            }
        }
    }
    0
}

fn analyze_spans(path: &Path) -> Result<SpanStats, String> {
    let file = read_span_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let forest = SpanForest::build(&file);
    let laws_ok = forest.orphans_trimmed == 0 && forest.check_laws().is_empty();

    let mut stage_nanos: Vec<(String, Vec<u64>)> = Vec::new();
    let durations = forest.stage_durations();
    for stage in BREAKDOWN_STAGES {
        let mut nanos = durations.get(*stage).cloned().unwrap_or_default();
        nanos.sort_unstable();
        stage_nanos.push(((*stage).to_string(), nanos));
    }

    // Ramp trees in submission order: the cold request has the lowest
    // sequence number, the warm one the highest.
    let mut ramp_roots: Vec<usize> = forest
        .roots
        .iter()
        .copied()
        .filter(|&r| forest.spans[r].tenant == "ramp")
        .collect();
    ramp_roots.sort_by_key(|&r| forest.spans[r].seq);
    let cold_sim_nanos = ramp_roots
        .first()
        .map_or(0, |&r| simulate_nanos(&forest, r));
    // Host wall time jitters far more than simulated cycles do, so a
    // single warm sample can lose to the cold one on scheduler noise
    // alone. Take the best warm request — the cold request structurally
    // pays for translation inside `simulate`, and min-of-N is how the
    // bench gates beat the same noise.
    let warm_sim_nanos = ramp_roots
        .iter()
        .skip(1)
        .map(|&r| simulate_nanos(&forest, r))
        .min()
        .unwrap_or(0);

    Ok(SpanStats {
        laws_ok,
        stage_nanos,
        cold_sim_nanos,
        warm_sim_nanos,
    })
}

fn write_report(
    opts: &SelftestOptions,
    stats: &DriveStats,
    spans: &SpanStats,
) -> Result<SelftestReport, String> {
    let cold_cycles = stats.ramp_cycles[0];
    let warm_cycles = *stats.ramp_cycles.last().expect("ramp is non-empty");
    let warm_stage_shrank = spans.warm_sim_nanos < spans.cold_sim_nanos;
    let ok = stats.completed == stats.requests_total
        && stats.failed == 0
        && warm_cycles < cold_cycles
        && spans.laws_ok
        && warm_stage_shrank;

    let mut latency = ObjectWriter::new();
    latency
        .field_u64("p50", percentile_nanos(&stats.latencies_micros, 50))
        .field_u64("p90", percentile_nanos(&stats.latencies_micros, 90))
        .field_u64("p99", percentile_nanos(&stats.latencies_micros, 99))
        .field_u64("max", stats.latencies_micros.last().copied().unwrap_or(0));
    let cycles_json = format!(
        "[{}]",
        stats
            .ramp_cycles
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut ramp = ObjectWriter::new();
    ramp.field_str("workload", RAMP_WORKLOAD)
        .field_raw("cycles", &cycles_json)
        .field_u64("cold_cycles", cold_cycles)
        .field_u64("warm_cycles", warm_cycles)
        .field_f64(
            "warm_speedup",
            cold_cycles as f64 / warm_cycles.max(1) as f64,
        )
        .field_u64("cold_sim_stage_nanos", spans.cold_sim_nanos)
        .field_u64("warm_sim_stage_nanos", spans.warm_sim_nanos)
        .field_bool("warm_stage_shrank", warm_stage_shrank);
    // Per-stage wall-clock percentiles derived from the span dump:
    // {"queue_wait":{"count":..,"p50_micros":..,...},...}
    let mut stages = String::from("{");
    for (i, (stage, nanos)) in spans.stage_nanos.iter().enumerate() {
        if i > 0 {
            stages.push(',');
        }
        let mut s = ObjectWriter::new();
        s.field_u64("count", nanos.len() as u64)
            .field_u64("p50_micros", percentile_nanos(nanos, 50) / 1_000)
            .field_u64("p90_micros", percentile_nanos(nanos, 90) / 1_000)
            .field_u64("p99_micros", percentile_nanos(nanos, 99) / 1_000);
        dim_obs::write_escaped(&mut stages, stage);
        stages.push(':');
        stages.push_str(&s.finish());
    }
    stages.push('}');
    let mut o = ObjectWriter::new();
    o.field_str("bench", "serve_selftest")
        .field_u64("jobs", opts.jobs as u64)
        .field_u64("clients", opts.clients as u64)
        .field_u64("requests_total", stats.requests_total)
        .field_u64("completed", stats.completed)
        .field_u64("busy_retries", stats.busy_retries)
        .field_f64("throughput_rps", stats.throughput_rps)
        .field_raw("latency_micros", &latency.finish())
        .field_raw("ramp", &ramp.finish())
        .field_raw("stages", &stages)
        .field_bool("span_laws_ok", spans.laws_ok)
        .field_bool("ok", ok);
    let bench_path = opts.bench_out.join("BENCH_serve.json");
    atomic_write(&bench_path, o.finish().as_bytes())
        .map_err(|e| format!("writing {}: {e}", bench_path.display()))?;

    Ok(SelftestReport {
        ok,
        cold_cycles,
        warm_cycles,
        cold_sim_nanos: spans.cold_sim_nanos,
        warm_sim_nanos: spans.warm_sim_nanos,
        span_laws_ok: spans.laws_ok,
        completed: stats.completed,
        requests_total: stats.requests_total,
        busy_retries: stats.busy_retries,
        throughput_rps: stats.throughput_rps,
        bench_path,
    })
}
