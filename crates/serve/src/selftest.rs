//! `dim serve --selftest`: an in-process load generator that stands up
//! a real server on a temp socket, drives it through the real client,
//! and writes `BENCH_serve.json`.
//!
//! Two phases. The **ramp** sends sequential shared-shard accel
//! requests for one workload and records the simulated cycle count of
//! each; the first request is a cold start (empty shard) and the last
//! is fully warm, so `warm_cycles < cold_cycles` is the headline gate —
//! shared shards must actually buy cycles, not just exist. The **load**
//! phase runs concurrent client threads (distinct tenants, rotating
//! workloads) with busy-retry, and reports throughput plus wall-clock
//! latency percentiles.

use crate::client::submit;
use crate::proto::{Command, Reply, Request};
use crate::server::{serve, ServeOptions};
use dim_obs::{parse_json, ObjectWriter};
use dim_sweep::atomic_write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Knobs for the load generator.
#[derive(Debug, Clone)]
pub struct SelftestOptions {
    /// Server worker threads.
    pub jobs: usize,
    /// Concurrent client threads in the load phase.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Directory receiving `BENCH_serve.json`.
    pub bench_out: PathBuf,
}

impl Default for SelftestOptions {
    fn default() -> SelftestOptions {
        SelftestOptions {
            jobs: 2,
            clients: 4,
            requests_per_client: 6,
            bench_out: PathBuf::from("bench-out"),
        }
    }
}

/// What the selftest measured; `ok` is the CI gate.
#[derive(Debug, Clone)]
pub struct SelftestReport {
    /// All requests completed and the warm shard beat the cold start.
    pub ok: bool,
    /// Simulated cycles of the first (cold) ramp request.
    pub cold_cycles: u64,
    /// Simulated cycles of the last (warm) ramp request.
    pub warm_cycles: u64,
    /// Load-phase requests that completed with `Ok`.
    pub completed: u64,
    /// Load-phase requests attempted.
    pub requests_total: u64,
    /// `Busy` replies absorbed by client-side retry.
    pub busy_retries: u64,
    /// Load-phase throughput in requests per second.
    pub throughput_rps: f64,
    /// Where `BENCH_serve.json` landed.
    pub bench_path: PathBuf,
}

const RAMP_WORKLOAD: &str = "crc32";
const RAMP_LEN: usize = 5;
const LOAD_WORKLOADS: &[&str] = &["crc32", "bitcount", "quicksort"];

fn accel_request(tenant: &str, workload: &str) -> Request {
    Request {
        tenant: tenant.to_string(),
        command: Command::Accel,
        workload: workload.to_string(),
        shared_shard: true,
        ..Request::default()
    }
}

fn accel_cycles(reply: &Reply) -> Result<u64, String> {
    match reply {
        Reply::Ok { json } => parse_json(json)
            .ok()
            .as_ref()
            .and_then(|v| v.get("accel_cycles"))
            .and_then(dim_obs::JsonValue::as_u64)
            .ok_or_else(|| "reply json missing accel_cycles".to_string()),
        Reply::Busy { reason, .. } => Err(format!("unexpected Busy during ramp: {reason}")),
        Reply::Error { message } => Err(format!("ramp request failed: {message}")),
    }
}

/// Sends one request, absorbing `Busy` with the server's retry hint.
fn submit_with_retry(
    socket: &Path,
    request: &Request,
    busy_retries: &AtomicU64,
) -> Result<Reply, String> {
    for _ in 0..64 {
        let reply = submit(socket, std::slice::from_ref(request))
            .map_err(|e| e.to_string())?
            .pop()
            .ok_or_else(|| "empty reply batch".to_string())?;
        match reply {
            Reply::Busy { retry_after_ms, .. } => {
                busy_retries.fetch_add(1, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(u64::from(retry_after_ms.min(500))));
            }
            other => return Ok(other),
        }
    }
    Err("request still busy after 64 retries".into())
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(p * (sorted.len() - 1)) / 100]
}

/// Runs the selftest end to end and writes `BENCH_serve.json`.
///
/// # Errors
///
/// A human-readable message when the server cannot start, a ramp
/// request fails, or the benchmark file cannot be written.
pub fn run_selftest(opts: &SelftestOptions) -> Result<SelftestReport, String> {
    let socket =
        std::env::temp_dir().join(format!("dim-serve-selftest-{}.sock", std::process::id()));
    let mut serve_opts = ServeOptions::new(socket.clone());
    serve_opts.jobs = opts.jobs.max(1);
    serve_opts.queue_capacity = (opts.clients * 2).max(4);
    serve_opts.tenant_quota = 8;
    let server = {
        let serve_opts = serve_opts.clone();
        thread::spawn(move || serve(&serve_opts))
    };
    for _ in 0..100 {
        if socket.exists() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    if !socket.exists() {
        return Err("server socket never appeared".into());
    }

    let result = drive(&socket, opts);

    // Always shut the server down, even if the drive failed.
    let _ = submit(
        &socket,
        &[Request {
            command: Command::Shutdown,
            workload: String::new(),
            ..Request::default()
        }],
    );
    match server.join() {
        Ok(Ok(_summary)) => {}
        Ok(Err(e)) => return Err(format!("server failed: {e}")),
        Err(_) => return Err("server thread panicked".into()),
    }
    result
}

fn drive(socket: &Path, opts: &SelftestOptions) -> Result<SelftestReport, String> {
    // Ramp: same shard, sequential, cold → warm.
    let mut ramp_cycles = Vec::with_capacity(RAMP_LEN);
    let busy_retries = Arc::new(AtomicU64::new(0));
    for _ in 0..RAMP_LEN {
        let reply =
            submit_with_retry(socket, &accel_request("ramp", RAMP_WORKLOAD), &busy_retries)?;
        ramp_cycles.push(accel_cycles(&reply)?);
    }
    let cold_cycles = ramp_cycles[0];
    let warm_cycles = *ramp_cycles.last().expect("ramp is non-empty");

    // Load: concurrent tenants, rotating workloads, busy-retry.
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let load_start = Instant::now();
    let mut latencies_micros: Vec<u64> = Vec::new();
    let mut handles = Vec::new();
    for c in 0..opts.clients {
        let socket = socket.to_path_buf();
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let busy_retries = Arc::clone(&busy_retries);
        let requests_per_client = opts.requests_per_client;
        handles.push(thread::spawn(move || {
            let tenant = format!("client-{c}");
            let mut local: Vec<u64> = Vec::with_capacity(requests_per_client);
            for r in 0..requests_per_client {
                let workload = LOAD_WORKLOADS[(c + r) % LOAD_WORKLOADS.len()];
                let start = Instant::now();
                match submit_with_retry(&socket, &accel_request(&tenant, workload), &busy_retries) {
                    Ok(Reply::Ok { .. }) => {
                        completed.fetch_add(1, Ordering::SeqCst);
                        local.push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    _ => {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            local
        }));
    }
    for handle in handles {
        latencies_micros.extend(handle.join().map_err(|_| "client thread panicked")?);
    }
    let elapsed = load_start.elapsed().as_secs_f64().max(1e-9);
    latencies_micros.sort_unstable();

    let requests_total = (opts.clients * opts.requests_per_client) as u64;
    let completed = completed.load(Ordering::SeqCst);
    let throughput_rps = completed as f64 / elapsed;
    let ok = completed == requests_total
        && failed.load(Ordering::SeqCst) == 0
        && warm_cycles < cold_cycles;

    let mut latency = ObjectWriter::new();
    latency
        .field_u64("p50", percentile(&latencies_micros, 50))
        .field_u64("p90", percentile(&latencies_micros, 90))
        .field_u64("p99", percentile(&latencies_micros, 99))
        .field_u64("max", latencies_micros.last().copied().unwrap_or(0));
    let cycles_json = format!(
        "[{}]",
        ramp_cycles
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut ramp = ObjectWriter::new();
    ramp.field_str("workload", RAMP_WORKLOAD)
        .field_raw("cycles", &cycles_json)
        .field_u64("cold_cycles", cold_cycles)
        .field_u64("warm_cycles", warm_cycles)
        .field_f64(
            "warm_speedup",
            cold_cycles as f64 / warm_cycles.max(1) as f64,
        );
    let mut o = ObjectWriter::new();
    o.field_str("bench", "serve_selftest")
        .field_u64("jobs", opts.jobs as u64)
        .field_u64("clients", opts.clients as u64)
        .field_u64("requests_total", requests_total)
        .field_u64("completed", completed)
        .field_u64("busy_retries", busy_retries.load(Ordering::SeqCst))
        .field_f64("throughput_rps", throughput_rps)
        .field_raw("latency_micros", &latency.finish())
        .field_raw("ramp", &ramp.finish())
        .field_bool("ok", ok);
    let bench_path = opts.bench_out.join("BENCH_serve.json");
    atomic_write(&bench_path, o.finish().as_bytes())
        .map_err(|e| format!("writing {}: {e}", bench_path.display()))?;

    Ok(SelftestReport {
        ok,
        cold_cycles,
        warm_cycles,
        completed,
        requests_total,
        busy_retries: busy_retries.load(Ordering::SeqCst),
        throughput_rps,
        bench_path,
    })
}
