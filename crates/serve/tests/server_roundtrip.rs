//! End-to-end tests against a live daemon on a temp socket: protocol
//! round-trips, backpressure, warm-shard reuse, graceful drain to
//! `.dimrc`, and the acceptance criterion that a served accel request
//! is byte-identical to the equivalent one-shot run.

use dim_cgra::ArrayShape;
use dim_core::{SnapshotContents, System, SystemConfig};
use dim_mips_sim::{HaltReason, Machine};
use dim_obs::parse_json;
use dim_serve::{serve, submit, Command, Reply, Request, ServeOptions, ServeSummary};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "dim-serve-test-{tag}-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Starts a daemon, waits for the socket, runs `f`, sends `shutdown`,
/// and returns (f's result, the server's summary).
fn with_server<T>(opts: ServeOptions, f: impl FnOnce(&Path) -> T) -> (T, ServeSummary) {
    let socket = opts.socket.clone();
    let server = thread::spawn(move || serve(&opts));
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "server socket never appeared");
    let out = f(&socket);
    let shutdown = Request {
        command: Command::Shutdown,
        workload: String::new(),
        ..Request::default()
    };
    let replies = submit(&socket, &[shutdown]).expect("shutdown submit");
    assert!(matches!(replies[0], Reply::Ok { .. }), "{:?}", replies[0]);
    let summary = server
        .join()
        .expect("server thread")
        .expect("server result");
    (out, summary)
}

fn accel_request(workload: &str, shared: bool) -> Request {
    Request {
        command: Command::Accel,
        workload: workload.to_string(),
        shared_shard: shared,
        ..Request::default()
    }
}

fn ok_json(reply: &Reply) -> dim_obs::JsonValue {
    match reply {
        Reply::Ok { json } => parse_json(json).expect("reply json parses"),
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn served_accel_is_byte_identical_to_one_shot() {
    let dir = TempDir::new("identity");
    let opts = ServeOptions::new(dir.path().join("dim.sock"));
    let ((), _summary) = with_server(opts, |socket| {
        let replies = submit(socket, &[accel_request("bitcount", false)]).expect("submit");
        let json = ok_json(&replies[0]);
        let served_report = json
            .get("report")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();

        // The equivalent one-shot run: same workload, scale, shape,
        // slots, speculation — exactly what `dim accel bitcount` does.
        let spec = dim_workloads::by_name("bitcount").unwrap();
        let built = (spec.build)(dim_workloads::Scale::Tiny);
        let config = SystemConfig::new(ArrayShape::config2(), 64, true);
        let mut system = System::new(Machine::load(&built.program), config);
        let halt = system.run(built.max_steps).expect("one-shot run");
        assert!(matches!(halt, HaltReason::Exit(_)));
        let direct_report = system.report().to_string();

        assert_eq!(
            served_report, direct_report,
            "server-mode report must be byte-identical to a one-shot run"
        );
        assert_eq!(
            json.get("accel_cycles")
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap(),
            system.total_cycles()
        );
    });
}

#[test]
fn warm_shard_is_reused_across_requests_and_drains_to_dimrc() {
    let dir = TempDir::new("warm");
    let shard_dir = dir.path().join("shards");
    let mut opts = ServeOptions::new(dir.path().join("dim.sock"));
    opts.shard_dir = Some(shard_dir.clone());
    let ((cold, warm), summary) = with_server(opts, |socket| {
        let first = submit(socket, &[accel_request("crc32", true)]).expect("submit");
        let second = submit(socket, &[accel_request("crc32", true)]).expect("submit");
        let cold = ok_json(&first[0]);
        let warm = ok_json(&second[0]);
        (cold, warm)
    });
    assert_eq!(
        cold.get("warm_loaded")
            .and_then(dim_obs::JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(
        warm.get("warm_loaded")
            .and_then(dim_obs::JsonValue::as_bool),
        Some(true)
    );
    let cold_cycles = cold
        .get("accel_cycles")
        .and_then(dim_obs::JsonValue::as_u64)
        .unwrap();
    let warm_cycles = warm
        .get("accel_cycles")
        .and_then(dim_obs::JsonValue::as_u64)
        .unwrap();
    assert!(
        warm_cycles < cold_cycles,
        "warm start must save cycles: cold {cold_cycles}, warm {warm_cycles}"
    );

    // The drained shard is an ordinary verifiable snapshot.
    assert_eq!(summary.shards, 1);
    let path = shard_dir.join("crc32__c2_s64_spec.dimrc");
    let bytes = std::fs::read(&path).expect("drained shard exists");
    let contents = SnapshotContents::parse(&bytes).expect("drained shard parses");
    contents
        .verify()
        .expect("drained shard passes the verifier");
    assert!(!contents.configs.is_empty());
}

#[test]
fn warm_start_from_imported_shard_dir() {
    let dir = TempDir::new("import");
    let shard_dir = dir.path().join("shards");

    // First server run populates the shard dir on drain.
    let mut opts = ServeOptions::new(dir.path().join("a.sock"));
    opts.shard_dir = Some(shard_dir.clone());
    let ((), _summary) = with_server(opts, |socket| {
        let replies = submit(socket, &[accel_request("crc32", true)]).expect("submit");
        ok_json(&replies[0]);
    });

    // Second server run imports it; the very first request is warm.
    let mut opts = ServeOptions::new(dir.path().join("b.sock"));
    opts.shard_dir = Some(shard_dir);
    let (json, summary) = with_server(opts, |socket| {
        let replies = submit(socket, &[accel_request("crc32", true)]).expect("submit");
        ok_json(&replies[0])
    });
    assert_eq!(summary.shards_imported, 1);
    assert!(
        summary.import_errors.is_empty(),
        "{:?}",
        summary.import_errors
    );
    assert_eq!(
        json.get("warm_loaded")
            .and_then(dim_obs::JsonValue::as_bool),
        Some(true)
    );
}

#[test]
fn poisoned_shard_file_is_rejected_at_import() {
    let dir = TempDir::new("poison");
    let shard_dir = dir.path().join("shards");

    let mut opts = ServeOptions::new(dir.path().join("a.sock"));
    opts.shard_dir = Some(shard_dir.clone());
    let ((), _summary) = with_server(opts, |socket| {
        let replies = submit(socket, &[accel_request("crc32", true)]).expect("submit");
        ok_json(&replies[0]);
    });

    // Corrupt the drained image: flip a payload byte mid-file.
    let path = shard_dir.join("crc32__c2_s64_spec.dimrc");
    let mut bytes = std::fs::read(&path).expect("shard exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write poisoned shard");

    let mut opts = ServeOptions::new(dir.path().join("b.sock"));
    opts.shard_dir = Some(shard_dir);
    let (json, summary) = with_server(opts, |socket| {
        let replies = submit(socket, &[accel_request("crc32", true)]).expect("submit");
        ok_json(&replies[0])
    });
    // The poisoned file is rejected at the trust boundary, the server
    // keeps going, and the request simply runs cold.
    assert_eq!(summary.shards_imported, 0);
    assert_eq!(summary.import_errors.len(), 1);
    assert_eq!(
        json.get("warm_loaded")
            .and_then(dim_obs::JsonValue::as_bool),
        Some(false)
    );
}

#[test]
fn invalid_requests_and_backpressure_reply_without_work() {
    let dir = TempDir::new("reject");
    let mut opts = ServeOptions::new(dir.path().join("dim.sock"));
    opts.tenant_quota = 1;
    let ((), summary) = with_server(opts, |socket| {
        // Unknown workload → Error.
        let replies = submit(socket, &[accel_request("no-such-workload", false)]).expect("submit");
        let Reply::Error { message } = &replies[0] else {
            panic!("expected Error, got {:?}", replies[0]);
        };
        assert!(message.contains("unknown workload"), "{message}");

        // Invalid combination (hand-rolled wire request) → Error.
        let mut bad = accel_request("crc32", true);
        bad.shape = 0;
        let replies = submit(socket, &[bad]).expect("submit");
        let Reply::Error { message } = &replies[0] else {
            panic!("expected Error, got {:?}", replies[0]);
        };
        assert!(message.contains("ideal"), "{message}");

        // Quota of 1: a batch of three same-tenant requests must see
        // Busy for the overflow, with a retry hint.
        let batch = vec![
            accel_request("crc32", false),
            accel_request("crc32", false),
            accel_request("crc32", false),
        ];
        let replies = submit(socket, &batch).expect("submit");
        let busy = replies
            .iter()
            .filter(|r| matches!(r, Reply::Busy { .. }))
            .count();
        assert!(busy >= 1, "expected at least one Busy, got {replies:?}");
        for reply in &replies {
            if let Reply::Busy {
                retry_after_ms,
                reason,
            } = reply
            {
                assert!(*retry_after_ms > 0);
                assert!(reason.contains("quota"), "{reason}");
            }
        }

        // Status reflects the rejections.
        let status = Request {
            command: Command::Status,
            workload: String::new(),
            ..Request::default()
        };
        let replies = submit(socket, &[status]).expect("submit");
        let json = ok_json(&replies[0]);
        assert!(
            json.get("busy_rejected")
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap()
                >= 1
        );
    });
    // Invalid requests were refused at enqueue, so they never count as
    // submitted or failed; only the quota overflow shows up as Busy.
    assert!(summary.busy_rejected >= 1);
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.submitted, summary.completed);
}

#[test]
fn every_request_yields_one_complete_span_tree() {
    let dir = TempDir::new("spans");
    let mut opts = ServeOptions::new(dir.path().join("dim.sock"));
    opts.out_dir = Some(dir.path().to_path_buf());
    let ((), summary) = with_server(opts, |socket| {
        let mut alpha = accel_request("crc32", true);
        alpha.tenant = "alpha".into();
        let mut beta = accel_request("bitcount", false);
        beta.tenant = "beta".into();
        let run = Request {
            command: Command::Run,
            workload: "bitcount".into(),
            tenant: "beta".into(),
            ..Request::default()
        };
        for req in [alpha, beta, run] {
            let replies = submit(socket, &[req]).expect("submit");
            ok_json(&replies[0]);
        }
    });
    assert_eq!(summary.completed, 3);

    let file = dim_obs::span::read_span_file(&dir.path().join(dim_obs::SPAN_FILE_NAME))
        .expect("span dump parses");
    let forest = dim_obs::SpanForest::build(&file);
    assert_eq!(file.dropped, 0);
    assert_eq!(forest.orphans_trimmed, 0);
    assert_eq!(
        forest.roots.len(),
        3,
        "exactly one span tree per completed request"
    );
    assert_eq!(forest.check_laws(), Vec::<String>::new());

    for &root in &forest.roots {
        let span = &forest.spans[root];
        assert_eq!(span.stage, "request");
        assert!(span.tenant == "alpha" || span.tenant == "beta", "{span:?}");
        let stage_of = |name: &str| {
            forest.children[root]
                .iter()
                .copied()
                .find(|&c| forest.spans[c].stage == name)
        };
        // The request's lifecycle stages are all present and, being
        // begun back to back, reconcile with the request's wall time.
        let stages = ["queue_wait", "schedule", "exec"];
        let mut stage_sum = 0u64;
        for name in stages {
            let index = stage_of(name).unwrap_or_else(|| panic!("missing `{name}` stage"));
            stage_sum += forest.spans[index].duration_nanos();
        }
        let wall = span.duration_nanos();
        assert!(stage_sum <= wall, "stages {stage_sum} exceed wall {wall}");
        assert!(
            wall - stage_sum < 10_000_000,
            "stages {stage_sum} ns leave an implausible gap inside {wall} ns"
        );

        // Accel requests carry engine host-time attribution on the
        // exec span, split across all four buckets.
        let exec = stage_of("exec").unwrap();
        if forest.children[exec]
            .iter()
            .any(|&c| forest.spans[c].stage == "simulate")
        {
            if let Some(attr) = file.attr_for(forest.spans[exec].id) {
                assert_eq!(attr.buckets.len(), 4, "{attr:?}");
                assert!(attr.buckets.iter().all(|b| b.sampled > 0), "{attr:?}");
            }
        }
    }
    // At least one request (the accel ones) must carry attribution.
    assert!(
        !file.attrs.is_empty(),
        "no host-split attribution recorded at all"
    );
}

#[test]
fn run_and_explain_commands_work_end_to_end() {
    let dir = TempDir::new("commands");
    let opts = ServeOptions::new(dir.path().join("dim.sock"));
    let ((), _summary) = with_server(opts, |socket| {
        let run = Request {
            command: Command::Run,
            workload: "bitcount".into(),
            ..Request::default()
        };
        let explain = Request {
            command: Command::Explain,
            workload: "bitcount".into(),
            ..Request::default()
        };
        let replies = submit(socket, &[run, explain]).expect("submit");
        let run_json = ok_json(&replies[0]);
        assert_eq!(
            run_json.get("command").and_then(|v| v.as_str()),
            Some("run")
        );
        assert!(
            run_json
                .get("cycles")
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap()
                > 0
        );
        let explain_json = ok_json(&replies[1]);
        assert_eq!(
            explain_json.get("command").and_then(|v| v.as_str()),
            Some("explain")
        );
        let nested = explain_json.get("explain").expect("nested explain object");
        assert_eq!(
            nested.get("workload").and_then(|v| v.as_str()),
            Some("req-1__bitcount")
        );
    });
}
