//! Property tests for the simulator substrate: profiler accounting,
//! superscalar retiming bounds, cache-model sanity, and memory behaviour.

use dim_mips::asm::assemble;
use dim_mips_sim::{
    CacheConfig, CacheSim, Machine, Memory, Profiler, SuperscalarConfig, SuperscalarModel,
};
use proptest::prelude::*;

/// A random but always-terminating counted loop with a data-dependent
/// diamond inside.
fn program(iters: u32, body_adds: usize) -> String {
    let mut src = format!("main: li $s0, {iters}\n");
    src.push_str("loop:\n");
    for i in 0..body_adds {
        src.push_str(&format!(" addu $t{}, $t{}, $s0\n", i % 8, (i + 1) % 8));
    }
    src.push_str(
        " andi $t8, $s0, 1\n beqz $t8, even\n addiu $v0, $v0, 7\n\
         even: addiu $s0, $s0, -1\n bnez $s0, loop\n break 0\n",
    );
    src
}

proptest! {
    /// The profiler attributes every retired instruction to exactly one
    /// block, and block entries sum to the control-transfer structure.
    #[test]
    fn profiler_conserves_instructions(iters in 1u32..60, body in 1usize..10) {
        let p = assemble(&program(iters, body)).unwrap();
        let mut m = Machine::load(&p);
        let mut prof = Profiler::new();
        m.run_with(1_000_000, |i| prof.observe(i)).unwrap();
        let profile = prof.finish();
        prop_assert_eq!(profile.total_instructions, m.stats.instructions);
        let attributed: u64 = profile.blocks.iter().map(|(_, b)| b.instructions).sum();
        prop_assert_eq!(attributed, m.stats.instructions);
        prop_assert_eq!(profile.control_transfers, m.stats.control_transfers());
        // Coverage curve is monotone and ends at the block count.
        let c50 = profile.blocks_for_coverage(0.5);
        let c100 = profile.blocks_for_coverage(1.0);
        prop_assert!(c50 <= c100);
        prop_assert!(c100 <= profile.block_count());
    }

    /// Dual-issue retiming is bounded: never slower than scalar, never
    /// better than 2x on issue-limited code.
    #[test]
    fn superscalar_bounded_by_width(iters in 1u32..60, body in 1usize..10) {
        let p = assemble(&program(iters, body)).unwrap();
        let mut m = Machine::load(&p);
        let mut model = SuperscalarModel::new(SuperscalarConfig::default());
        m.run_with(1_000_000, |i| model.observe(i)).unwrap();
        prop_assert_eq!(model.instructions(), m.stats.instructions);
        let ss = model.finish();
        prop_assert!(ss <= m.stats.cycles);
        // Issue groups are at most 2 wide, so at least half the
        // instruction count in cycles.
        prop_assert!(2 * ss >= m.stats.instructions);
    }

    /// Cache miss counts are bounded by accesses and by the footprint.
    #[test]
    fn cache_misses_bounded(addrs in prop::collection::vec(0u32..0x4000, 1..400)) {
        let mut c = CacheSim::new(CacheConfig::dcache_4k());
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        // Every line in a 16KiB address space: at most footprint/line
        // compulsory misses plus conflict misses bounded by accesses —
        // but with a 0x4000 footprint over a 0x1000 cache, misses can't
        // exceed the number of distinct lines touched plus re-fetches;
        // sanity: a single repeated address misses exactly once.
        let mut c2 = CacheSim::new(CacheConfig::dcache_4k());
        for _ in 0..10 {
            c2.access(addrs[0]);
        }
        prop_assert_eq!(c2.stats().misses, 1);
    }

    /// Memory reads always return the last written value.
    #[test]
    fn memory_read_your_writes(
        writes in prop::collection::vec((0u32..0x10000, any::<u32>()), 1..100),
    ) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            let addr = addr & !3;
            mem.write_u32(addr, value).unwrap();
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            prop_assert_eq!(mem.read_u32(addr).unwrap(), value);
        }
    }
}
