//! # dim-mips-sim
//!
//! Execution substrate for the DIM reproduction: a functional + cycle-
//! timing simulator of a Minimips-class (R3000) scalar processor.
//!
//! The crate provides:
//!
//! * [`Memory`] — sparse paged little-endian memory;
//! * [`Cpu`] — architectural state and the functional interpreter;
//! * [`PipelineCosts`] — the five-stage pipeline cycle model;
//! * [`Machine`] — loaded program + CPU + memory + syscall runtime,
//!   with an observer hook exposing the retiring instruction stream;
//! * [`Profiler`] — dynamic basic-block profiling (paper Figure 3);
//! * [`CacheSim`] — optional I/D cache timing models.
//!
//! ```
//! use dim_mips::asm::assemble;
//! use dim_mips_sim::Machine;
//!
//! let program = assemble("
//!     main: li   $a0, 6
//!           li   $a1, 7
//!           mul  $v0, $a0, $a1
//!           break 0
//! ")?;
//! let mut machine = Machine::load(&program);
//! machine.run(1000)?;
//! assert_eq!(machine.cpu.reg(dim_mips::Reg::V0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod costs;
mod cpu;
mod error;
mod machine;
mod mem;
mod profile;
mod stats;
mod superscalar;

pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use costs::PipelineCosts;
pub use cpu::{Cpu, Effect, StepInfo};
pub use error::SimError;
pub use machine::{HaltReason, Machine, STACK_TOP};
pub use mem::Memory;
pub use profile::{BlockStats, Profile, Profiler};
pub use stats::RunStats;
pub use superscalar::{SuperscalarConfig, SuperscalarModel};
