//! Set-associative cache timing models.
//!
//! The paper evaluates with perfect caches ("the operations that depend
//! on the result of a load are allocated considering a cache hit as the
//! total load delay") but specifies the miss behaviour: "if a miss
//! occurs, the whole array operation stops until the miss is resolved"
//! (§4.3). These models supply that miss behaviour when enabled; by
//! default the simulator keeps the paper's perfect-cache assumption.

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Extra cycles charged on a miss (the hit cost is already part of
    /// the pipeline model).
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A small embedded instruction cache: 4 KiB, 2-way, 16-byte lines.
    pub fn icache_4k() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 2,
            line_bytes: 16,
            miss_penalty: 8,
        }
    }

    /// A small embedded data cache: 4 KiB, 2-way, 16-byte lines.
    pub fn dcache_4k() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 2,
            line_bytes: 16,
            miss_penalty: 10,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `0..=1`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement (timing only — data
/// always comes from [`Memory`](crate::Memory); the cache decides how
/// many cycles the access costs).
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `tags[set]` holds (tag, lru_tick) pairs, one per filled way.
    tags: Vec<Vec<(u32, u64)>>,
    tick: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if
    /// `ways` is zero.
    pub fn new(config: CacheConfig) -> CacheSim {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "associativity must be at least 1");
        CacheSim {
            config,
            tags: vec![Vec::new(); config.sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Touches `addr`, returning the extra cycles (0 on hit,
    /// `miss_penalty` on miss). The line is filled on miss.
    pub fn access(&mut self, addr: u32) -> u64 {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr as usize / self.config.line_bytes;
        let set = line & (self.config.sets - 1);
        let tag = (line / self.config.sets) as u32;
        let ways = &mut self.tags[set];
        if let Some(entry) = ways.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.tick;
            return 0;
        }
        self.stats.misses += 1;
        if ways.len() < self.config.ways {
            ways.push((tag, self.tick));
        } else {
            let victim = ways
                .iter_mut()
                .min_by_key(|(_, lru)| *lru)
                .expect("ways is non-empty");
            *victim = (tag, self.tick);
        }
        self.config.miss_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 2 sets × 2 ways × 16-byte lines = 64 bytes.
        CacheSim::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 16,
            miss_penalty: 10,
        })
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), 10);
        assert_eq!(c.access(0x104), 0); // same line
        assert_eq!(c.access(0x10f), 0);
        assert_eq!(c.access(0x110), 10); // next line, other set
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line numbers even).
        c.access(0x000); // set 0, tag 0
        c.access(0x040); // set 0, tag 1
        c.access(0x080); // set 0, tag 2 -> evicts tag 0
        assert_eq!(c.access(0x040), 0, "tag 1 must still be resident");
        assert_eq!(c.access(0x000), 10, "tag 0 was evicted");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0x000); // set 0
        c.access(0x010); // set 1
        c.access(0x020); // set 0, tag 1
        c.access(0x030); // set 1, tag 1
                         // All four lines resident (2 per set).
        assert_eq!(c.access(0x000), 0);
        assert_eq!(c.access(0x010), 0);
        assert_eq!(c.access(0x020), 0);
        assert_eq!(c.access(0x030), 0);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn presets_have_expected_capacity() {
        assert_eq!(CacheConfig::icache_4k().capacity(), 4096);
        assert_eq!(CacheConfig::dcache_4k().capacity(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheSim::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 16,
            miss_penalty: 1,
        });
    }
}
