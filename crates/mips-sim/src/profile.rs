//! Dynamic basic-block profiling (the paper's Figure 3 characterization).

use crate::StepInfo;
use std::collections::HashMap;

/// Per-basic-block dynamic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Times the block was entered.
    pub entries: u64,
    /// Total dynamic instructions attributed to the block.
    pub instructions: u64,
}

/// Observes the retiring instruction stream and attributes instructions to
/// dynamic basic blocks (maximal straight-line runs between control
/// transfers), keyed by the block's leader PC.
///
/// ```
/// use dim_mips::asm::assemble;
/// use dim_mips_sim::{Machine, Profiler};
///
/// let program = assemble("
///     main: li $t0, 4
///     loop: addiu $t0, $t0, -1
///           bnez $t0, loop
///           break 0
/// ")?;
/// let mut machine = Machine::load(&program);
/// let mut profiler = Profiler::new();
/// machine.run_with(10_000, |info| profiler.observe(info))?;
/// let profile = profiler.finish();
/// assert_eq!(profile.total_instructions, machine.stats.instructions);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    blocks: HashMap<u32, BlockStats>,
    current_leader: Option<u32>,
    current_len: u64,
    total_instructions: u64,
    control_transfers: u64,
}

impl Profiler {
    /// Creates an idle profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Feeds one retired instruction.
    pub fn observe(&mut self, info: &StepInfo) {
        if self.current_leader.is_none() {
            self.current_leader = Some(info.pc);
        }
        self.current_len += 1;
        self.total_instructions += 1;
        let sequential = info.pc.wrapping_add(4);
        let block_ends = info.inst.is_control()
            || info.next_pc != sequential
            || !matches!(info.effect, crate::Effect::None);
        if info.inst.is_control() {
            self.control_transfers += 1;
        }
        if block_ends {
            self.close_block();
        }
    }

    fn close_block(&mut self) {
        if let Some(leader) = self.current_leader.take() {
            let entry = self.blocks.entry(leader).or_default();
            entry.entries += 1;
            entry.instructions += self.current_len;
        }
        self.current_len = 0;
    }

    /// Finalizes and returns the profile.
    pub fn finish(mut self) -> Profile {
        self.close_block();
        let mut blocks: Vec<(u32, BlockStats)> = self.blocks.into_iter().collect();
        // Hottest first (by attributed instructions, PC as tiebreaker for
        // determinism).
        blocks.sort_by(|a, b| b.1.instructions.cmp(&a.1.instructions).then(a.0.cmp(&b.0)));
        Profile {
            blocks,
            total_instructions: self.total_instructions,
            control_transfers: self.control_transfers,
        }
    }
}

/// A finished basic-block profile, hottest block first.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// `(leader PC, stats)` sorted by attributed instructions, descending.
    pub blocks: Vec<(u32, BlockStats)>,
    /// Total dynamic instructions observed.
    pub total_instructions: u64,
    /// Total control transfers observed.
    pub control_transfers: u64,
}

impl Profile {
    /// Number of distinct dynamic basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Average dynamic basic-block size — the paper's "instructions per
    /// branch" (Figure 3b).
    pub fn instructions_per_branch(&self) -> f64 {
        if self.control_transfers == 0 {
            self.total_instructions as f64
        } else {
            self.total_instructions as f64 / self.control_transfers as f64
        }
    }

    /// How many of the hottest blocks are needed to cover `fraction`
    /// (0..=1) of all executed instructions — one point of the paper's
    /// Figure 3a curve.
    pub fn blocks_for_coverage(&self, fraction: f64) -> usize {
        let target = (self.total_instructions as f64) * fraction.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for (i, (_, b)) in self.blocks.iter().enumerate() {
            acc += b.instructions as f64;
            if acc + 1e-9 >= target {
                return i + 1;
            }
        }
        self.blocks.len()
    }

    /// The full coverage curve at the given fractions.
    pub fn coverage_curve(&self, fractions: &[f64]) -> Vec<(f64, usize)> {
        fractions
            .iter()
            .map(|&f| (f, self.blocks_for_coverage(f)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use dim_mips::asm::assemble;

    fn profile_of(src: &str) -> Profile {
        let p = assemble(src).unwrap();
        let mut m = Machine::load(&p);
        let mut prof = Profiler::new();
        m.run_with(1_000_000, |i| prof.observe(i)).unwrap();
        prof.finish()
    }

    #[test]
    fn loop_dominates_profile() {
        let prof = profile_of(
            "main: li $t0, 100
                   li $t1, 0
             loop: addu $t1, $t1, $t0
                   addiu $t0, $t0, -1
                   bnez $t0, loop
                   break 0",
        );
        // The entry falls through into the loop, so the first iteration is
        // attributed to the entry block: entry (2+3 instrs, once), loop
        // body (3 instrs, 99 times), exit (1 instr, once).
        assert_eq!(prof.block_count(), 3);
        let (_, hottest) = prof.blocks[0];
        assert_eq!(hottest.entries, 99);
        assert_eq!(hottest.instructions, 297);
        assert_eq!(prof.blocks_for_coverage(0.9), 1);
        assert_eq!(prof.blocks_for_coverage(1.0), 3);
        assert!((prof.instructions_per_branch() - 303.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn straightline_is_one_block() {
        let prof = profile_of("main: li $t0, 1\n li $t1, 2\n addu $t2,$t0,$t1\n break 0");
        assert_eq!(prof.block_count(), 1);
        assert_eq!(prof.total_instructions, 4);
        assert_eq!(prof.control_transfers, 0);
    }

    #[test]
    fn coverage_curve_is_monotonic() {
        let prof = profile_of(
            "main: li $t0, 8
             a:    addiu $t0, $t0, -1
                   andi $t1, $t0, 1
                   beqz $t1, even
                   addiu $t2, $t2, 1
             even: bnez $t0, a
                   break 0",
        );
        let curve = prof.coverage_curve(&[0.2, 0.4, 0.6, 0.8, 1.0]);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
