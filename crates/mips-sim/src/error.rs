//! Simulator error type.

use std::fmt;

/// Errors raised while simulating a program.
///
/// These correspond to conditions a real R3000 would trap on (unaligned
/// access, reserved instruction) or to the program leaving the loaded
/// text image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An unaligned halfword/word access.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Required alignment in bytes.
        width: u32,
    },
    /// The PC left the loaded text segment.
    PcOutOfRange {
        /// The faulting PC value.
        pc: u32,
    },
    /// A word in the text segment failed to decode.
    ReservedInstruction {
        /// Address of the word.
        pc: u32,
        /// The raw word.
        word: u32,
    },
    /// An unknown syscall service number.
    UnknownSyscall {
        /// The `$v0` service code.
        service: u32,
        /// PC of the `syscall` instruction.
        pc: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Misaligned { addr, width } => {
                write!(f, "unaligned {width}-byte access at {addr:#010x}")
            }
            SimError::PcOutOfRange { pc } => {
                write!(f, "program counter {pc:#010x} outside the text segment")
            }
            SimError::ReservedInstruction { pc, word } => {
                write!(f, "reserved instruction {word:#010x} at {pc:#010x}")
            }
            SimError::UnknownSyscall { service, pc } => {
                write!(f, "unknown syscall service {service} at {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Misaligned {
            addr: 0x1001,
            width: 4,
        };
        assert!(e.to_string().contains("0x00001001"));
        let e = SimError::PcOutOfRange { pc: 4 };
        assert!(e.to_string().contains("text segment"));
    }
}
