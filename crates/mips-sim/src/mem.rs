//! Sparse paged byte-addressable memory.

use crate::SimError;
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const OFFSET_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse 32-bit little-endian memory.
///
/// Pages are allocated on first touch; reads of untouched memory return
/// zero, mirroring an initialized SRAM image. Word and halfword accesses
/// must be naturally aligned (the R3000 traps on unaligned accesses).
///
/// ```
/// use dim_mips_sim::Memory;
/// let mut mem = Memory::new();
/// mem.write_u32(0x1000_0000, 0xdead_beef)?;
/// assert_eq!(mem.read_u32(0x1000_0000)?, 0xdead_beef);
/// assert_eq!(mem.read_u8(0x1000_0000), 0xef); // little-endian
/// # Ok::<(), dim_mips_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr & OFFSET_MASK) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] if `addr` is not 2-byte aligned.
    pub fn read_u16(&self, addr: u32) -> Result<u16, SimError> {
        self.check_align(addr, 2)?;
        Ok(u16::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr + 1),
        ]))
    }

    /// Writes a halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] if `addr` is not 2-byte aligned.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), SimError> {
        self.check_align(addr, 2)?;
        let b = value.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr + 1, b[1]);
        Ok(())
    }

    /// Reads a word.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] if `addr` is not 4-byte aligned.
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        self.check_align(addr, 4)?;
        // Aligned words never straddle a page.
        let off = (addr & OFFSET_MASK) as usize;
        match self.page(addr) {
            Some(p) => Ok(u32::from_le_bytes([
                p[off],
                p[off + 1],
                p[off + 2],
                p[off + 3],
            ])),
            None => Ok(0),
        }
    }

    /// Writes a word.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] if `addr` is not 4-byte aligned.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        self.check_align(addr, 4)?;
        let off = (addr & OFFSET_MASK) as usize;
        let p = self.page_mut(addr);
        p[off..off + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn check_align(&self, addr: u32, width: u32) -> Result<(), SimError> {
        if !addr.is_multiple_of(width) {
            Err(SimError::Misaligned { addr, width })
        } else {
            Ok(())
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Reads a NUL-terminated string starting at `addr` (at most `max`
    /// bytes; lossy UTF-8).
    pub fn read_cstr(&self, addr: u32, max: usize) -> String {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.wrapping_add(i as u32));
            if b == 0 {
                break;
            }
            out.push(b);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Number of resident pages (for footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0x1234), 0);
        assert_eq!(mem.read_u32(0x1000).unwrap(), 0);
    }

    #[test]
    fn little_endian_word() {
        let mut mem = Memory::new();
        mem.write_u32(0x100, 0x0102_0304).unwrap();
        assert_eq!(mem.read_u8(0x100), 0x04);
        assert_eq!(mem.read_u8(0x103), 0x01);
        assert_eq!(mem.read_u16(0x100).unwrap(), 0x0304);
        assert_eq!(mem.read_u16(0x102).unwrap(), 0x0102);
    }

    #[test]
    fn misaligned_rejected() {
        let mut mem = Memory::new();
        assert!(matches!(
            mem.read_u32(0x101),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            mem.read_u16(0x101),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            mem.write_u32(0x102, 0),
            Err(SimError::Misaligned { .. })
        ));
        assert!(mem.write_u16(0x102, 0).is_ok());
    }

    #[test]
    fn cross_page_bytes() {
        let mut mem = Memory::new();
        let boundary = 0x2000 - 2;
        mem.write_bytes(boundary, &[1, 2, 3, 4]);
        assert_eq!(mem.read_bytes(boundary, 4), vec![1, 2, 3, 4]);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn cstr_reading() {
        let mut mem = Memory::new();
        mem.write_bytes(0x500, b"hello\0world");
        assert_eq!(mem.read_cstr(0x500, 64), "hello");
        assert_eq!(mem.read_cstr(0x500, 3), "hel");
    }
}
