//! Event counters accumulated while simulating.

use dim_mips::Instruction;

/// Dynamic event counts for one run. These drive both the performance
/// numbers (Table 2) and the energy model (Figures 5-6): every counter
/// corresponds to a class of events with an energy cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions executed on the processor pipeline.
    pub instructions: u64,
    /// Cycles spent executing on the processor pipeline.
    pub cycles: u64,
    /// Instruction fetches from instruction memory.
    pub fetches: u64,
    /// Data-memory loads.
    pub loads: u64,
    /// Data-memory stores.
    pub stores: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches taken.
    pub taken_branches: u64,
    /// Unconditional jumps executed.
    pub jumps: u64,
    /// Multiplies executed.
    pub mults: u64,
    /// Divides executed.
    pub divs: u64,
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Load-use interlock stalls.
    pub load_use_stalls: u64,
    /// Instruction-cache stall cycles (0 without an attached i-cache).
    /// Included in `cycles`, broken out for cycle attribution.
    pub i_stall_cycles: u64,
    /// Data-cache stall cycles (0 without an attached d-cache).
    /// Included in `cycles`, broken out for cycle attribution.
    pub d_stall_cycles: u64,
}

impl RunStats {
    /// Creates zeroed counters.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Records one executed instruction (cycle cost added separately).
    pub fn record(&mut self, inst: &Instruction, taken: Option<bool>, load_use_hazard: bool) {
        self.instructions += 1;
        self.fetches += 1;
        if load_use_hazard {
            self.load_use_stalls += 1;
        }
        match inst {
            Instruction::Load { .. } => self.loads += 1,
            Instruction::Store { .. } => self.stores += 1,
            Instruction::Branch { .. } => {
                self.branches += 1;
                if taken == Some(true) {
                    self.taken_branches += 1;
                }
            }
            Instruction::J { .. }
            | Instruction::Jal { .. }
            | Instruction::Jr { .. }
            | Instruction::Jalr { .. } => self.jumps += 1,
            Instruction::MulDiv { op, .. } => {
                if op.is_div() {
                    self.divs += 1;
                } else {
                    self.mults += 1;
                }
            }
            Instruction::Syscall => self.syscalls += 1,
            _ => {}
        }
    }

    /// Accumulates another run's counters into this one.
    ///
    /// Addition saturates so aggregating many runs into one report can
    /// never wrap and silently corrupt a total; in debug builds an
    /// actual overflow is treated as a logic error and asserts.
    pub fn merge(&mut self, other: &RunStats) {
        fn acc(total: &mut u64, add: u64) {
            debug_assert!(
                total.checked_add(add).is_some(),
                "RunStats counter overflow: {total} + {add}"
            );
            *total = total.saturating_add(add);
        }
        acc(&mut self.instructions, other.instructions);
        acc(&mut self.cycles, other.cycles);
        acc(&mut self.fetches, other.fetches);
        acc(&mut self.loads, other.loads);
        acc(&mut self.stores, other.stores);
        acc(&mut self.branches, other.branches);
        acc(&mut self.taken_branches, other.taken_branches);
        acc(&mut self.jumps, other.jumps);
        acc(&mut self.mults, other.mults);
        acc(&mut self.divs, other.divs);
        acc(&mut self.syscalls, other.syscalls);
        acc(&mut self.load_use_stalls, other.load_use_stalls);
        acc(&mut self.i_stall_cycles, other.i_stall_cycles);
        acc(&mut self.d_stall_cycles, other.d_stall_cycles);
    }

    /// Data-memory accesses (loads + stores).
    pub fn mem_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Control transfers (conditional branches + jumps).
    pub fn control_transfers(&self) -> u64 {
        self.branches + self.jumps
    }

    /// Average dynamic instructions per control transfer — the paper's
    /// "instructions per branch" (Figure 3b).
    pub fn instructions_per_branch(&self) -> f64 {
        if self.control_transfers() == 0 {
            self.instructions as f64
        } else {
            self.instructions as f64 / self.control_transfers() as f64
        }
    }

    /// Pipeline cycles excluding cache stalls (issue + structural
    /// penalties) — the `pipeline` column of the attribution model.
    pub fn base_cycles(&self) -> u64 {
        self.cycles - self.i_stall_cycles - self.d_stall_cycles
    }

    /// Instructions per cycle on the baseline pipeline.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{BranchCond, Reg};

    #[test]
    fn counters_classify_instructions() {
        let mut s = RunStats::new();
        s.record(&Instruction::NOP, None, false);
        s.record(
            &Instruction::Branch {
                cond: BranchCond::Eq,
                rs: Reg::T0,
                rt: Reg::T1,
                offset: 0,
            },
            Some(true),
            false,
        );
        s.record(
            &Instruction::Load {
                width: dim_mips::MemWidth::Word,
                signed: false,
                rt: Reg::T0,
                base: Reg::SP,
                offset: 0,
            },
            None,
            false,
        );
        s.record(&Instruction::NOP, None, true);
        assert_eq!(s.instructions, 4);
        assert_eq!(s.branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.load_use_stalls, 1);
        assert_eq!(s.mem_accesses(), 1);
        assert!((s.instructions_per_branch() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn base_cycles_excludes_cache_stalls() {
        let s = RunStats {
            cycles: 20,
            i_stall_cycles: 3,
            d_stall_cycles: 5,
            ..RunStats::new()
        };
        assert_eq!(s.base_cycles(), 12);
        assert_eq!(RunStats::new().base_cycles(), 0);
    }

    #[test]
    fn merge_adds_and_saturates() {
        let mut a = RunStats {
            instructions: 3,
            cycles: 5,
            ..RunStats::new()
        };
        let b = RunStats {
            instructions: 4,
            cycles: 7,
            loads: 2,
            ..RunStats::new()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 7);
        assert_eq!(a.cycles, 12);
        assert_eq!(a.loads, 2);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overflow"))]
    fn merge_overflow_is_loud_in_debug() {
        let mut a = RunStats {
            cycles: u64::MAX,
            ..RunStats::new()
        };
        let b = RunStats {
            cycles: 1,
            ..RunStats::new()
        };
        a.merge(&b);
        // Release builds saturate instead of wrapping.
        assert_eq!(a.cycles, u64::MAX);
    }
}
