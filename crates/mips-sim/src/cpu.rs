//! Architectural CPU state and the functional interpreter.

use crate::{Memory, SimError};
use dim_mips::{Instruction, MemWidth, Reg};

/// Architectural state of the MIPS core: 32 GPRs, HI/LO, and the PC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u32; 32],
    /// HI special register.
    pub hi: u32,
    /// LO special register.
    pub lo: u32,
    /// Program counter.
    pub pc: u32,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

/// What a single executed instruction did, as observed by the retiring
/// stage — this is exactly the interface the DIM detection hardware taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Address of the executed instruction.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Instruction,
    /// PC after the instruction (branch/jump target when taken).
    pub next_pc: u32,
    /// `Some(taken)` when the instruction was a conditional branch.
    pub taken: Option<bool>,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u32>,
    /// Control-service effect, if any.
    pub effect: Effect,
}

/// Control effects that must be handled outside the CPU proper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Ordinary instruction.
    None,
    /// A `syscall` executed; the runtime should inspect `$v0`/`$a0`.
    Syscall,
    /// A `break` executed with the given code (used as a halt).
    Break(u32),
}

/// `count` low bits set (0 -> 0, 32 -> all ones).
fn low_mask(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

impl Cpu {
    /// Creates a CPU with all registers zero and the PC at zero.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; 32],
            hi: 0,
            lo: 0,
            pc: 0,
        }
    }

    /// Reads a GPR (`$zero` always reads 0).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a GPR (writes to `$zero` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Executes one instruction functionally, updating state and memory.
    ///
    /// The caller supplies the decoded instruction for the current PC
    /// (fetch/decode live in [`Machine`](crate::Machine), which predecodes
    /// the text segment).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Misaligned`] from memory accesses.
    pub fn execute(&mut self, inst: Instruction, mem: &mut Memory) -> Result<StepInfo, SimError> {
        use Instruction::*;
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let mut taken = None;
        let mut mem_addr = None;
        let mut effect = Effect::None;
        match inst {
            Alu { op, rd, rs, rt } => {
                let v = op.eval(self.reg(rs), self.reg(rt));
                self.set_reg(rd, v);
            }
            AluImm { op, rt, rs, imm } => {
                let v = op.eval(self.reg(rs), imm);
                self.set_reg(rt, v);
            }
            Shift { op, rd, rt, shamt } => {
                let v = op.eval(self.reg(rt), shamt as u32);
                self.set_reg(rd, v);
            }
            ShiftVar { op, rd, rt, rs } => {
                let v = op.eval(self.reg(rt), self.reg(rs));
                self.set_reg(rd, v);
            }
            Lui { rt, imm } => self.set_reg(rt, (imm as u32) << 16),
            MulDiv { op, rs, rt } => {
                let (hi, lo) = op.eval(self.reg(rs), self.reg(rt));
                self.hi = hi;
                self.lo = lo;
            }
            Mfhi { rd } => self.set_reg(rd, self.hi),
            Mflo { rd } => self.set_reg(rd, self.lo),
            Mthi { rs } => self.hi = self.reg(rs),
            Mtlo { rs } => self.lo = self.reg(rs),
            Load {
                width,
                signed,
                rt,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                mem_addr = Some(addr);
                let v = match (width, signed) {
                    (MemWidth::Byte, true) => mem.read_u8(addr) as i8 as i32 as u32,
                    (MemWidth::Byte, false) => mem.read_u8(addr) as u32,
                    (MemWidth::Half, true) => mem.read_u16(addr)? as i16 as i32 as u32,
                    (MemWidth::Half, false) => mem.read_u16(addr)? as u32,
                    (MemWidth::Word, _) => mem.read_u32(addr)?,
                };
                self.set_reg(rt, v);
            }
            LoadUnaligned {
                left,
                rt,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                mem_addr = Some(addr);
                let aligned = addr & !3;
                let word = mem.read_u32(aligned)?;
                let n = addr & 3;
                let old = self.reg(rt);
                // Little-endian semantics (the simulator's byte order):
                // LWL merges bytes aligned..=addr into the high end of rt;
                // LWR merges bytes addr..aligned_end into the low end.
                let v = if left {
                    let keep = (3 - n) * 8;
                    (word << keep) | (old & low_mask(keep))
                } else {
                    let drop = n * 8;
                    (old & !low_mask(32 - drop)) | (word >> drop)
                };
                self.set_reg(rt, v);
            }
            StoreUnaligned {
                left,
                rt,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                mem_addr = Some(addr);
                let aligned = addr & !3;
                let word = mem.read_u32(aligned)?;
                let n = addr & 3;
                let v = self.reg(rt);
                // SWL stores the high n+1 bytes of rt into bytes
                // aligned..=addr; SWR stores the low 4-n bytes into
                // bytes addr..aligned_end.
                let merged = if left {
                    let keep = (3 - n) * 8;
                    let mask = low_mask(32 - keep);
                    (word & !mask) | ((v >> keep) & mask)
                } else {
                    let drop = n * 8;
                    (word & low_mask(drop)) | (v << drop)
                };
                mem.write_u32(aligned, merged)?;
            }
            Store {
                width,
                rt,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                mem_addr = Some(addr);
                let v = self.reg(rt);
                match width {
                    MemWidth::Byte => mem.write_u8(addr, v as u8),
                    MemWidth::Half => mem.write_u16(addr, v as u16)?,
                    MemWidth::Word => mem.write_u32(addr, v)?,
                }
            }
            Branch { cond, rs, rt, .. } => {
                let t = cond.eval(self.reg(rs), self.reg(rt));
                taken = Some(t);
                if t {
                    next_pc = inst.branch_target(pc).expect("Branch always has a target");
                }
            }
            J { .. } => next_pc = inst.jump_target(pc).expect("J has target"),
            Jal { .. } => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                next_pc = inst.jump_target(pc).expect("Jal has target");
            }
            Jr { rs } => next_pc = self.reg(rs),
            Jalr { rd, rs } => {
                // Read rs before the link write in case rd == rs.
                let target = self.reg(rs);
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Syscall => effect = Effect::Syscall,
            Break { code } => effect = Effect::Break(code),
        }
        self.pc = next_pc;
        Ok(StepInfo {
            pc,
            inst,
            next_pc,
            taken,
            mem_addr,
            effect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{AluImmOp, AluOp, BranchCond, MulDivOp};

    fn cpu_at(pc: u32) -> (Cpu, Memory) {
        let mut c = Cpu::new();
        c.pc = pc;
        (c, Memory::new())
    }

    #[test]
    fn zero_register_is_hardwired() {
        let (mut c, mut m) = cpu_at(0);
        c.execute(
            Instruction::AluImm {
                op: AluImmOp::Addiu,
                rt: Reg::ZERO,
                rs: Reg::ZERO,
                imm: 42,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.reg(Reg::ZERO), 0);
    }

    #[test]
    fn alu_and_pc_advance() {
        let (mut c, mut m) = cpu_at(0x400000);
        c.set_reg(Reg::T0, 7);
        c.set_reg(Reg::T1, 5);
        let info = c
            .execute(
                Instruction::Alu {
                    op: AluOp::Sub,
                    rd: Reg::T2,
                    rs: Reg::T0,
                    rt: Reg::T1,
                },
                &mut m,
            )
            .unwrap();
        assert_eq!(c.reg(Reg::T2), 2);
        assert_eq!(info.next_pc, 0x400004);
        assert_eq!(c.pc, 0x400004);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let b = Instruction::Branch {
            cond: BranchCond::Eq,
            rs: Reg::T0,
            rt: Reg::T1,
            offset: 3,
        };
        let (mut c, mut m) = cpu_at(0x1000);
        let info = c.execute(b, &mut m).unwrap();
        assert_eq!(info.taken, Some(true)); // both zero
        assert_eq!(c.pc, 0x1000 + 4 + 12);

        let (mut c, mut m) = cpu_at(0x1000);
        c.set_reg(Reg::T0, 1);
        let info = c.execute(b, &mut m).unwrap();
        assert_eq!(info.taken, Some(false));
        assert_eq!(c.pc, 0x1004);
    }

    #[test]
    fn jal_links_and_jumps() {
        let (mut c, mut m) = cpu_at(0x0040_0100);
        c.execute(
            Instruction::Jal {
                target: 0x0040_0200 >> 2,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.reg(Reg::RA), 0x0040_0104);
        assert_eq!(c.pc, 0x0040_0200);
    }

    #[test]
    fn jalr_same_register_uses_old_value() {
        let (mut c, mut m) = cpu_at(0x100);
        c.set_reg(Reg::T0, 0x2000);
        c.execute(
            Instruction::Jalr {
                rd: Reg::T0,
                rs: Reg::T0,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.pc, 0x2000);
        assert_eq!(c.reg(Reg::T0), 0x104);
    }

    #[test]
    fn load_store_roundtrip_with_sign_extension() {
        let (mut c, mut m) = cpu_at(0);
        c.set_reg(Reg::T0, 0x1000_0000);
        c.set_reg(Reg::T1, 0xfedc_ba98);
        c.execute(
            Instruction::Store {
                width: MemWidth::Word,
                rt: Reg::T1,
                base: Reg::T0,
                offset: 0,
            },
            &mut m,
        )
        .unwrap();
        c.execute(
            Instruction::Load {
                width: MemWidth::Byte,
                signed: true,
                rt: Reg::T2,
                base: Reg::T0,
                offset: 0,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.reg(Reg::T2), 0xffff_ff98);
        c.execute(
            Instruction::Load {
                width: MemWidth::Half,
                signed: false,
                rt: Reg::T3,
                base: Reg::T0,
                offset: 2,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.reg(Reg::T3), 0xfedc);
    }

    #[test]
    fn muldiv_updates_hi_lo() {
        let (mut c, mut m) = cpu_at(0);
        c.set_reg(Reg::A0, 6);
        c.set_reg(Reg::A1, 7);
        c.execute(
            Instruction::MulDiv {
                op: MulDivOp::Mult,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!((c.hi, c.lo), (0, 42));
        c.execute(Instruction::Mflo { rd: Reg::V0 }, &mut m)
            .unwrap();
        assert_eq!(c.reg(Reg::V0), 42);
    }

    #[test]
    fn unaligned_load_idiom_all_offsets() {
        // The classic little-endian unaligned word load:
        //   lwr rt, 0(x) ; lwl rt, 3(x)
        for off in 0u32..4 {
            let (mut c, mut m) = cpu_at(0);
            m.write_bytes(0x1000, &[0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe]);
            c.set_reg(Reg::A0, 0x1000 + off);
            c.execute(
                Instruction::LoadUnaligned {
                    left: false,
                    rt: Reg::T0,
                    base: Reg::A0,
                    offset: 0,
                },
                &mut m,
            )
            .unwrap();
            c.execute(
                Instruction::LoadUnaligned {
                    left: true,
                    rt: Reg::T0,
                    base: Reg::A0,
                    offset: 3,
                },
                &mut m,
            )
            .unwrap();
            let expected = u32::from_le_bytes([
                m.read_u8(0x1000 + off),
                m.read_u8(0x1001 + off),
                m.read_u8(0x1002 + off),
                m.read_u8(0x1003 + off),
            ]);
            assert_eq!(c.reg(Reg::T0), expected, "offset {off}");
        }
    }

    #[test]
    fn unaligned_store_idiom_all_offsets() {
        // swr rt, 0(x) ; swl rt, 3(x) stores an unaligned word.
        for off in 0u32..4 {
            let (mut c, mut m) = cpu_at(0);
            m.write_bytes(0x1000, &[0xaa; 8]);
            c.set_reg(Reg::A0, 0x1000 + off);
            c.set_reg(Reg::T0, 0x7654_3210);
            c.execute(
                Instruction::StoreUnaligned {
                    left: false,
                    rt: Reg::T0,
                    base: Reg::A0,
                    offset: 0,
                },
                &mut m,
            )
            .unwrap();
            c.execute(
                Instruction::StoreUnaligned {
                    left: true,
                    rt: Reg::T0,
                    base: Reg::A0,
                    offset: 3,
                },
                &mut m,
            )
            .unwrap();
            assert_eq!(
                m.read_bytes(0x1000 + off, 4),
                vec![0x10, 0x32, 0x54, 0x76],
                "offset {off}"
            );
            // Neighbouring bytes untouched.
            if off > 0 {
                assert_eq!(m.read_u8(0x1000 + off - 1), 0xaa);
            }
            assert_eq!(m.read_u8(0x1004 + off), 0xaa);
        }
    }

    #[test]
    fn aligned_lwl_lwr_load_full_word() {
        let (mut c, mut m) = cpu_at(0);
        m.write_u32(0x2000, 0xdead_beef).unwrap();
        c.set_reg(Reg::A0, 0x2000);
        // lwl at addr+3 (n=3) alone loads the whole word.
        c.execute(
            Instruction::LoadUnaligned {
                left: true,
                rt: Reg::T1,
                base: Reg::A0,
                offset: 3,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.reg(Reg::T1), 0xdead_beef);
        // lwr at addr (n=0) alone loads the whole word.
        c.execute(
            Instruction::LoadUnaligned {
                left: false,
                rt: Reg::T2,
                base: Reg::A0,
                offset: 0,
            },
            &mut m,
        )
        .unwrap();
        assert_eq!(c.reg(Reg::T2), 0xdead_beef);
    }

    #[test]
    fn break_and_syscall_effects() {
        let (mut c, mut m) = cpu_at(0);
        let i = c.execute(Instruction::Break { code: 9 }, &mut m).unwrap();
        assert_eq!(i.effect, Effect::Break(9));
        let i = c.execute(Instruction::Syscall, &mut m).unwrap();
        assert_eq!(i.effect, Effect::Syscall);
    }
}
