//! The simulated machine: predecoded text, CPU, memory, timing, syscalls.

use crate::{CacheSim, Cpu, Effect, Memory, PipelineCosts, RunStats, SimError, StepInfo};
use dim_mips::asm::Program;
use dim_mips::{Instruction, Reg};
use dim_obs::{NullProbe, Probe, ProbeEvent, RetireKind};

/// The observability classification of an instruction.
fn retire_kind(inst: &Instruction) -> RetireKind {
    match inst {
        Instruction::Load { .. } | Instruction::LoadUnaligned { .. } => RetireKind::Load,
        Instruction::Store { .. } | Instruction::StoreUnaligned { .. } => RetireKind::Store,
        Instruction::Branch { .. } => RetireKind::Branch,
        Instruction::J { .. }
        | Instruction::Jal { .. }
        | Instruction::Jr { .. }
        | Instruction::Jalr { .. } => RetireKind::Jump,
        Instruction::MulDiv { .. } => RetireKind::MulDiv,
        Instruction::Syscall | Instruction::Break { .. } => RetireKind::System,
        _ => RetireKind::Alu,
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// `syscall` exit service (10/17) or `break`.
    Exit(u32),
    /// The step budget was exhausted before the program finished.
    StepLimit,
}

/// Initial stack pointer (grows downwards).
pub const STACK_TOP: u32 = 0x7fff_fffc;

/// A loaded MIPS machine: CPU + memory + predecoded text + cycle model.
///
/// The text segment is predecoded at load time (self-modifying code is not
/// supported) so the simulator's hot loop is an array index and a `match`.
///
/// ```
/// use dim_mips::asm::assemble;
/// use dim_mips_sim::Machine;
///
/// let program = assemble("
///     main: li   $t0, 10
///           li   $v0, 0
///     loop: addu $v0, $v0, $t0
///           addiu $t0, $t0, -1
///           bnez $t0, loop
///           break 0
/// ")?;
/// let mut machine = Machine::load(&program);
/// machine.run(100_000)?;
/// assert_eq!(machine.cpu.reg(dim_mips::Reg::V0), 55);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Data memory (also holds a copy of the text bytes).
    pub mem: Memory,
    /// Cycle-cost model applied to processor-executed instructions.
    pub costs: PipelineCosts,
    /// Event counters.
    pub stats: RunStats,
    /// Bytes emitted by the print syscalls.
    pub output: Vec<u8>,
    /// Optional instruction-cache timing model (`None` = perfect, the
    /// paper's assumption).
    pub icache: Option<CacheSim>,
    /// Optional data-cache timing model (`None` = perfect).
    pub dcache: Option<CacheSim>,
    text_base: u32,
    code: Vec<Instruction>,
    halted: Option<HaltReason>,
    last_load_dest: Option<Reg>,
}

impl Machine {
    /// Loads an assembled program: text is predecoded, data copied, the PC
    /// set to the entry point and `$sp` to [`STACK_TOP`].
    ///
    /// # Panics
    ///
    /// Panics if the program text contains a word that does not decode —
    /// impossible for the output of [`dim_mips::asm::assemble`].
    pub fn load(program: &Program) -> Machine {
        let code = program.decoded();
        let mut mem = Memory::new();
        // Keep a byte image of text too, so programs may read their own
        // code (jump tables in .text are not used, but this is cheap).
        for (k, &w) in program.text.iter().enumerate() {
            mem.write_u32(program.text_base + 4 * k as u32, w)
                .expect("text base is aligned");
        }
        mem.write_bytes(program.data_base, &program.data);
        let mut cpu = Cpu::new();
        cpu.pc = program.entry;
        cpu.set_reg(Reg::SP, STACK_TOP);
        cpu.set_reg(Reg::GP, program.data_base.wrapping_add(0x8000));
        Machine {
            cpu,
            mem,
            costs: PipelineCosts::default(),
            stats: RunStats::new(),
            output: Vec::new(),
            icache: None,
            dcache: None,
            text_base: program.text_base,
            code,
            halted: None,
            last_load_dest: None,
        }
    }

    /// The decoded instruction at `pc`.
    ///
    /// # Errors
    ///
    /// [`SimError::PcOutOfRange`] when `pc` is outside the text segment.
    pub fn fetch(&self, pc: u32) -> Result<Instruction, SimError> {
        if pc < self.text_base || !pc.is_multiple_of(4) {
            return Err(SimError::PcOutOfRange { pc });
        }
        let idx = ((pc - self.text_base) / 4) as usize;
        self.code
            .get(idx)
            .copied()
            .ok_or(SimError::PcOutOfRange { pc })
    }

    /// Whether (and why) the machine has halted.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Number of instructions in the text segment.
    pub fn text_len(&self) -> usize {
        self.code.len()
    }

    /// Resets the pipeline's load-use tracking (the coupled system calls
    /// this after the array executes, since the pipeline is drained).
    pub fn reset_hazard_window(&mut self) {
        self.last_load_dest = None;
    }

    /// Executes one instruction with full timing/stat accounting.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; the machine also refuses to step after halting
    /// (returns [`SimError::PcOutOfRange`] with the halt PC — stepping a
    /// halted machine is a caller bug surfaced loudly in tests).
    pub fn step(&mut self) -> Result<StepInfo, SimError> {
        self.step_probed(&mut NullProbe)
    }

    /// Like [`step`](Machine::step), additionally emitting a
    /// [`ProbeEvent::Retire`] with the instruction's exact cycle
    /// decomposition (base + i-stall + d-stall) into `probe`. The probe
    /// is monomorphized in; with [`NullProbe`] this *is* `step`.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Machine::step).
    pub fn step_probed<P: Probe>(&mut self, probe: &mut P) -> Result<StepInfo, SimError> {
        if self.halted.is_some() {
            return Err(SimError::PcOutOfRange { pc: self.cpu.pc });
        }
        let inst = self.fetch(self.cpu.pc)?;
        let load_use = self
            .last_load_dest
            .is_some_and(|dest| inst.reads().contains(dim_mips::DataLoc::Gpr(dest)));
        let info = self.cpu.execute(inst, &mut self.mem)?;
        self.stats.record(&inst, info.taken, load_use);
        let base_cycles = self.costs.cycles(&inst, info.taken, load_use);
        self.stats.cycles += base_cycles;
        let mut i_stall = 0;
        if let Some(ic) = &mut self.icache {
            i_stall = ic.access(info.pc);
            self.stats.cycles += i_stall;
            self.stats.i_stall_cycles += i_stall;
        }
        let mut d_stall = 0;
        if let (Some(dc), Some(addr)) = (&mut self.dcache, info.mem_addr) {
            d_stall = dc.access(addr);
            self.stats.cycles += d_stall;
            self.stats.d_stall_cycles += d_stall;
        }
        self.last_load_dest = match inst {
            Instruction::Load { rt, .. } => Some(rt),
            _ => None,
        };
        match info.effect {
            Effect::None => {}
            Effect::Break(code) => self.halted = Some(HaltReason::Exit(code)),
            Effect::Syscall => self.service_syscall(info.pc)?,
        }
        if P::ENABLED {
            probe.emit(ProbeEvent::Retire {
                pc: info.pc,
                kind: retire_kind(&inst),
                base_cycles: base_cycles as u32,
                i_stall: i_stall as u32,
                d_stall: d_stall as u32,
                ends_block: inst.is_control() || !matches!(info.effect, Effect::None),
            });
        }
        Ok(info)
    }

    /// SPIM-style syscall services: 1 print_int, 4 print_string,
    /// 10 exit, 11 print_char, 17 exit2.
    fn service_syscall(&mut self, pc: u32) -> Result<(), SimError> {
        let service = self.cpu.reg(Reg::V0);
        let a0 = self.cpu.reg(Reg::A0);
        match service {
            1 => {
                self.output
                    .extend_from_slice((a0 as i32).to_string().as_bytes());
            }
            4 => {
                let s = self.mem.read_cstr(a0, 1 << 20);
                self.output.extend_from_slice(s.as_bytes());
            }
            10 => self.halted = Some(HaltReason::Exit(0)),
            11 => self.output.push(a0 as u8),
            17 => self.halted = Some(HaltReason::Exit(a0)),
            other => return Err(SimError::UnknownSyscall { service: other, pc }),
        }
        Ok(())
    }

    /// Runs until halt or until `max_steps` instructions executed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, max_steps: u64) -> Result<HaltReason, SimError> {
        self.run_with(max_steps, |_| {})
    }

    /// Runs like [`run`](Machine::run), invoking `observer` with every
    /// retired instruction — the hook the DIM detection hardware and the
    /// basic-block profiler attach to.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run_with(
        &mut self,
        max_steps: u64,
        mut observer: impl FnMut(&StepInfo),
    ) -> Result<HaltReason, SimError> {
        for _ in 0..max_steps {
            if let Some(reason) = self.halted {
                return Ok(reason);
            }
            let info = self.step()?;
            observer(&info);
        }
        Ok(self.halted.unwrap_or(HaltReason::StepLimit))
    }

    /// Runs like [`run`](Machine::run), emitting a retire event per
    /// instruction into `probe`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run_probed<P: Probe>(
        &mut self,
        max_steps: u64,
        probe: &mut P,
    ) -> Result<HaltReason, SimError> {
        for _ in 0..max_steps {
            if let Some(reason) = self.halted {
                return Ok(reason);
            }
            self.step_probed(probe)?;
        }
        Ok(self.halted.unwrap_or(HaltReason::StepLimit))
    }

    /// The collected print-syscall output as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;

    fn run_src(src: &str) -> Machine {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::load(&p);
        let r = m.run(1_000_000).expect("runs");
        assert_ne!(r, HaltReason::StepLimit, "program did not finish");
        m
    }

    #[test]
    fn sum_loop_executes_and_counts() {
        let m = run_src(
            "main: li $t0, 10
                   li $v0, 0
             loop: addu $v0, $v0, $t0
                   addiu $t0, $t0, -1
                   bnez $t0, loop
                   break 0",
        );
        assert_eq!(m.cpu.reg(Reg::V0), 55);
        assert_eq!(m.stats.branches, 10);
        assert_eq!(m.stats.taken_branches, 9);
        // 2 setup + 3*10 loop + 1 break
        assert_eq!(m.stats.instructions, 33);
        // cycles: 33 base + 9 taken penalties
        assert_eq!(m.stats.cycles, 42);
    }

    #[test]
    fn load_use_stall_accounted() {
        let m = run_src(
            ".data
             v: .word 7
             .text
             main: la $t0, v
                   lw $t1, 0($t0)
                   addu $t2, $t1, $t1   # load-use on $t1
                   break 0",
        );
        assert_eq!(m.cpu.reg(Reg::T2), 14);
        assert_eq!(m.stats.load_use_stalls, 1);
    }

    #[test]
    fn syscalls_print_and_exit() {
        let m = run_src(
            ".data
             msg: .asciiz \"n=\"
             .text
             main: li $v0, 4
                   la $a0, msg
                   syscall
                   li $v0, 1
                   li $a0, -42
                   syscall
                   li $v0, 11
                   li $a0, '\\n'
                   syscall
                   li $v0, 10
                   syscall",
        );
        assert_eq!(m.output_string(), "n=-42\n");
    }

    #[test]
    fn exit2_reports_code() {
        let p = assemble("main: li $v0, 17\n li $a0, 3\n syscall").unwrap();
        let mut m = Machine::load(&p);
        assert_eq!(m.run(100).unwrap(), HaltReason::Exit(3));
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble("main: b main").unwrap();
        let mut m = Machine::load(&p);
        assert_eq!(m.run(100).unwrap(), HaltReason::StepLimit);
    }

    #[test]
    fn unknown_syscall_is_error() {
        let p = assemble("main: li $v0, 99\n syscall").unwrap();
        let mut m = Machine::load(&p);
        assert!(matches!(
            m.run(100),
            Err(SimError::UnknownSyscall { service: 99, .. })
        ));
    }

    #[test]
    fn pc_escape_is_error() {
        let p = assemble("main: jr $zero").unwrap();
        let mut m = Machine::load(&p);
        assert!(matches!(m.run(100), Err(SimError::PcOutOfRange { pc: 0 })));
    }

    #[test]
    fn function_call_and_return() {
        let m = run_src(
            "main:  li   $a0, 21
                    jal  double
                    move $s0, $v0
                    break 0
             double: addu $v0, $a0, $a0
                    jr   $ra",
        );
        assert_eq!(m.cpu.reg(Reg::S0), 42);
        assert_eq!(m.stats.jumps, 2);
    }

    #[test]
    fn caches_add_cycles_but_not_semantics() {
        let src = "
            .data
            buf: .space 4096
            .text
            main: li $s0, 256
                  la $s1, buf
            loop: sll $t0, $s0, 2
                  addu $t1, $s1, $t0
                  sw  $s0, -4($t1)
                  lw  $t2, -4($t1)
                  addu $v0, $v0, $t2
                  addiu $s0, $s0, -1
                  bnez $s0, loop
                  break 0";
        let p = assemble(src).unwrap();
        let mut perfect = Machine::load(&p);
        perfect.run(1_000_000).unwrap();

        let mut cached = Machine::load(&p);
        cached.icache = Some(crate::CacheSim::new(crate::CacheConfig::icache_4k()));
        cached.dcache = Some(crate::CacheSim::new(crate::CacheConfig::dcache_4k()));
        cached.run(1_000_000).unwrap();

        assert_eq!(cached.cpu.reg(Reg::V0), perfect.cpu.reg(Reg::V0));
        assert!(cached.stats.cycles > perfect.stats.cycles);
        let d = cached.dcache.as_ref().unwrap().stats();
        assert!(d.misses > 0, "a 1KiB stream must miss a 4KiB cache lines");
        // The tiny loop fits the I-cache: almost all fetches hit.
        let i = cached.icache.as_ref().unwrap().stats();
        assert!(i.miss_rate() < 0.01, "{}", i.miss_rate());
    }

    #[test]
    fn stack_usable() {
        let m = run_src(
            "main: addiu $sp, $sp, -8
                   li $t0, 123
                   sw $t0, 4($sp)
                   lw $t1, 4($sp)
                   addiu $sp, $sp, 8
                   break 0",
        );
        assert_eq!(m.cpu.reg(Reg::T1), 123);
        assert_eq!(m.cpu.reg(Reg::SP), STACK_TOP);
    }
}
