//! Cycle-cost model of the scalar five-stage pipeline.
//!
//! The baseline processor is a Minimips-class R3000: single issue, one
//! instruction per cycle when nothing stalls. The model charges the
//! classic penalties — a load-use interlock bubble, a flush on taken
//! control transfers, and multi-cycle multiply/divide — and assumes
//! perfect instruction/data caches with single-cycle hits, exactly like
//! the paper ("the operations that depend on the result of a load are
//! allocated considering a cache hit as the total load delay").

use dim_mips::Instruction;

/// Per-event cycle costs of the scalar pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineCosts {
    /// Cycles charged to every instruction.
    pub base: u64,
    /// Bubble when an instruction consumes the value loaded by the
    /// immediately preceding load.
    pub load_use_stall: u64,
    /// Flush penalty for a taken branch.
    pub taken_branch_penalty: u64,
    /// Flush penalty for unconditional jumps (j/jal/jr/jalr).
    pub jump_penalty: u64,
    /// Extra cycles (beyond `base`) for a multiply.
    pub mult_extra: u64,
    /// Extra cycles (beyond `base`) for a divide.
    pub div_extra: u64,
}

impl Default for PipelineCosts {
    fn default() -> Self {
        PipelineCosts {
            base: 1,
            load_use_stall: 1,
            taken_branch_penalty: 1,
            jump_penalty: 1,
            mult_extra: 3,
            div_extra: 15,
        }
    }
}

impl PipelineCosts {
    /// Cycles for one instruction.
    ///
    /// `taken` is the branch outcome (for conditional branches) and
    /// `load_use_hazard` whether the previous instruction was a load whose
    /// destination this instruction reads.
    pub fn cycles(&self, inst: &Instruction, taken: Option<bool>, load_use_hazard: bool) -> u64 {
        let mut c = self.base;
        if load_use_hazard {
            c += self.load_use_stall;
        }
        match inst {
            Instruction::MulDiv { op, .. } => {
                c += if op.is_div() {
                    self.div_extra
                } else {
                    self.mult_extra
                };
            }
            Instruction::Branch { .. } if taken == Some(true) => {
                c += self.taken_branch_penalty;
            }
            Instruction::J { .. }
            | Instruction::Jal { .. }
            | Instruction::Jr { .. }
            | Instruction::Jalr { .. } => {
                c += self.jump_penalty;
            }
            _ => {}
        }
        c
    }

    /// Convenience: extra cycles of a divide over `base`. Used by the
    /// array-coupled system (divides always run on the core).
    pub fn div_cycles(&self) -> u64 {
        self.base + self.div_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{AluOp, BranchCond, Reg};

    #[test]
    fn default_costs_match_r3000_expectations() {
        let c = PipelineCosts::default();
        let add = Instruction::Alu {
            op: AluOp::Addu,
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(c.cycles(&add, None, false), 1);
        assert_eq!(c.cycles(&add, None, true), 2);

        let br = Instruction::Branch {
            cond: BranchCond::Eq,
            rs: Reg::T0,
            rt: Reg::T1,
            offset: 1,
        };
        assert_eq!(c.cycles(&br, Some(false), false), 1);
        assert_eq!(c.cycles(&br, Some(true), false), 2);

        let mult = Instruction::MulDiv {
            op: dim_mips::MulDivOp::Mult,
            rs: Reg::T0,
            rt: Reg::T1,
        };
        assert_eq!(c.cycles(&mult, None, false), 4);
        let div = Instruction::MulDiv {
            op: dim_mips::MulDivOp::Div,
            rs: Reg::T0,
            rt: Reg::T1,
        };
        assert_eq!(c.cycles(&div, None, false), 16);

        let jr = Instruction::Jr { rs: Reg::RA };
        assert_eq!(c.cycles(&jr, None, false), 2);
    }
}
