//! An in-order dual-issue superscalar cycle model — the alternative the
//! paper's introduction argues against ("the limited and time-varying
//! instruction level parallelism available in applications ... preclude
//! the employment of these processors as an effective organization to be
//! used in low-energy devices").
//!
//! The model retimes a retiring instruction stream: up to `width`
//! instructions issue per cycle, subject to in-order issue, no RAW
//! dependence inside an issue group, one memory port, and control
//! transfers ending the group (plus the usual flush/multi-cycle
//! penalties). Feeding it the observer stream of a [`Machine`] run gives
//! the cycle count the same program would take on the wider core.

use crate::{PipelineCosts, StepInfo};
use dim_mips::{DataLoc, Instruction};

/// Issue constraints of the modelled superscalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperscalarConfig {
    /// Maximum instructions issued per cycle.
    pub width: usize,
    /// Memory operations per cycle (data-cache ports).
    pub mem_ports: usize,
    /// Per-event penalties shared with the scalar model.
    pub costs: PipelineCosts,
}

impl Default for SuperscalarConfig {
    fn default() -> Self {
        SuperscalarConfig {
            width: 2,
            mem_ports: 1,
            costs: PipelineCosts::default(),
        }
    }
}

/// Retimes an instruction stream under superscalar issue rules.
#[derive(Debug, Clone)]
pub struct SuperscalarModel {
    config: SuperscalarConfig,
    cycles: u64,
    group_len: usize,
    group_mem: usize,
    group_writes: Vec<DataLoc>,
    instructions: u64,
}

impl SuperscalarModel {
    /// Creates an idle model.
    pub fn new(config: SuperscalarConfig) -> SuperscalarModel {
        SuperscalarModel {
            config,
            cycles: 0,
            group_len: 0,
            group_mem: 0,
            group_writes: Vec::new(),
            instructions: 0,
        }
    }

    /// Total cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retimed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    fn close_group(&mut self) {
        if self.group_len > 0 {
            self.cycles += 1;
            self.group_len = 0;
            self.group_mem = 0;
            self.group_writes.clear();
        }
    }

    /// Feeds one retired instruction (use as a [`Machine::run_with`]
    /// observer).
    ///
    /// [`Machine::run_with`]: crate::Machine::run_with
    pub fn observe(&mut self, info: &StepInfo) {
        let inst = &info.inst;
        self.instructions += 1;

        // RAW against the current group forces a new cycle.
        let raw = inst
            .reads()
            .iter()
            .any(|src| self.group_writes.contains(&src));
        let mem_full = inst.is_mem() && self.group_mem >= self.config.mem_ports;
        if raw || mem_full || self.group_len >= self.config.width {
            self.close_group();
        }

        self.group_len += 1;
        if inst.is_mem() {
            self.group_mem += 1;
        }
        for dst in inst.writes().iter() {
            self.group_writes.push(dst);
        }

        // Multi-cycle / flush events drain the machine like the scalar
        // model (charged on top of the issue cycle).
        let extra = match inst {
            Instruction::MulDiv { op, .. } => {
                if op.is_div() {
                    self.config.costs.div_extra
                } else {
                    self.config.costs.mult_extra
                }
            }
            Instruction::Branch { .. } if info.taken == Some(true) => {
                self.config.costs.taken_branch_penalty
            }
            Instruction::J { .. }
            | Instruction::Jal { .. }
            | Instruction::Jr { .. }
            | Instruction::Jalr { .. } => self.config.costs.jump_penalty,
            _ => 0,
        };
        if extra > 0 {
            self.close_group();
            self.cycles += extra;
        } else if inst.is_control() {
            // Control transfers end the issue group even when not taken.
            self.close_group();
        }
    }

    /// Closes the trailing issue group and returns the final cycle count.
    pub fn finish(mut self) -> u64 {
        self.close_group();
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use dim_mips::asm::assemble;

    fn retime(src: &str, config: SuperscalarConfig) -> (u64, u64) {
        let p = assemble(src).unwrap();
        let mut m = Machine::load(&p);
        let mut model = SuperscalarModel::new(config);
        m.run_with(1_000_000, |i| model.observe(i)).unwrap();
        (m.stats.cycles, model.finish())
    }

    #[test]
    fn independent_pairs_dual_issue() {
        // Four independent adds + break: 2 cycles for the adds.
        let (scalar, ss) = retime(
            "main: addu $t0, $a0, $a1
                   addu $t1, $a2, $a3
                   addu $t2, $a0, $a3
                   addu $t3, $a1, $a2
                   break 0",
            SuperscalarConfig::default(),
        );
        assert_eq!(scalar, 5);
        assert_eq!(ss, 3); // 2 add-pairs + break
    }

    #[test]
    fn raw_chain_defeats_width() {
        let (scalar, ss) = retime(
            "main: addu $t0, $a0, $a1
                   addu $t0, $t0, $a1
                   addu $t0, $t0, $a1
                   addu $t0, $t0, $a1
                   break 0",
            SuperscalarConfig::default(),
        );
        assert_eq!(scalar, 5);
        // The adds serialize (4 cycles); `break` dual-issues with the last.
        assert_eq!(ss, 4);
    }

    #[test]
    fn one_memory_port_serializes_loads() {
        let (_, ss) = retime(
            "main: lw $t0, 0($gp)
                   lw $t1, 4($gp)
                   lw $t2, 8($gp)
                   lw $t3, 12($gp)
                   break 0",
            SuperscalarConfig::default(),
        );
        assert_eq!(ss, 4); // 4 load cycles, break pairs with the last
        let wide = SuperscalarConfig {
            mem_ports: 2,
            ..SuperscalarConfig::default()
        };
        let (_, ss2) = retime(
            "main: lw $t0, 0($gp)
                   lw $t1, 4($gp)
                   lw $t2, 8($gp)
                   lw $t3, 12($gp)
                   break 0",
            wide,
        );
        assert_eq!(ss2, 3);
    }

    #[test]
    fn superscalar_never_slower_than_scalar() {
        let src = "
            main: li $s0, 50
            loop: xor $t0, $v0, $s0
                  sll $t1, $s0, 2
                  addu $v0, $t0, $t1
                  lw  $t2, 0($gp)
                  addu $v0, $v0, $t2
                  addiu $s0, $s0, -1
                  bnez $s0, loop
                  break 0";
        let (scalar, ss) = retime(src, SuperscalarConfig::default());
        assert!(ss <= scalar, "{ss} > {scalar}");
        assert!(ss > scalar / 2, "dual issue cannot more than double");
    }
}
