//! Property tests for configuration placement and timing.

use dim_cgra::{ArrayShape, ArrayTiming, Configuration, PlaceError};
use dim_mips::{AluOp, FuClass, Instruction, MemWidth, MulDivOp, Reg};
use proptest::prelude::*;

fn any_placeable_inst() -> impl Strategy<Value = Instruction> {
    let reg = (0u8..32).prop_map(|i| Reg::new(i).unwrap());
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs, rt)| Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt
        }),
        (reg.clone(), reg.clone()).prop_map(|(rs, rt)| Instruction::MulDiv {
            op: MulDivOp::Mult,
            rs,
            rt
        }),
        (reg.clone(), reg.clone()).prop_map(|(rt, base)| Instruction::Load {
            width: MemWidth::Word,
            signed: false,
            rt,
            base,
            offset: 0
        }),
        (reg.clone(), reg).prop_map(|(rt, base)| Instruction::Store {
            width: MemWidth::Word,
            rt,
            base,
            offset: 0
        }),
    ]
}

fn small_shape() -> impl Strategy<Value = ArrayShape> {
    (1usize..12, 1usize..6, 1usize..3, 1usize..4).prop_map(|(rows, alus, mults, ldsts)| {
        ArrayShape {
            rows,
            alus_per_row: alus,
            mults_per_row: mults,
            ldsts_per_row: ldsts,
            rf_read_ports: 4,
            rf_write_ports: 4,
        }
    })
}

proptest! {
    #[test]
    fn placement_respects_shape(
        shape in small_shape(),
        insts in prop::collection::vec((any_placeable_inst(), 0usize..8), 1..64),
    ) {
        let mut config = Configuration::new(0x400000, shape);
        for (i, (inst, min_row)) in insts.iter().enumerate() {
            match config.place(0x400000 + 4 * i as u32, *inst, 0, *min_row) {
                Ok((row, col)) => {
                    prop_assert!((row as usize) < shape.rows);
                    prop_assert!(row as usize >= *min_row);
                    prop_assert!((col as usize) < shape.units_per_row(inst.fu_class()));
                }
                Err(PlaceError::Full) => {
                    // Acceptable whenever capacity below `min_row` ran out.
                }
                Err(PlaceError::Unsupported) => {
                    prop_assert_eq!(inst.fu_class(), FuClass::Unsupported);
                }
            }
        }
        prop_assert!(config.rows_used() <= shape.rows);
        // Per-row capacity was never exceeded: recount from placed ops.
        let mut counts = vec![(0usize, 0usize, 0usize); config.rows_used()];
        for op in config.ops() {
            let c = &mut counts[op.row as usize];
            match op.class {
                FuClass::Alu | FuClass::Branch => c.0 += 1,
                FuClass::Multiplier => c.1 += 1,
                FuClass::LoadStore => c.2 += 1,
                FuClass::Unsupported => unreachable!(),
            }
        }
        for (alus, mults, ldsts) in counts {
            prop_assert!(alus <= shape.alus_per_row);
            prop_assert!(mults <= shape.mults_per_row);
            prop_assert!(ldsts <= shape.ldsts_per_row);
        }
    }

    #[test]
    fn cycles_monotone_in_depth_and_composition(
        shape in small_shape(),
        insts in prop::collection::vec((any_placeable_inst(), 0u8..3), 1..48),
    ) {
        let timing = ArrayTiming::default();
        let mut config = Configuration::new(0, shape);
        let mut max_depth = 0;
        for (i, (inst, depth)) in insts.iter().enumerate() {
            let _ = config.place(4 * i as u32, *inst, *depth, 0);
            max_depth = max_depth.max(*depth);
        }
        let mut prev = 0;
        for d in 0..=max_depth {
            let c = config.exec_cycles(&timing, d);
            prop_assert!(c >= prev, "exec cycles must grow with depth");
            prev = c;
            prop_assert!(config.total_cycles(&timing, d) >= c);
        }
    }

    #[test]
    fn encoding_bits_positive_and_monotone(rows in 1usize..256, alus in 1usize..16) {
        let mk = |rows, alus| ArrayShape {
            rows,
            alus_per_row: alus,
            mults_per_row: 1,
            ldsts_per_row: 2,
            rf_read_ports: 4,
            rf_write_ports: 4,
        };
        let params = dim_cgra::EncodingParams::default();
        let small = dim_cgra::encoding_breakdown(&mk(rows, alus), &params).stored_bits();
        let bigger = dim_cgra::encoding_breakdown(&mk(rows + 1, alus + 1), &params).stored_bits();
        prop_assert!(small > 0);
        prop_assert!(bigger > small);
        prop_assert!(dim_cgra::cache_bytes(&mk(rows, alus), &params, 2)
            < dim_cgra::cache_bytes(&mk(rows, alus), &params, 4));
    }
}
