//! Streaming-eligibility certificates.
//!
//! A [`StreamingCert`] is the output of the static stride/alias prover
//! in `dim-lint` (`dim prove`): a machine-checkable claim that one
//! self-loop region can be replayed `burst` iterations back-to-back
//! without changing architectural state relative to `burst` sequential
//! re-entries. The certificate carries the complete per-access stride
//! table the claim rests on, so a consumer (the translator at commit
//! time, the ROADMAP-3 streaming executor later) can re-validate the
//! claim structurally without re-running the prover.
//!
//! Like every other persisted format in the workspace (`.dimrc`
//! snapshots, trace headers, perf baselines), certificates are
//! versioned and checksummed: the JSON form embeds an fnv64 checksum
//! over the canonical payload, and [`StreamingCert::parse_json`]
//! rejects version skew and any byte-level corruption.

use dim_obs::{fnv1a64, parse_json, JsonValue, ObjectWriter};
use std::fmt;

/// Version of the streaming-certificate format.
///
/// Consumers must reject certificates carrying a *different* version;
/// the stride table is the load-bearing payload and silently ignoring
/// unknown semantics would void the soundness law.
pub const STREAM_CERT_VERSION: u32 = 1;

/// Ceiling on the burst size a certificate may promise, independent of
/// any proven trip bound. Matches the depth of the double-buffered
/// live-in plan sketched in ROADMAP item 3.
pub const STREAM_BURST_CAP: u32 = 16;

/// Direction of a classified memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAccessKind {
    /// A load (lb/lbu/lh/lhu/lw).
    Load,
    /// A store (sb/sh/sw).
    Store,
}

impl StreamAccessKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            StreamAccessKind::Load => "load",
            StreamAccessKind::Store => "store",
        }
    }
}

/// Static classification of one memory access inside a certified loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// Address is `base + k·stride` across iterations, with a non-zero
    /// per-iteration stride in bytes.
    Affine {
        /// Per-iteration address delta in bytes (two's-complement).
        stride: i32,
    },
    /// Address is the same every iteration.
    Invariant,
    /// Address could not be expressed as a linear function of the
    /// loop-entry register values. Only permitted for loads in
    /// store-free loops.
    Unknown,
}

impl StreamClass {
    /// Stable wire name of the class.
    pub fn name(self) -> &'static str {
        match self {
            StreamClass::Affine { .. } => "affine",
            StreamClass::Invariant => "invariant",
            StreamClass::Unknown => "unknown",
        }
    }
}

/// One row of a certificate's stride table: a classified load or store
/// inside the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAccess {
    /// Address of the memory instruction.
    pub pc: u32,
    /// Load or store.
    pub kind: StreamAccessKind,
    /// Access width in bytes (1, 2 or 4).
    pub width: u32,
    /// Static address classification.
    pub class: StreamClass,
}

/// A streaming-eligibility certificate for one self-loop region.
///
/// The claim: replaying the region's body `burst` times back-to-back
/// (no per-iteration re-entry) is byte-identical to `burst` sequential
/// invocations, because every store provably never aliases any other
/// access across the burst window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingCert {
    /// Format version ([`STREAM_CERT_VERSION`]).
    pub version: u32,
    /// Workload (or file stem) the region was proven in.
    pub workload: String,
    /// First PC of the loop body.
    pub entry_pc: u32,
    /// Instructions in the region, *including* the closing branch.
    pub len: u32,
    /// Stride table: every load/store in the body, in PC order.
    pub accesses: Vec<StreamAccess>,
    /// Maximum safe burst K (≥ 1, ≤ [`STREAM_BURST_CAP`], ≤ trip bound
    /// when one is proven).
    pub burst: u32,
    /// Statically resolved iteration count per loop entry, when the
    /// induction comparison was decidable from constants.
    pub trip_bound: Option<u64>,
}

/// A structural defect found by [`verify_cert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamCertViolation {
    /// Certificate version is not [`STREAM_CERT_VERSION`].
    BadVersion {
        /// The version the certificate carried.
        found: u32,
    },
    /// Workload name is empty.
    EmptyWorkload,
    /// Entry PC or an access PC is not word-aligned.
    Misaligned {
        /// The offending PC.
        pc: u32,
    },
    /// Region length is outside `2..=4096` instructions.
    BadLen {
        /// The length the certificate carried.
        len: u32,
    },
    /// An access PC lies outside `[entry_pc, entry_pc + 4·len)`.
    AccessOutsideRegion {
        /// The offending access PC.
        pc: u32,
    },
    /// Accesses are not strictly ordered by PC.
    UnsortedAccesses {
        /// PC at which order breaks.
        pc: u32,
    },
    /// An access width is not 1, 2 or 4 bytes.
    BadWidth {
        /// The offending access PC.
        pc: u32,
        /// The width the certificate carried.
        width: u32,
    },
    /// An affine access claims stride 0 (that is `Invariant`).
    ZeroStride {
        /// The offending access PC.
        pc: u32,
    },
    /// A store is classified `Unknown` — never certifiable.
    UnknownStore {
        /// The offending store PC.
        pc: u32,
    },
    /// The loop has a store and some access is `Unknown`, so the alias
    /// test cannot have passed.
    UnknownWithStore {
        /// The unknown access's PC.
        pc: u32,
    },
    /// Burst is 0 or exceeds [`STREAM_BURST_CAP`] or the trip bound.
    BadBurst {
        /// The burst the certificate carried.
        burst: u32,
    },
}

impl fmt::Display for StreamCertViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamCertViolation::BadVersion { found } => {
                write!(f, "version {found} (expected {STREAM_CERT_VERSION})")
            }
            StreamCertViolation::EmptyWorkload => write!(f, "empty workload name"),
            StreamCertViolation::Misaligned { pc } => write!(f, "pc {pc:#x} not word-aligned"),
            StreamCertViolation::BadLen { len } => write!(f, "region length {len} out of range"),
            StreamCertViolation::AccessOutsideRegion { pc } => {
                write!(f, "access {pc:#x} outside region")
            }
            StreamCertViolation::UnsortedAccesses { pc } => {
                write!(f, "accesses not in pc order at {pc:#x}")
            }
            StreamCertViolation::BadWidth { pc, width } => {
                write!(f, "access {pc:#x} width {width} not in {{1,2,4}}")
            }
            StreamCertViolation::ZeroStride { pc } => {
                write!(f, "affine access {pc:#x} with stride 0")
            }
            StreamCertViolation::UnknownStore { pc } => {
                write!(f, "store {pc:#x} classified unknown")
            }
            StreamCertViolation::UnknownWithStore { pc } => {
                write!(f, "unknown access {pc:#x} in a loop with stores")
            }
            StreamCertViolation::BadBurst { burst } => write!(f, "burst {burst} out of range"),
        }
    }
}

/// Structurally validates a certificate, `verify_config`-style: every
/// field is checked against its domain and against the cross-field
/// invariants the prover guarantees. An empty result means the
/// certificate is well-formed (not that the *claim* is true — that is
/// the prover's soundness law, tested dynamically).
pub fn verify_cert(cert: &StreamingCert) -> Vec<StreamCertViolation> {
    let mut out = Vec::new();
    if cert.version != STREAM_CERT_VERSION {
        out.push(StreamCertViolation::BadVersion {
            found: cert.version,
        });
    }
    if cert.workload.is_empty() {
        out.push(StreamCertViolation::EmptyWorkload);
    }
    if !cert.entry_pc.is_multiple_of(4) {
        out.push(StreamCertViolation::Misaligned { pc: cert.entry_pc });
    }
    if !(2..=4096).contains(&cert.len) {
        out.push(StreamCertViolation::BadLen { len: cert.len });
    }
    let end = cert.entry_pc.wrapping_add(cert.len.saturating_mul(4));
    let has_store = cert
        .accesses
        .iter()
        .any(|a| a.kind == StreamAccessKind::Store);
    let mut prev_pc: Option<u32> = None;
    for access in &cert.accesses {
        if access.pc % 4 != 0 {
            out.push(StreamCertViolation::Misaligned { pc: access.pc });
        }
        if access.pc < cert.entry_pc || access.pc >= end {
            out.push(StreamCertViolation::AccessOutsideRegion { pc: access.pc });
        }
        if let Some(prev) = prev_pc {
            if access.pc <= prev {
                out.push(StreamCertViolation::UnsortedAccesses { pc: access.pc });
            }
        }
        prev_pc = Some(access.pc);
        if !matches!(access.width, 1 | 2 | 4) {
            out.push(StreamCertViolation::BadWidth {
                pc: access.pc,
                width: access.width,
            });
        }
        match access.class {
            StreamClass::Affine { stride: 0 } => {
                out.push(StreamCertViolation::ZeroStride { pc: access.pc });
            }
            StreamClass::Unknown => {
                if access.kind == StreamAccessKind::Store {
                    out.push(StreamCertViolation::UnknownStore { pc: access.pc });
                } else if has_store {
                    out.push(StreamCertViolation::UnknownWithStore { pc: access.pc });
                }
            }
            _ => {}
        }
    }
    let over_trip = cert
        .trip_bound
        .is_some_and(|trip| cert.burst as u64 > trip.max(1));
    if cert.burst == 0 || cert.burst > STREAM_BURST_CAP || over_trip {
        out.push(StreamCertViolation::BadBurst { burst: cert.burst });
    }
    out
}

/// Why a certificate line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamCertError {
    /// Not valid JSON, or a required field is missing/mistyped.
    Malformed(String),
    /// Version field differs from [`STREAM_CERT_VERSION`].
    VersionSkew {
        /// The version the line carried.
        found: u32,
    },
    /// Embedded checksum does not match the canonical payload.
    ChecksumMismatch {
        /// Checksum the line carried.
        found: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// Parsed fine but failed [`verify_cert`].
    Invalid(StreamCertViolation),
}

impl fmt::Display for StreamCertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamCertError::Malformed(what) => write!(f, "malformed certificate: {what}"),
            StreamCertError::VersionSkew { found } => write!(
                f,
                "certificate version {found} (this build understands {STREAM_CERT_VERSION})"
            ),
            StreamCertError::ChecksumMismatch { found, computed } => write!(
                f,
                "certificate checksum mismatch: header {found:#018x}, payload {computed:#018x}"
            ),
            StreamCertError::Invalid(v) => write!(f, "invalid certificate: {v}"),
        }
    }
}

impl std::error::Error for StreamCertError {}

impl StreamingCert {
    /// Whether `pc` lies inside the certified region.
    pub fn contains(&self, pc: u32) -> bool {
        pc >= self.entry_pc && pc < self.entry_pc.wrapping_add(self.len.saturating_mul(4))
    }

    /// Canonical JSON payload — everything except the checksum field.
    /// The checksum is defined over exactly these bytes.
    pub fn payload_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("type", "stream_cert")
            .field_u64("version", self.version as u64)
            .field_str("workload", &self.workload)
            .field_u64("entry_pc", self.entry_pc as u64)
            .field_u64("len", self.len as u64)
            .field_u64("burst", self.burst as u64)
            .field_opt_u64("trip_bound", self.trip_bound);
        let mut rows = String::from("[");
        for (i, a) in self.accesses.iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let mut row = ObjectWriter::new();
            row.field_u64("pc", a.pc as u64)
                .field_str("kind", a.kind.name())
                .field_u64("width", a.width as u64)
                .field_str("class", a.class.name());
            if let StreamClass::Affine { stride } = a.class {
                row.field_raw("stride", &stride.to_string());
            }
            rows.push_str(&row.finish());
        }
        rows.push(']');
        w.field_raw("accesses", &rows);
        w.finish()
    }

    /// fnv64 checksum over the canonical payload bytes.
    pub fn checksum(&self) -> u64 {
        fnv1a64(self.payload_json().as_bytes())
    }

    /// Full JSON line: the canonical payload plus its checksum.
    pub fn to_json(&self) -> String {
        let payload = self.payload_json();
        let checksum = fnv1a64(payload.as_bytes());
        let body = payload.strip_suffix('}').expect("payload is a JSON object");
        format!("{body},\"checksum\":\"{checksum:016x}\"}}")
    }

    /// Parses a certificate line, rejecting version skew, checksum
    /// mismatches, and structurally invalid certificates.
    pub fn parse_json(line: &str) -> Result<StreamingCert, StreamCertError> {
        let value = parse_json(line).map_err(|e| StreamCertError::Malformed(format!("{e:?}")))?;
        let kind = value.get("type").and_then(JsonValue::as_str);
        if kind != Some("stream_cert") {
            return Err(StreamCertError::Malformed(
                "not a stream_cert record".into(),
            ));
        }
        let version = field_u32(&value, "version")?;
        if version != STREAM_CERT_VERSION {
            return Err(StreamCertError::VersionSkew { found: version });
        }
        let workload = value
            .get("workload")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| StreamCertError::Malformed("missing workload".into()))?
            .to_string();
        let entry_pc = field_u32(&value, "entry_pc")?;
        let len = field_u32(&value, "len")?;
        let burst = field_u32(&value, "burst")?;
        let trip_bound = match value.get("trip_bound") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                StreamCertError::Malformed("trip_bound not a non-negative integer".into())
            })?),
        };
        let rows = value
            .get("accesses")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| StreamCertError::Malformed("missing accesses".into()))?;
        let mut accesses = Vec::with_capacity(rows.len());
        for row in rows {
            accesses.push(parse_access(row)?);
        }
        let found = value
            .get("checksum")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| StreamCertError::Malformed("missing checksum".into()))?;
        let cert = StreamingCert {
            version,
            workload,
            entry_pc,
            len,
            accesses,
            burst,
            trip_bound,
        };
        let computed = cert.checksum();
        if found != computed {
            return Err(StreamCertError::ChecksumMismatch { found, computed });
        }
        if let Some(violation) = verify_cert(&cert).into_iter().next() {
            return Err(StreamCertError::Invalid(violation));
        }
        Ok(cert)
    }
}

fn field_u32(value: &JsonValue, key: &str) -> Result<u32, StreamCertError> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| StreamCertError::Malformed(format!("missing or non-u32 field `{key}`")))
}

fn parse_access(row: &JsonValue) -> Result<StreamAccess, StreamCertError> {
    let pc = field_u32(row, "pc")?;
    let width = field_u32(row, "width")?;
    let kind = match row.get("kind").and_then(JsonValue::as_str) {
        Some("load") => StreamAccessKind::Load,
        Some("store") => StreamAccessKind::Store,
        other => {
            return Err(StreamCertError::Malformed(format!(
                "access kind {other:?} at {pc:#x}"
            )))
        }
    };
    let class = match row.get("class").and_then(JsonValue::as_str) {
        Some("affine") => {
            let stride = match row.get("stride") {
                Some(JsonValue::Int(i)) if *i >= i32::MIN as i128 && *i <= i32::MAX as i128 => {
                    *i as i32
                }
                _ => {
                    return Err(StreamCertError::Malformed(format!(
                        "affine access at {pc:#x} missing i32 stride"
                    )))
                }
            };
            StreamClass::Affine { stride }
        }
        Some("invariant") => StreamClass::Invariant,
        Some("unknown") => StreamClass::Unknown,
        other => {
            return Err(StreamCertError::Malformed(format!(
                "access class {other:?} at {pc:#x}"
            )))
        }
    };
    Ok(StreamAccess {
        pc,
        kind,
        width,
        class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamingCert {
        StreamingCert {
            version: STREAM_CERT_VERSION,
            workload: "crc32".into(),
            entry_pc: 0x40_0010,
            len: 11,
            accesses: vec![
                StreamAccess {
                    pc: 0x40_0010,
                    kind: StreamAccessKind::Load,
                    width: 1,
                    class: StreamClass::Affine { stride: 1 },
                },
                StreamAccess {
                    pc: 0x40_0024,
                    kind: StreamAccessKind::Load,
                    width: 4,
                    class: StreamClass::Unknown,
                },
            ],
            burst: 16,
            trip_bound: Some(256),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let cert = sample();
        let line = cert.to_json();
        let back = StreamingCert::parse_json(&line).expect("parses");
        assert_eq!(back, cert);
    }

    #[test]
    fn negative_stride_round_trips() {
        let mut cert = sample();
        cert.accesses[0].class = StreamClass::Affine { stride: -4 };
        cert.accesses[0].width = 4;
        let back = StreamingCert::parse_json(&cert.to_json()).expect("parses");
        assert_eq!(back.accesses[0].class, StreamClass::Affine { stride: -4 });
    }

    #[test]
    fn byte_flip_is_rejected() {
        let line = sample().to_json();
        // Flip one digit inside the entry_pc field; the payload changes
        // but the embedded checksum does not.
        let flipped = line.replacen("\"entry_pc\":4194320", "\"entry_pc\":4194324", 1);
        assert_ne!(flipped, line);
        match StreamingCert::parse_json(&flipped) {
            Err(StreamCertError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut cert = sample();
        cert.version = STREAM_CERT_VERSION + 1;
        // Re-checksummed under the new version: still rejected, by skew.
        match StreamingCert::parse_json(&cert.to_json()) {
            Err(StreamCertError::VersionSkew { found }) => {
                assert_eq!(found, STREAM_CERT_VERSION + 1);
            }
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn verify_accepts_wellformed() {
        assert!(verify_cert(&sample()).is_empty());
    }

    #[test]
    fn verify_rejects_unknown_store() {
        let mut cert = sample();
        cert.accesses[1].kind = StreamAccessKind::Store;
        let violations = verify_cert(&cert);
        assert!(violations
            .iter()
            .any(|v| matches!(v, StreamCertViolation::UnknownStore { pc: 0x40_0024 })));
    }

    #[test]
    fn verify_rejects_unknown_load_alongside_store() {
        let mut cert = sample();
        cert.accesses[0].kind = StreamAccessKind::Store;
        cert.accesses[0].class = StreamClass::Affine { stride: 4 };
        let violations = verify_cert(&cert);
        assert!(violations
            .iter()
            .any(|v| matches!(v, StreamCertViolation::UnknownWithStore { pc: 0x40_0024 })));
    }

    #[test]
    fn verify_rejects_burst_over_trip_bound() {
        let mut cert = sample();
        cert.trip_bound = Some(4);
        let violations = verify_cert(&cert);
        assert!(violations
            .iter()
            .any(|v| matches!(v, StreamCertViolation::BadBurst { burst: 16 })));
    }

    #[test]
    fn verify_rejects_out_of_region_access() {
        let mut cert = sample();
        cert.accesses[1].pc = cert.entry_pc + cert.len * 4;
        let violations = verify_cert(&cert);
        assert!(violations
            .iter()
            .any(|v| matches!(v, StreamCertViolation::AccessOutsideRegion { .. })));
    }

    #[test]
    fn contains_covers_region_exactly() {
        let cert = sample();
        assert!(cert.contains(cert.entry_pc));
        assert!(cert.contains(cert.entry_pc + 4 * (cert.len - 1)));
        assert!(!cert.contains(cert.entry_pc + 4 * cert.len));
        assert!(!cert.contains(cert.entry_pc - 4));
    }
}
