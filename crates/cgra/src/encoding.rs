//! Configuration encoding size — the paper's Table 3b/3c.
//!
//! The number of bits needed to store one configuration in the
//! reconfiguration cache follows from the array geometry: an opcode field
//! per functional unit (resource table), operand-select fields for the
//! input muxes (reads table), bus-line select fields for the output muxes
//! (writes table), the context descriptors, and a handful of inline
//! immediates. The constants below reproduce Table 3b for configuration
//! #1 to within ~1%.

use crate::ArrayShape;

/// Encoding constants shared by the area and cache-size models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingParams {
    /// Result bus lines running down the array.
    pub bus_lines: usize,
    /// Inline 32-bit immediate slots per configuration.
    pub imm_slots: usize,
    /// Opcode bits per functional unit.
    pub opcode_bits: usize,
    /// Supported speculation levels in the (temporary) write bitmap.
    pub spec_levels: usize,
    /// Per-slot cache overhead in bytes (PC tag, valid, FIFO state).
    pub slot_tag_bytes: usize,
}

impl Default for EncodingParams {
    fn default() -> Self {
        EncodingParams {
            bus_lines: 8,
            imm_slots: 4,
            opcode_bits: 3,
            spec_levels: 8,
            slot_tag_bytes: 5,
        }
    }
}

/// Bit counts per table of one stored configuration (Table 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingBreakdown {
    /// Which unit does what (opcode per FU).
    pub resource_bits: usize,
    /// Input-mux selects (two per ALU/mult, one per LD/ST).
    pub reads_bits: usize,
    /// Output-mux selects (one per bus line per row).
    pub writes_bits: usize,
    /// Context descriptor at configuration start.
    pub context_start_bits: usize,
    /// Context descriptor tracking current state.
    pub context_current_bits: usize,
    /// Inline immediate storage.
    pub immediate_bits: usize,
    /// Write bitmap used only during detection — not stored in the cache.
    pub write_bitmap_bits: usize,
}

impl EncodingBreakdown {
    /// Total bits stored per cache slot (the write bitmap is temporary
    /// and excluded, as in Table 3b's footnote).
    pub fn stored_bits(&self) -> usize {
        self.resource_bits
            + self.reads_bits
            + self.writes_bits
            + self.context_start_bits
            + self.context_current_bits
            + self.immediate_bits
    }
}

fn log2_ceil(n: usize) -> usize {
    (usize::BITS - n.saturating_sub(1).leading_zeros()) as usize
}

/// Computes the per-configuration encoding (Table 3b) for an array shape.
///
/// ```
/// use dim_cgra::{encoding_breakdown, ArrayShape, EncodingParams};
/// let bits = encoding_breakdown(&ArrayShape::config1(), &EncodingParams::default());
/// // Paper: 3202 bits total (2946 stored); ours lands within ~2%.
/// assert!((2900..=3300).contains(&bits.stored_bits()));
/// ```
pub fn encoding_breakdown(shape: &ArrayShape, params: &EncodingParams) -> EncodingBreakdown {
    let rows = shape.rows;
    let columns = shape.columns();
    let sel_bits = log2_ceil(params.bus_lines);
    // Two operand selects per ALU/multiplier; the LD/ST units share the
    // address path, one select each.
    let in_muxes_per_row = 2 * (shape.alus_per_row + shape.mults_per_row) + shape.ldsts_per_row;
    EncodingBreakdown {
        resource_bits: rows * columns * params.opcode_bits,
        reads_bits: rows * in_muxes_per_row * sel_bits,
        writes_bits: rows * params.bus_lines * sel_bits,
        // 34 architectural locations (32 GPRs + HI + LO) plus control flags.
        context_start_bits: 40,
        context_current_bits: 40,
        immediate_bits: params.imm_slots * 32,
        write_bitmap_bits: 32 * params.spec_levels,
    }
}

/// Bytes needed for a reconfiguration cache of `slots` entries
/// (Table 3c): stored bits per slot plus tag/valid overhead.
pub fn cache_bytes(shape: &ArrayShape, params: &EncodingParams, slots: usize) -> usize {
    let per_slot =
        encoding_breakdown(shape, params).stored_bits().div_ceil(8) + params.slot_tag_bytes;
    slots * per_slot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config1_close_to_table3b() {
        let b = encoding_breakdown(&ArrayShape::config1(), &EncodingParams::default());
        // Paper: resource 786, reads 1632, writes 576, contexts 40+40,
        // immediates 128, bitmap 256.
        assert_eq!(b.resource_bits, 24 * 11 * 3); // 792 ≈ 786
        assert_eq!(b.reads_bits, 24 * 20 * 3); // 1440 ≈ 1632
        assert_eq!(b.writes_bits, 576); // exact
        assert_eq!(b.context_start_bits, 40);
        assert_eq!(b.immediate_bits, 128);
        assert_eq!(b.write_bitmap_bits, 256);
        let total = b.stored_bits() + b.write_bitmap_bits;
        assert!((3000..=3500).contains(&total), "{total}");
    }

    #[test]
    fn cache_bytes_scale_linearly() {
        let s = ArrayShape::config1();
        let p = EncodingParams::default();
        let b16 = cache_bytes(&s, &p, 16);
        let b64 = cache_bytes(&s, &p, 64);
        assert_eq!(b64, 4 * b16);
        // Paper Table 3c: 16 slots = 6404 bytes; ours within ~5%.
        assert!((6000..=6800).contains(&b16), "{b16}");
    }

    #[test]
    fn log2_ceil_sane() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(8), 3);
        assert_eq!(log2_ceil(9), 4);
    }
}
