//! ASCII rendering of a configuration's occupancy on the array — for the
//! `inspect_translation` example, the `dim accel --dump-configs` CLI flag
//! and debugging sessions.

use crate::Configuration;
use dim_mips::FuClass;
use std::fmt::Write as _;

/// Renders the configuration as a row-by-row occupancy grid.
///
/// Each row prints its ALU, multiplier and LD/ST groups; occupied slots
/// show a class letter (`a`/`m`/`l`, with the speculation depth for
/// depth > 0), free slots show `·`. Rows are truncated after the last
/// occupied one.
///
/// ```
/// use dim_cgra::{render_occupancy, ArrayShape, Configuration};
/// use dim_mips::{AluOp, Instruction, Reg};
/// let mut c = Configuration::new(0, ArrayShape::config1());
/// let add = Instruction::Alu { op: AluOp::Addu, rd: Reg::T0, rs: Reg::A0, rt: Reg::A1 };
/// c.place(0, add, 0, 0)?;
/// let grid = render_occupancy(&c);
/// assert!(grid.contains("row  0"));
/// assert!(grid.contains('a'));
/// # Ok::<(), dim_cgra::PlaceError>(())
/// ```
pub fn render_occupancy(config: &Configuration) -> String {
    let shape = *config.shape();
    let rows = config.rows_used();
    // Cap the per-group width so an "infinite" shape stays printable.
    let cap = |n: usize| n.min(16);
    let alus = cap(shape.alus_per_row);
    let mults = cap(shape.mults_per_row);
    let ldsts = cap(shape.ldsts_per_row);

    let mut grid: Vec<(Vec<char>, Vec<char>, Vec<char>)> = (0..rows)
        .map(|_| (vec!['·'; alus], vec!['·'; mults], vec!['·'; ldsts]))
        .collect();
    for op in config.ops() {
        let row = &mut grid[op.row as usize];
        let (cells, letter) = match op.class {
            FuClass::Alu => (&mut row.0, 'a'),
            FuClass::Branch => (&mut row.0, 'b'),
            FuClass::Multiplier => (&mut row.1, 'm'),
            FuClass::LoadStore => (&mut row.2, 'l'),
            FuClass::Unsupported => continue,
        };
        let col = op.col as usize;
        if col < cells.len() {
            cells[col] = if op.depth == 0 {
                letter
            } else {
                // Show the speculation depth for speculative ops.
                char::from_digit(op.depth as u32, 10).unwrap_or('?')
            };
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "configuration @ {:#010x}: {} ops over {} rows ({} live-ins, {} write-backs)",
        config.entry_pc,
        config.instruction_count(),
        rows,
        config.live_in_count(),
        config.writeback_count(),
    );
    for (r, (a, m, l)) in grid.iter().enumerate() {
        let _ = writeln!(
            out,
            "  row {r:>2}  alu[{}]  mul[{}]  mem[{}]",
            a.iter().collect::<String>(),
            m.iter().collect::<String>(),
            l.iter().collect::<String>(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayShape;
    use dim_mips::{AluOp, Instruction, MemWidth, Reg};

    fn add(rd: Reg, rs: Reg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt: Reg::A1,
        }
    }

    #[test]
    fn renders_mixed_rows_with_depths() {
        let mut c = Configuration::new(0x400000, ArrayShape::config1());
        c.place(0x400000, add(Reg::T0, Reg::A0), 0, 0).unwrap();
        c.place(
            0x400004,
            Instruction::Load {
                width: MemWidth::Word,
                signed: false,
                rt: Reg::T1,
                base: Reg::T0,
                offset: 0,
            },
            0,
            1,
        )
        .unwrap();
        c.place(0x400008, add(Reg::T2, Reg::T1), 1, 2).unwrap();
        let s = render_occupancy(&c);
        assert!(s.contains("row  0  alu[a·······]"));
        assert!(s.contains("mem[l·]"), "{s}");
        assert!(s.contains("alu[1·······]"), "depth digit expected: {s}");
        assert_eq!(s.lines().count(), 4); // header + 3 rows
    }

    #[test]
    fn infinite_shape_stays_printable() {
        let mut c = Configuration::new(0, ArrayShape::infinite());
        c.place(0, add(Reg::T0, Reg::A0), 0, 0).unwrap();
        let s = render_occupancy(&c);
        assert!(s.lines().count() <= 2 + 1);
        assert!(s.len() < 400);
    }
}
