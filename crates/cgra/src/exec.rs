//! Functional dataflow execution of a configuration from its *placement*.
//!
//! The coupled system (`dim-core`) replays covered instructions in
//! program order, which is trivially correct; rows there only drive the
//! cycle model. This module is the other half of the story: it executes
//! a configuration the way the hardware would — level by level, operands
//! bound through renamed value versions (the paper's bus lines), memory
//! ports issuing in program order within a row, speculative write-backs
//! and stores gated by their segment's branch. Equivalence between the
//! two executions is what proves the placement machinery correct, and is
//! enforced by property tests.

use crate::Configuration;
use dim_mips::{DataLoc, Instruction, MemWidth};
use std::collections::HashMap;
use std::fmt;

/// Byte-addressable memory as seen by the array's LD/ST units.
pub trait ExecMemory {
    /// Reads one byte.
    fn read_u8(&self, addr: u32) -> u8;
    /// Writes one byte.
    fn write_u8(&mut self, addr: u32, value: u8);
}

impl ExecMemory for HashMap<u32, u8> {
    fn read_u8(&self, addr: u32) -> u8 {
        *self.get(&addr).unwrap_or(&0)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        self.insert(addr, value);
    }
}

/// Architectural context at configuration entry: the values fetched from
/// the register bank during reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryContext {
    /// General-purpose registers.
    pub regs: [u32; 32],
    /// HI special register.
    pub hi: u32,
    /// LO special register.
    pub lo: u32,
}

impl EntryContext {
    /// Reads one architectural location.
    pub fn read(&self, loc: DataLoc) -> u32 {
        match loc {
            DataLoc::Gpr(r) => self.regs[r.index()],
            DataLoc::Hi => self.hi,
            DataLoc::Lo => self.lo,
        }
    }

    /// Writes one architectural location (`$zero` writes are dropped).
    pub fn write(&mut self, loc: DataLoc, value: u32) {
        match loc {
            DataLoc::Gpr(r) => {
                if !r.is_zero() {
                    self.regs[r.index()] = value;
                }
            }
            DataLoc::Hi => self.hi = value,
            DataLoc::Lo => self.lo = value,
        }
    }
}

/// Errors from dataflow execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// A halfword/word access was not naturally aligned.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Required alignment.
        width: u32,
    },
    /// An op class that can never be placed appeared in the config.
    UnsupportedOp,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Misaligned { addr, width } => {
                write!(f, "unaligned {width}-byte array access at {addr:#010x}")
            }
            ExecError::UnsupportedOp => write!(f, "unsupported operation in configuration"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a dataflow execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowOutcome {
    /// Deepest segment whose ops were architecturally committed.
    pub executed_depth: u8,
    /// Whether a speculated branch resolved against its prediction.
    pub misspeculated: bool,
    /// Where execution continues.
    pub exit_pc: u32,
}

/// One op's bound dataflow operands (value-version indices).
/// `None` stands for the hard-wired `$zero` (reads as 0, writes vanish).
struct BoundOp {
    /// Index into `Configuration::ops`.
    index: usize,
    srcs: [Option<usize>; 2],
    dsts: [Option<usize>; 2],
}

/// The (up to two) source locations of an instruction, in evaluation
/// order, and its (up to two) destinations. `None` encodes `$zero`.
fn operand_locs(inst: &Instruction) -> ([Option<DataLoc>; 2], [Option<DataLoc>; 2]) {
    use Instruction::*;
    let gpr = |r: dim_mips::Reg| {
        if r.is_zero() {
            None
        } else {
            Some(DataLoc::Gpr(r))
        }
    };
    match *inst {
        Alu { rd, rs, rt, .. } => ([gpr(rs), gpr(rt)], [gpr(rd), None]),
        AluImm { rt, rs, .. } => ([gpr(rs), None], [gpr(rt), None]),
        Shift { rd, rt, .. } => ([gpr(rt), None], [gpr(rd), None]),
        ShiftVar { rd, rt, rs, .. } => ([gpr(rt), gpr(rs)], [gpr(rd), None]),
        Lui { rt, .. } => ([None, None], [gpr(rt), None]),
        MulDiv { rs, rt, .. } => ([gpr(rs), gpr(rt)], [Some(DataLoc::Hi), Some(DataLoc::Lo)]),
        Mfhi { rd } => ([Some(DataLoc::Hi), None], [gpr(rd), None]),
        Mflo { rd } => ([Some(DataLoc::Lo), None], [gpr(rd), None]),
        Mthi { rs } => ([gpr(rs), None], [Some(DataLoc::Hi), None]),
        Mtlo { rs } => ([gpr(rs), None], [Some(DataLoc::Lo), None]),
        Load { rt, base, .. } => ([gpr(base), None], [gpr(rt), None]),
        Store { rt, base, .. } => ([gpr(rt), gpr(base)], [None, None]),
        Branch { rs, rt, cond, .. } => {
            let b = if cond.uses_rt() { gpr(rt) } else { None };
            ([gpr(rs), b], [None, None])
        }
        _ => ([None, None], [None, None]),
    }
}

/// Executes `config` against `ctx`/`mem` exactly as the array would.
///
/// `ctx` is updated with the configuration's gated write-backs and `mem`
/// with its gated stores; the outcome reports the committed speculation
/// depth and exit PC.
///
/// # Errors
///
/// [`ExecError::Misaligned`] for unaligned LD/ST addresses.
pub fn execute_dataflow(
    config: &Configuration,
    ctx: &mut EntryContext,
    mem: &mut dyn ExecMemory,
) -> Result<DataflowOutcome, ExecError> {
    let ops = config.ops();

    // --- Pass 1 (program order): bind operands to value versions -------
    // Version 0..34 are the entry-context locations; each write mints a
    // fresh version. This is the renaming the paper's bus lines provide.
    let mut current: [usize; DataLoc::COUNT] = std::array::from_fn(|i| i);
    let mut n_values = DataLoc::COUNT;
    let mut bound: Vec<BoundOp> = Vec::with_capacity(ops.len());
    // Program-order version of every location at the END of each segment
    // depth, for gated write-back.
    let mut final_version_at_depth: Vec<HashMap<DataLoc, usize>> = Vec::new();
    let mut cur_depth = 0u8;
    for (index, op) in ops.iter().enumerate() {
        if op.depth != cur_depth {
            final_version_at_depth.push(snapshot(&current));
            cur_depth = op.depth;
        }
        let (src_locs, dst_locs) = operand_locs(&op.inst);
        let srcs = src_locs.map(|l| l.map(|loc| current[loc.dense_index()]));
        let dsts = dst_locs.map(|l| {
            l.map(|loc| {
                let v = n_values;
                n_values += 1;
                current[loc.dense_index()] = v;
                v
            })
        });
        bound.push(BoundOp { index, srcs, dsts });
    }
    final_version_at_depth.push(snapshot(&current));
    // A trailing segment may be empty (e.g. a region finalized right
    // after a speculated branch opened the next block); its end-of-depth
    // context equals the previous depth's.
    while final_version_at_depth.len() <= config.max_depth() as usize {
        let last = final_version_at_depth
            .last()
            .expect("at least one snapshot")
            .clone();
        final_version_at_depth.push(last);
    }

    // --- Pass 2 (row order): evaluate --------------------------------
    let mut values: Vec<u32> = vec![0; n_values];
    for (i, loc_val) in values.iter_mut().take(DataLoc::COUNT).enumerate() {
        *loc_val = read_dense(ctx, i);
    }
    // Stores are buffered byte-wise with their depth: loads forward from
    // the buffer (program order among memory ops is preserved by the
    // non-decreasing-row rule + in-row port order, which matches our
    // (row, program-index) evaluation order).
    let mut store_shadow: HashMap<u32, (u8, u8)> = HashMap::new(); // addr -> (byte, depth)
    let mut eval_order: Vec<usize> = (0..bound.len()).collect();
    eval_order.sort_by_key(|&bi| (ops[bound[bi].index].row, bound[bi].index));

    // Branch outcomes keyed by *op index*: a loop merged across
    // iterations contains the same static branch once per segment, so a
    // PC key would alias them.
    let mut branch_outcomes: Vec<Option<bool>> = vec![None; ops.len()];
    for &bi in &eval_order {
        let b = &bound[bi];
        let op = &ops[b.index];
        let src = |k: usize| b.srcs[k].map_or(0, |v| values[v]);
        let mut out0 = None;
        let mut out1 = None;
        use Instruction::*;
        match op.inst {
            Alu { op: alu, .. } => out0 = Some(alu.eval(src(0), src(1))),
            AluImm { op: alu, imm, .. } => out0 = Some(alu.eval(src(0), imm)),
            Shift { op: sh, shamt, .. } => out0 = Some(sh.eval(src(0), shamt as u32)),
            ShiftVar { op: sh, .. } => out0 = Some(sh.eval(src(0), src(1))),
            Lui { imm, .. } => out0 = Some((imm as u32) << 16),
            MulDiv { op: md, .. } => {
                let (hi, lo) = md.eval(src(0), src(1));
                out0 = Some(hi);
                out1 = Some(lo);
            }
            Mfhi { .. } | Mflo { .. } | Mthi { .. } | Mtlo { .. } => out0 = Some(src(0)),
            Load {
                width,
                signed,
                offset,
                ..
            } => {
                let addr = src(0).wrapping_add(offset as i32 as u32);
                out0 = Some(load_value(mem, &store_shadow, addr, width, signed)?);
            }
            Store { width, offset, .. } => {
                let addr = src(1).wrapping_add(offset as i32 as u32);
                store_value(&mut store_shadow, addr, src(0), width, op.depth)?;
            }
            Branch { cond, .. } => {
                branch_outcomes[b.index] = Some(cond.eval(src(0), src(1)));
            }
            _ => return Err(ExecError::UnsupportedOp),
        }
        if let (Some(v), Some(slot)) = (out0, b.dsts[0]) {
            values[slot] = v;
        }
        if let (Some(v), Some(slot)) = (out1, b.dsts[1]) {
            values[slot] = v;
        }
    }

    // --- Resolve speculation -----------------------------------------
    let mut executed_depth = 0u8;
    let mut misspeculated = false;
    let mut exit_pc = config.entry_pc;
    for segment in config.segments() {
        executed_depth = segment.depth;
        match segment.branch {
            Some(branch) => {
                // The branch is the last op of its segment by construction.
                let branch_index = segment.start + segment.len - 1;
                let taken = branch_outcomes[branch_index]
                    .expect("segment-ending op is an evaluated branch");
                if taken == branch.predicted_taken {
                    exit_pc = branch.predicted_pc();
                } else {
                    exit_pc = branch.mispredicted_pc();
                    misspeculated = true;
                    break;
                }
            }
            None => exit_pc = segment.exit_pc,
        }
    }

    // --- Gated commit --------------------------------------------------
    for (loc, depth) in config.writebacks() {
        if depth <= executed_depth {
            let version = final_version_at_depth[executed_depth as usize][&loc];
            ctx.write(loc, values[version]);
        }
    }
    let mut committed: Vec<(u32, u8)> = store_shadow
        .into_iter()
        .filter(|&(_, (_, d))| d <= executed_depth)
        .map(|(addr, (byte, _))| (addr, byte))
        .collect();
    committed.sort_unstable();
    for (addr, byte) in committed {
        mem.write_u8(addr, byte);
    }

    Ok(DataflowOutcome {
        executed_depth,
        misspeculated,
        exit_pc,
    })
}

fn snapshot(current: &[usize; DataLoc::COUNT]) -> HashMap<DataLoc, usize> {
    let mut out = HashMap::new();
    for r in dim_mips::Reg::all() {
        out.insert(DataLoc::Gpr(r), current[r.index()]);
    }
    out.insert(DataLoc::Hi, current[DataLoc::Hi.dense_index()]);
    out.insert(DataLoc::Lo, current[DataLoc::Lo.dense_index()]);
    out
}

fn read_dense(ctx: &EntryContext, dense: usize) -> u32 {
    if dense < 32 {
        ctx.regs[dense]
    } else if dense == DataLoc::Hi.dense_index() {
        ctx.hi
    } else {
        ctx.lo
    }
}

fn check_align(addr: u32, width: u32) -> Result<(), ExecError> {
    if !addr.is_multiple_of(width) {
        Err(ExecError::Misaligned { addr, width })
    } else {
        Ok(())
    }
}

fn shadow_read(mem: &dyn ExecMemory, shadow: &HashMap<u32, (u8, u8)>, addr: u32) -> u8 {
    shadow
        .get(&addr)
        .map_or_else(|| mem.read_u8(addr), |&(b, _)| b)
}

fn load_value(
    mem: &dyn ExecMemory,
    shadow: &HashMap<u32, (u8, u8)>,
    addr: u32,
    width: MemWidth,
    signed: bool,
) -> Result<u32, ExecError> {
    check_align(addr, width.bytes())?;
    let mut bytes = [0u8; 4];
    for (i, byte) in bytes.iter_mut().take(width.bytes() as usize).enumerate() {
        *byte = shadow_read(mem, shadow, addr + i as u32);
    }
    Ok(match (width, signed) {
        (MemWidth::Byte, true) => bytes[0] as i8 as i32 as u32,
        (MemWidth::Byte, false) => bytes[0] as u32,
        (MemWidth::Half, true) => i16::from_le_bytes([bytes[0], bytes[1]]) as i32 as u32,
        (MemWidth::Half, false) => u16::from_le_bytes([bytes[0], bytes[1]]) as u32,
        (MemWidth::Word, _) => u32::from_le_bytes(bytes),
    })
}

fn store_value(
    shadow: &mut HashMap<u32, (u8, u8)>,
    addr: u32,
    value: u32,
    width: MemWidth,
    depth: u8,
) -> Result<(), ExecError> {
    check_align(addr, width.bytes())?;
    for (i, byte) in value
        .to_le_bytes()
        .iter()
        .take(width.bytes() as usize)
        .enumerate()
    {
        shadow.insert(addr + i as u32, (*byte, depth));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayShape;
    use dim_mips::{AluOp, Reg};

    fn ctx() -> EntryContext {
        let mut c = EntryContext {
            regs: [0; 32],
            hi: 0,
            lo: 0,
        };
        c.regs[Reg::A0.index()] = 10;
        c.regs[Reg::A1.index()] = 3;
        c
    }

    #[test]
    fn war_hazard_resolved_by_renaming() {
        // i1 (row 1, reads A0 late): t0 = a0 + a1
        // i2 (row 0, writes A0 early): a0 = a1 + a1
        // Row order runs i2 before i1, but renaming must give i1 the OLD
        // a0 (10), not the new one (6).
        let mut config = Configuration::new(0x100, ArrayShape::config1());
        // Force i1 into row 1 via min_row; the translator would do this
        // only for RAW, so we emulate a pathological placement directly.
        config
            .place(
                0x100,
                Instruction::Alu {
                    op: AluOp::Addu,
                    rd: Reg::T0,
                    rs: Reg::A0,
                    rt: Reg::A1,
                },
                0,
                1,
            )
            .unwrap();
        config
            .place(
                0x104,
                Instruction::Alu {
                    op: AluOp::Addu,
                    rd: Reg::A0,
                    rs: Reg::A1,
                    rt: Reg::A1,
                },
                0,
                0,
            )
            .unwrap();
        config.note_writeback(DataLoc::Gpr(Reg::T0), 0);
        config.note_writeback(DataLoc::Gpr(Reg::A0), 0);
        config.finish_segment(0, None, 0x108);

        let mut c = ctx();
        let mut mem: HashMap<u32, u8> = HashMap::new();
        let out = execute_dataflow(&config, &mut c, &mut mem).unwrap();
        assert_eq!(out.exit_pc, 0x108);
        assert_eq!(c.regs[Reg::T0.index()], 13, "i1 must read the pre-i2 $a0");
        assert_eq!(c.regs[Reg::A0.index()], 6);
    }

    #[test]
    fn store_load_forwarding_and_alignment() {
        let mut config = Configuration::new(0x200, ArrayShape::config1());
        // sw a0, 0(a1-as-base)... use a0 as value, a1 as base (=3? must
        // align; set a1 to 4 below).
        config
            .place(
                0x200,
                Instruction::Store {
                    width: MemWidth::Word,
                    rt: Reg::A0,
                    base: Reg::A1,
                    offset: 0,
                },
                0,
                0,
            )
            .unwrap();
        config
            .place(
                0x204,
                Instruction::Load {
                    width: MemWidth::Byte,
                    signed: false,
                    rt: Reg::T1,
                    base: Reg::A1,
                    offset: 0,
                },
                0,
                0,
            )
            .unwrap();
        config.note_writeback(DataLoc::Gpr(Reg::T1), 0);
        config.finish_segment(0, None, 0x208);

        let mut c = ctx();
        c.regs[Reg::A1.index()] = 4;
        let mut mem: HashMap<u32, u8> = HashMap::new();
        execute_dataflow(&config, &mut c, &mut mem).unwrap();
        assert_eq!(
            c.regs[Reg::T1.index()],
            10,
            "load must see the in-config store"
        );
        assert_eq!(mem.read_u8(4), 10, "committed store visible in memory");

        // Misaligned store errors.
        let mut c2 = ctx();
        c2.regs[Reg::A1.index()] = 5;
        let mut mem2: HashMap<u32, u8> = HashMap::new();
        assert_eq!(
            execute_dataflow(&config, &mut c2, &mut mem2),
            Err(ExecError::Misaligned { addr: 5, width: 4 })
        );
    }

    #[test]
    fn speculative_stores_are_squashed_on_misspeculation() {
        use dim_mips::BranchCond;
        let mut config = Configuration::new(0x300, ArrayShape::config1());
        // Segment 0: t0 = a0 + a1 (= 18 with the a1 = 8 below); branch
        // beq t0, a0 predicted taken resolves not-taken (18 != 10), so
        // segment 1 is squashed.
        config
            .place(
                0x300,
                Instruction::Alu {
                    op: AluOp::Addu,
                    rd: Reg::T0,
                    rs: Reg::A0,
                    rt: Reg::A1,
                },
                0,
                0,
            )
            .unwrap();
        let branch = Instruction::Branch {
            cond: BranchCond::Eq,
            rs: Reg::T0,
            rt: Reg::A0,
            offset: 16,
        };
        config.place(0x304, branch, 0, 1).unwrap();
        let sb = crate::SegmentBranch {
            pc: 0x304,
            inst: branch,
            predicted_taken: true,
            taken_pc: 0x304 + 4 + 64,
            fall_pc: 0x308,
        };
        config.finish_segment(0, Some(sb), sb.predicted_pc());
        // Segment 1 (speculative): a store and a register write.
        config
            .place(
                0x348,
                Instruction::Store {
                    width: MemWidth::Word,
                    rt: Reg::A0,
                    base: Reg::A1,
                    offset: 0,
                },
                1,
                2,
            )
            .unwrap();
        config
            .place(
                0x34c,
                Instruction::Alu {
                    op: AluOp::Addu,
                    rd: Reg::S0,
                    rs: Reg::A0,
                    rt: Reg::A0,
                },
                1,
                2,
            )
            .unwrap();
        config.note_writeback(DataLoc::Gpr(Reg::T0), 0);
        config.note_writeback(DataLoc::Gpr(Reg::S0), 1);
        config.finish_segment(1, None, 0x350);

        let mut c = ctx();
        c.regs[Reg::A1.index()] = 8;
        let mut mem: HashMap<u32, u8> = HashMap::new();
        let out = execute_dataflow(&config, &mut c, &mut mem).unwrap();
        assert!(out.misspeculated);
        assert_eq!(out.executed_depth, 0);
        assert_eq!(out.exit_pc, 0x308, "fall through on mispredicted-taken");
        assert_eq!(c.regs[Reg::T0.index()], 18, "depth-0 write-back committed");
        assert_eq!(c.regs[Reg::S0.index()], 0, "depth-1 write-back squashed");
        assert_eq!(mem.read_u8(8), 0, "speculative store squashed");
    }
}
