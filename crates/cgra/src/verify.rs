//! Standalone configuration verifier: proves a [`Configuration`] is
//! executable on its array shape without running it.
//!
//! [`Configuration::validate`] is the quick structural gate the decoder
//! runs on every wire entry; this module is the deep semantic pass behind
//! `dim verify` and the debug-mode translation-commit hook. Everything is
//! re-derived from the placed ops — the shape, the segment table, the
//! declared live-in set and the declared write-back map are all checked
//! *against* the instruction window instead of being trusted.

use crate::{ArrayShape, Configuration, PlacedOp, Segment};
use dim_mips::{DataLoc, FuClass};
use std::collections::BTreeMap;
use std::fmt;

/// The class of invariant a configuration broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An op sits outside the shape: bad row, bad column, wrong or
    /// unsupported unit class.
    Bounds,
    /// An operand is read at or before the row that produces it, or
    /// memory operations are reordered against program order.
    DependencyOrder,
    /// Two results contend for the same output port: two ops assigned
    /// to one physical functional unit.
    WritePortConflict,
    /// The declared live-in set or write-back map disagrees with what
    /// the source instruction window actually reads and writes.
    WritebackMismatch,
    /// The segment table does not partition the ops, or its branch
    /// metadata contradicts the placed instructions.
    SegmentStructure,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Bounds => "bounds",
            ViolationKind::DependencyOrder => "dependency-order",
            ViolationKind::WritePortConflict => "write-port-conflict",
            ViolationKind::WritebackMismatch => "writeback-mismatch",
            ViolationKind::SegmentStructure => "segment-structure",
        };
        f.write_str(s)
    }
}

/// One broken invariant, anchored to the op that exposed it when there
/// is one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Invariant class.
    pub kind: ViolationKind,
    /// PC of the offending op, when the violation is op-local.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "[{}] at {:#x}: {}", self.kind, pc, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

fn unit_group(class: FuClass) -> Option<(usize, &'static str)> {
    match class {
        // Branches occupy ALU slots (gating compares).
        FuClass::Alu | FuClass::Branch => Some((0, "alu")),
        FuClass::Multiplier => Some((1, "mult")),
        FuClass::LoadStore => Some((2, "ldst")),
        FuClass::Unsupported => None,
    }
}

/// Verifies every invariant class over `config`, returning all broken
/// ones (empty = the configuration is provably executable on its shape).
pub fn verify_config(config: &Configuration) -> Vec<Violation> {
    let mut out = Vec::new();
    check_segments(config, &mut out);
    check_bounds(config.shape(), config.ops(), &mut out);
    check_ports(config.ops(), &mut out);
    check_dependences(config.ops(), &mut out);
    check_interface(config, &mut out);
    out
}

fn push(out: &mut Vec<Violation>, kind: ViolationKind, pc: Option<u32>, detail: String) {
    out.push(Violation { kind, pc, detail });
}

/// Segment table partitions the ops; branch metadata matches the source
/// instruction window.
fn check_segments(config: &Configuration, out: &mut Vec<Violation>) {
    use ViolationKind::SegmentStructure;
    let ops = config.ops();
    let segments = config.segments();
    if let Some(first) = ops.first() {
        if first.pc != config.entry_pc {
            push(
                out,
                SegmentStructure,
                Some(first.pc),
                format!("first op disagrees with entry pc {:#x}", config.entry_pc),
            );
        }
    }
    let mut covered = 0usize;
    let mut last_depth = 0u8;
    for (k, seg) in segments.iter().enumerate() {
        if seg.start != covered || seg.start + seg.len > ops.len() {
            push(
                out,
                SegmentStructure,
                None,
                format!(
                    "segment {k} spans ops {}..{} but {covered} are covered of {}",
                    seg.start,
                    seg.start + seg.len,
                    ops.len()
                ),
            );
            return; // Indexing below would be unreliable.
        }
        covered += seg.len;
        if k > 0 && seg.depth < last_depth {
            push(
                out,
                SegmentStructure,
                None,
                format!(
                    "segment {k} depth {} decreases below {last_depth}",
                    seg.depth
                ),
            );
        }
        last_depth = seg.depth;
        for op in config.segment_ops(seg) {
            if op.depth != seg.depth {
                push(
                    out,
                    SegmentStructure,
                    Some(op.pc),
                    format!(
                        "op depth {} inside segment of depth {}",
                        op.depth, seg.depth
                    ),
                );
            }
        }
        check_segment_exit(config, k, seg, segments.get(k + 1), out);
        if seg.branch.is_none() && k + 1 < segments.len() {
            push(
                out,
                SegmentStructure,
                None,
                format!("interior segment {k} has no terminating branch"),
            );
        }
    }
    if covered != ops.len() {
        push(
            out,
            SegmentStructure,
            None,
            format!("segments cover {covered} ops of {}", ops.len()),
        );
    }
}

/// Branch placement/metadata and exit-pc consistency for one segment.
fn check_segment_exit(
    config: &Configuration,
    k: usize,
    seg: &Segment,
    next: Option<&Segment>,
    out: &mut Vec<Violation>,
) {
    use ViolationKind::SegmentStructure;
    let ops = config.ops();
    match seg.branch {
        Some(branch) => {
            let last = if seg.len > 0 {
                ops.get(seg.start + seg.len - 1)
            } else {
                None
            };
            match last {
                Some(op) if op.pc == branch.pc && op.inst.is_branch() => {
                    if op.inst.branch_target(op.pc) != Some(branch.taken_pc) {
                        push(
                            out,
                            SegmentStructure,
                            Some(op.pc),
                            format!(
                                "branch taken pc {:#x} disagrees with the instruction",
                                branch.taken_pc
                            ),
                        );
                    }
                    if branch.fall_pc != branch.pc.wrapping_add(4) {
                        push(
                            out,
                            SegmentStructure,
                            Some(op.pc),
                            format!("branch fall-through pc {:#x} is not pc+4", branch.fall_pc),
                        );
                    }
                }
                _ => push(
                    out,
                    SegmentStructure,
                    Some(branch.pc),
                    format!("segment {k}: branch is not the last op"),
                ),
            }
            if seg.exit_pc != branch.predicted_pc() {
                push(
                    out,
                    SegmentStructure,
                    Some(branch.pc),
                    format!(
                        "segment {k} exit {:#x} is not the predicted path {:#x}",
                        seg.exit_pc,
                        branch.predicted_pc()
                    ),
                );
            }
            // The next segment continues on the predicted path.
            if let Some(next) = next {
                if next.len > 0 {
                    if let Some(op) = ops.get(next.start) {
                        if op.pc != branch.predicted_pc() {
                            push(
                                out,
                                SegmentStructure,
                                Some(op.pc),
                                format!(
                                    "segment {} does not start at the predicted path {:#x}",
                                    k + 1,
                                    branch.predicted_pc()
                                ),
                            );
                        }
                    }
                }
            }
        }
        None => {
            // A branchless segment exits sequentially after its last op.
            if seg.len > 0 {
                if let Some(op) = ops.get(seg.start + seg.len - 1) {
                    if seg.exit_pc != op.pc.wrapping_add(4) {
                        push(
                            out,
                            SegmentStructure,
                            Some(op.pc),
                            format!(
                                "segment {k} exit {:#x} is not sequential after its last op",
                                seg.exit_pc
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Every op occupies a real unit of the right class inside the shape.
fn check_bounds(shape: &ArrayShape, ops: &[PlacedOp], out: &mut Vec<Violation>) {
    use ViolationKind::Bounds;
    for op in ops {
        if op.class != op.inst.fu_class() {
            push(
                out,
                Bounds,
                Some(op.pc),
                format!(
                    "recorded class {:?} disagrees with the instruction",
                    op.class
                ),
            );
            continue;
        }
        let cap = shape.units_per_row(op.class);
        if op.class == FuClass::Unsupported || cap == 0 {
            push(
                out,
                Bounds,
                Some(op.pc),
                format!("instruction class {:?} has no unit in this shape", op.class),
            );
            continue;
        }
        if !shape.is_infinite() && op.row as usize >= shape.rows {
            push(
                out,
                Bounds,
                Some(op.pc),
                format!("row {} outside shape of {} rows", op.row, shape.rows),
            );
        }
        if op.col as usize >= cap {
            push(
                out,
                Bounds,
                Some(op.pc),
                format!(
                    "column {} outside the row's {cap} {:?} units",
                    op.col, op.class
                ),
            );
        }
    }
}

/// No two results contend for one output port: every placed op occupies
/// its own functional unit. Same-row writes to one *location* are legal
/// — the context's write-back bus takes them in program order, so the
/// later writer simply wins (the translator produces this for WAW
/// chains) — but two ops on one physical unit can never both execute.
fn check_ports(ops: &[PlacedOp], out: &mut Vec<Violation>) {
    use ViolationKind::WritePortConflict;
    // (row, unit group, col) -> pc of first occupant.
    let mut units: BTreeMap<(u32, usize, u32), u32> = BTreeMap::new();
    for op in ops {
        let Some((group, label)) = unit_group(op.class) else {
            continue; // Reported by the bounds pass.
        };
        if let Some(&prev) = units.get(&(op.row, group, op.col)) {
            push(
                out,
                WritePortConflict,
                Some(op.pc),
                format!(
                    "{label} unit {} in row {} already assigned to op at {prev:#x}",
                    op.col, op.row
                ),
            );
        } else {
            units.insert((op.row, group, op.col), op.pc);
        }
    }
}

/// Operand routing respects row order: values flow strictly downward and
/// memory operations keep program order.
fn check_dependences(ops: &[PlacedOp], out: &mut Vec<Violation>) {
    use ViolationKind::DependencyOrder;
    let mut producer_row: [Option<u32>; DataLoc::COUNT] = [None; DataLoc::COUNT];
    let mut last_mem_row: Option<u32> = None;
    for op in ops {
        for src in op.inst.reads().iter() {
            if let Some(p) = producer_row[src.dense_index()] {
                if p >= op.row {
                    push(
                        out,
                        DependencyOrder,
                        Some(op.pc),
                        format!("row {} reads {src} produced in row {p}", op.row),
                    );
                }
            }
        }
        if op.inst.is_mem() {
            if let Some(m) = last_mem_row {
                if op.row < m {
                    push(
                        out,
                        DependencyOrder,
                        Some(op.pc),
                        format!(
                            "memory op in row {} behind an earlier one in row {m}",
                            op.row
                        ),
                    );
                }
            }
            last_mem_row = Some(last_mem_row.map_or(op.row, |m| m.max(op.row)));
        }
        for dst in op.inst.writes().iter() {
            producer_row[dst.dense_index()] = Some(op.row);
        }
    }
}

/// The declared live-in set and write-back map are exactly what the
/// source instruction window reads and writes.
fn check_interface(config: &Configuration, out: &mut Vec<Violation>) {
    use ViolationKind::WritebackMismatch;
    let mut produced = [false; DataLoc::COUNT];
    let mut required_live_ins: Vec<DataLoc> = Vec::new();
    let mut required_wb: BTreeMap<DataLoc, u8> = BTreeMap::new();
    for op in config.ops() {
        for src in op.inst.reads().iter() {
            if !produced[src.dense_index()] && !required_live_ins.contains(&src) {
                required_live_ins.push(src);
            }
        }
        for dst in op.inst.writes().iter() {
            produced[dst.dense_index()] = true;
            required_wb
                .entry(dst)
                .and_modify(|d| *d = (*d).min(op.depth))
                .or_insert(op.depth);
        }
    }
    let declared_live: Vec<DataLoc> = config.live_ins().collect();
    for loc in &required_live_ins {
        if !declared_live.contains(loc) {
            push(
                out,
                WritebackMismatch,
                None,
                format!("live-in {loc} read by the window but not declared"),
            );
        }
    }
    for loc in &declared_live {
        if !required_live_ins.contains(loc) {
            push(
                out,
                WritebackMismatch,
                None,
                format!("declared live-in {loc} is never read before being produced"),
            );
        }
    }
    let declared_wb: BTreeMap<DataLoc, u8> = config.writebacks().collect();
    for (loc, depth) in &required_wb {
        match declared_wb.get(loc) {
            None => push(
                out,
                WritebackMismatch,
                None,
                format!("window writes {loc} but it is not in the write-back map"),
            ),
            Some(d) if d != depth => push(
                out,
                WritebackMismatch,
                None,
                format!("write-back {loc} pending at depth {d}, window writes it at {depth}"),
            ),
            Some(_) => {}
        }
    }
    for loc in declared_wb.keys() {
        if !required_wb.contains_key(loc) {
            push(
                out,
                WritebackMismatch,
                None,
                format!("write-back {loc} is never written by the window"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayShape;
    use dim_mips::{AluOp, BranchCond, Instruction, Reg};

    fn alu(rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt,
        }
    }

    /// A small well-formed two-segment configuration:
    ///   0x1000: addu $t0, $a0, $a1
    ///   0x1004: addu $t1, $t0, $a2
    ///   0x1008: bne  $t1, $zero, +N   (predicted taken)
    ///   taken:  addu $t2, $t1, $a3
    fn sample() -> Configuration {
        let mut c = Configuration::new(0x1000, ArrayShape::config2());
        c.place(0x1000, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0)
            .unwrap();
        c.note_live_in(DataLoc::Gpr(Reg::A0));
        c.note_live_in(DataLoc::Gpr(Reg::A1));
        c.note_writeback(DataLoc::Gpr(Reg::T0), 0);
        c.place(0x1004, alu(Reg::T1, Reg::T0, Reg::A2), 0, 1)
            .unwrap();
        c.note_live_in(DataLoc::Gpr(Reg::A2));
        c.note_writeback(DataLoc::Gpr(Reg::T1), 0);
        let branch = Instruction::Branch {
            cond: BranchCond::Ne,
            rs: Reg::T1,
            rt: Reg::ZERO,
            offset: 3,
        };
        c.place(0x1008, branch, 0, 2).unwrap();
        let taken_pc = branch.branch_target(0x1008).unwrap();
        c.finish_segment(
            0,
            Some(crate::SegmentBranch {
                pc: 0x1008,
                inst: branch,
                predicted_taken: true,
                taken_pc,
                fall_pc: 0x100c,
            }),
            taken_pc,
        );
        c.place(taken_pc, alu(Reg::T2, Reg::T1, Reg::A3), 1, 3)
            .unwrap();
        c.note_live_in(DataLoc::Gpr(Reg::A3));
        c.note_writeback(DataLoc::Gpr(Reg::T2), 1);
        c.finish_segment(1, None, taken_pc + 4);
        c
    }

    #[test]
    fn well_formed_config_passes() {
        let c = sample();
        assert_eq!(verify_config(&c), vec![]);
    }

    #[test]
    fn rejects_bounds_violation() {
        let mut c = sample();
        let rows = c.shape().rows as u32;
        c.ops_mut()[1].row = rows + 7;
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::Bounds), "{kinds:?}");
    }

    #[test]
    fn rejects_column_bounds_violation() {
        let mut c = sample();
        c.ops_mut()[0].col = 10_000;
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::Bounds), "{kinds:?}");
    }

    #[test]
    fn rejects_dependency_order_violation() {
        let mut c = sample();
        // The consumer of $t0 hoisted into its producer's row.
        c.ops_mut()[1].row = 0;
        let found = verify_config(&c);
        let kinds: Vec<_> = found.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::DependencyOrder), "{kinds:?}");
    }

    #[test]
    fn rejects_write_port_conflict() {
        let mut c = sample();
        // Two ops forced onto one ALU unit of row 0.
        c.ops_mut()[1].row = 0;
        c.ops_mut()[1].col = 0;
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::WritePortConflict),
            "{kinds:?}"
        );
    }

    #[test]
    fn rejects_writeback_mismatch() {
        let mut c = sample();
        assert_eq!(c.remove_writeback(DataLoc::Gpr(Reg::T2)), Some(1));
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::WritebackMismatch),
            "{kinds:?}"
        );
    }

    #[test]
    fn rejects_missing_live_in() {
        let mut c = sample();
        assert!(c.remove_live_in(DataLoc::Gpr(Reg::A2)));
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::WritebackMismatch),
            "{kinds:?}"
        );
    }

    #[test]
    fn rejects_segment_structure_violation() {
        let mut c = sample();
        // The deeper segment claims depth 0 for a depth-1 op.
        c.ops_mut()[3].depth = 0;
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::SegmentStructure),
            "{kinds:?}"
        );
    }

    #[test]
    fn rejects_retargeted_branch_metadata() {
        let mut c = sample();
        // Rewrite the branch op so its encoded target no longer matches
        // the segment's recorded taken pc.
        if let Instruction::Branch { offset, .. } = &mut c.ops_mut()[2].inst {
            *offset += 1;
        } else {
            panic!("op 2 is the branch");
        }
        let kinds: Vec<_> = verify_config(&c).into_iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::SegmentStructure),
            "{kinds:?}"
        );
    }

    #[test]
    fn violation_display_carries_pc() {
        let mut c = sample();
        c.ops_mut()[1].row = 0;
        let v = verify_config(&c)
            .into_iter()
            .find(|v| v.kind == ViolationKind::DependencyOrder)
            .unwrap();
        let text = v.to_string();
        assert!(text.contains("dependency-order"), "{text}");
        assert!(text.contains("0x1004"), "{text}");
    }
}
