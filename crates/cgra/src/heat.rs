//! Fabric utilization accounting ("heat").
//!
//! [`FabricHeat`] is an allocation-free-in-steady-state accumulator of
//! per-row and per-unit-class activity across array invocations. It is
//! fed once per invocation by [`FabricHeat::record`], which derives a
//! [`FabricSample`] from the same row state and timing queries the
//! cycle model charges for, so the accounting reconciles *exactly* with
//! `exec_cycles`:
//!
//! **Conservation law.** For every invocation executed to `upto_depth`:
//!
//! * `sample.exec_cycles == config.exec_cycles(timing, upto_depth)` —
//!   the per-row thirds summed here round to the cycles the system
//!   charges, so across a run
//!   `heat.exec_cycles + heat.residual_cycles` equals the system's
//!   array-execution attribution exactly.
//! * `busy_thirds[c] <= capacity_thirds[c]` for every unit class on
//!   finite shapes: a row's occupied units can never exceed the row's
//!   physical units, and both sides integrate over the same row
//!   windows.
//!
//! Row-window model: row `r` of a traversal contributes a window of
//! `timing.row_thirds(kind(r))` thirds (zero for empty rows). A unit in
//! row `r` is *busy* for that window when occupied, and *available* for
//! that window always; units outside the traversed span contribute
//! nothing. Fabric utilization is `Σ busy / Σ capacity` over all
//! classes.

use dim_mips::FuClass;

use crate::config::Configuration;
use crate::timing::ArrayTiming;

/// Number of unit classes tracked ([`UNIT_CLASS_NAMES`]).
pub const UNIT_CLASSES: usize = 3;

/// Dense names for the tracked unit classes, indexed by
/// [`unit_class_index`].
pub const UNIT_CLASS_NAMES: [&str; UNIT_CLASSES] = ["alu", "mult", "ldst"];

/// Rows tracked individually; activity in deeper rows (no Table 1 shape
/// exceeds 150) folds into one overflow bucket so the accumulator stays
/// bounded.
pub const FABRIC_TRACKED_ROWS: usize = 256;

/// Dense index of a functional-unit class, `None` for
/// [`FuClass::Unsupported`] (which never appears in a placed op).
pub fn unit_class_index(class: FuClass) -> Option<usize> {
    match class {
        FuClass::Alu | FuClass::Branch => Some(0),
        FuClass::Multiplier => Some(1),
        FuClass::LoadStore => Some(2),
        FuClass::Unsupported => None,
    }
}

/// Accumulated activity of one fabric row across invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowHeat {
    /// Invocations whose traversed span included this row.
    pub traversals: u64,
    /// Σ row-window thirds over those traversals (0 while the row was
    /// empty).
    pub active_thirds: u64,
    /// Σ occupied-unit × window thirds per class.
    pub busy_thirds: [u64; UNIT_CLASSES],
    /// Operations issued (confirmed, depth ≤ executed depth) per class.
    pub issued: [u64; UNIT_CLASSES],
    /// Operations configured but squashed by misspeculation.
    pub squashed: u64,
}

impl RowHeat {
    fn merge(&mut self, other: &RowHeat) {
        self.traversals = self.traversals.saturating_add(other.traversals);
        self.active_thirds = self.active_thirds.saturating_add(other.active_thirds);
        for c in 0..UNIT_CLASSES {
            self.busy_thirds[c] = self.busy_thirds[c].saturating_add(other.busy_thirds[c]);
            self.issued[c] = self.issued[c].saturating_add(other.issued[c]);
        }
        self.squashed = self.squashed.saturating_add(other.squashed);
    }
}

/// One invocation's worth of fabric activity, as recorded into a
/// [`FabricHeat`] — also the payload of the schema-v4 `fabric` trace
/// record (`dim_obs::FabricUtil`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricSample {
    /// Rows traversed (`last_row + 1`; 0 when nothing executed).
    pub rows: u32,
    /// Σ row-window thirds over the traversed span.
    pub exec_thirds: u64,
    /// `exec_thirds` rounded up to cycles — equals
    /// `Configuration::exec_cycles` for the same depth by construction.
    pub exec_cycles: u64,
    /// Σ physical-unit × window thirds over the traversed span, all
    /// classes; 0 on infinite shapes (utilization undefined there).
    pub capacity_thirds: u64,
    /// Σ occupied-unit × window thirds per class.
    pub busy_thirds: [u64; UNIT_CLASSES],
    /// Operations confirmed (depth ≤ executed depth).
    pub issued_ops: u32,
    /// Operations configured but squashed by misspeculation.
    pub squashed_ops: u32,
    /// Array-execution cycles charged outside the row model this
    /// invocation: memory stalls + misspeculation penalty.
    pub residual_cycles: u64,
    /// Write-backs performed (depth ≤ executed depth).
    pub writeback_writes: u32,
    /// Write-back port-slots available: `rf_write_ports × (exec + tail)`
    /// cycles. `writes ≤ slots` always, so saturation stays in `[0, 1]`.
    pub writeback_slots: u64,
}

/// Run-level fabric utilization accumulator, owned by the coupled
/// system next to `DimStats`. All counters saturate; `merge` combines
/// shards the same way `DimStats::merge` does for sweep aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FabricHeat {
    rows: Vec<RowHeat>,
    overflow: RowHeat,
    /// Deepest row index ever traversed (for display; may exceed the
    /// tracked range).
    pub max_row: u64,
    /// Array invocations recorded.
    pub invocations: u64,
    /// Σ per-invocation `exec_thirds`.
    pub exec_thirds: u64,
    /// Σ per-invocation `exec_cycles` (post-rounding, so it reconciles
    /// exactly with the system's array-exec attribution minus
    /// `residual_cycles`).
    pub exec_cycles: u64,
    /// Σ per-invocation residual (memory stall + misspeculation
    /// penalty) cycles.
    pub residual_cycles: u64,
    /// Σ busy unit-thirds per class.
    pub busy_thirds: [u64; UNIT_CLASSES],
    /// Σ available unit-thirds per class (0 on infinite shapes).
    pub capacity_thirds: [u64; UNIT_CLASSES],
    /// Operations confirmed per class.
    pub issued_ops: [u64; UNIT_CLASSES],
    /// Operations squashed by misspeculation.
    pub squashed_ops: u64,
    /// Write-backs performed.
    pub writeback_writes: u64,
    /// Write-back port-slots available.
    pub writeback_slots: u64,
}

impl FabricHeat {
    /// Fresh, empty accumulator.
    pub fn new() -> FabricHeat {
        FabricHeat::default()
    }

    /// Tracked per-row heat, index = row; activity beyond
    /// [`FABRIC_TRACKED_ROWS`] is in [`overflow`](FabricHeat::overflow_row).
    pub fn rows(&self) -> &[RowHeat] {
        &self.rows
    }

    /// Folded activity of rows ≥ [`FABRIC_TRACKED_ROWS`].
    pub fn overflow_row(&self) -> &RowHeat {
        &self.overflow
    }

    fn row_mut(&mut self, row: usize) -> &mut RowHeat {
        if row < FABRIC_TRACKED_ROWS {
            if row >= self.rows.len() {
                self.rows.resize(row + 1, RowHeat::default());
            }
            &mut self.rows[row]
        } else {
            &mut self.overflow
        }
    }

    /// Records one array invocation executed to `upto_depth`, deriving
    /// occupancy from the same placement state the cycle model charges
    /// for. `residual_cycles` is the invocation's array-exec time not
    /// produced by the row model (memory stalls + misspeculation
    /// penalty).
    pub fn record(
        &mut self,
        config: &Configuration,
        timing: &ArrayTiming,
        upto_depth: u8,
        residual_cycles: u64,
    ) -> FabricSample {
        let mut sample = FabricSample {
            residual_cycles,
            ..FabricSample::default()
        };
        let shape = *config.shape();
        let finite = !shape.is_infinite();
        let per_row_capacity: [u64; UNIT_CLASSES] = if finite {
            [
                shape.units_per_row(FuClass::Alu) as u64,
                shape.units_per_row(FuClass::Multiplier) as u64,
                shape.units_per_row(FuClass::LoadStore) as u64,
            ]
        } else {
            [0; UNIT_CLASSES]
        };

        if let Some(last_row) = config.last_row_at_depth(upto_depth) {
            sample.rows = (last_row + 1) as u32;
            for occ in config.row_occupancy().take(last_row + 1) {
                let window = occ.kind.map_or(0, |k| timing.row_thirds(k));
                sample.exec_thirds += window;
                let busy = [occ.alus as u64, occ.mults as u64, occ.ldsts as u64];
                for c in 0..UNIT_CLASSES {
                    sample.busy_thirds[c] += busy[c] * window;
                    sample.capacity_thirds += per_row_capacity[c] * window;
                }
                let heat = self.row_mut(occ.row as usize);
                heat.traversals = heat.traversals.saturating_add(1);
                heat.active_thirds = heat.active_thirds.saturating_add(window);
                for (c, &b) in busy.iter().enumerate() {
                    heat.busy_thirds[c] = heat.busy_thirds[c].saturating_add(b * window);
                }
            }
            self.max_row = self.max_row.max(last_row as u64);
        }
        sample.exec_cycles = timing.thirds_to_cycles(sample.exec_thirds);

        for op in config.ops() {
            let Some(c) = unit_class_index(op.class) else {
                continue;
            };
            let heat = self.row_mut(op.row as usize);
            if op.depth <= upto_depth {
                sample.issued_ops += 1;
                heat.issued[c] = heat.issued[c].saturating_add(1);
                self.issued_ops[c] = self.issued_ops[c].saturating_add(1);
            } else {
                sample.squashed_ops += 1;
                heat.squashed = heat.squashed.saturating_add(1);
            }
        }

        sample.writeback_writes = config
            .writebacks()
            .filter(|&(_, d)| d <= upto_depth)
            .count() as u32;
        let tail = config.writeback_tail_cycles(timing, upto_depth);
        sample.writeback_slots = (shape.rf_write_ports.max(1) as u64) * (sample.exec_cycles + tail);

        self.invocations = self.invocations.saturating_add(1);
        self.exec_thirds = self.exec_thirds.saturating_add(sample.exec_thirds);
        self.exec_cycles = self.exec_cycles.saturating_add(sample.exec_cycles);
        self.residual_cycles = self.residual_cycles.saturating_add(residual_cycles);
        for (c, &cap) in per_row_capacity.iter().enumerate() {
            self.busy_thirds[c] = self.busy_thirds[c].saturating_add(sample.busy_thirds[c]);
            self.capacity_thirds[c] =
                self.capacity_thirds[c].saturating_add(cap * sample.exec_thirds);
        }
        self.squashed_ops = self.squashed_ops.saturating_add(sample.squashed_ops as u64);
        self.writeback_writes = self
            .writeback_writes
            .saturating_add(sample.writeback_writes as u64);
        self.writeback_slots = self.writeback_slots.saturating_add(sample.writeback_slots);
        sample
    }

    /// Folds `other` into `self` (sweep shard aggregation). Saturating,
    /// like `DimStats::merge`.
    pub fn merge(&mut self, other: &FabricHeat) {
        for (row, heat) in other.rows.iter().enumerate() {
            self.row_mut(row).merge(heat);
        }
        self.overflow.merge(&other.overflow);
        self.max_row = self.max_row.max(other.max_row);
        self.invocations = self.invocations.saturating_add(other.invocations);
        self.exec_thirds = self.exec_thirds.saturating_add(other.exec_thirds);
        self.exec_cycles = self.exec_cycles.saturating_add(other.exec_cycles);
        self.residual_cycles = self.residual_cycles.saturating_add(other.residual_cycles);
        for c in 0..UNIT_CLASSES {
            self.busy_thirds[c] = self.busy_thirds[c].saturating_add(other.busy_thirds[c]);
            self.capacity_thirds[c] =
                self.capacity_thirds[c].saturating_add(other.capacity_thirds[c]);
            self.issued_ops[c] = self.issued_ops[c].saturating_add(other.issued_ops[c]);
        }
        self.squashed_ops = self.squashed_ops.saturating_add(other.squashed_ops);
        self.writeback_writes = self.writeback_writes.saturating_add(other.writeback_writes);
        self.writeback_slots = self.writeback_slots.saturating_add(other.writeback_slots);
    }

    /// Total busy unit-thirds across classes.
    pub fn total_busy_thirds(&self) -> u64 {
        self.busy_thirds.iter().sum()
    }

    /// Total available unit-thirds across classes (0 when every
    /// invocation ran on an infinite shape).
    pub fn total_capacity_thirds(&self) -> u64 {
        self.capacity_thirds.iter().sum()
    }

    /// Whole-fabric utilization in `[0, 1]`; `None` when capacity is
    /// unknown (infinite shape or nothing executed).
    pub fn fabric_util(&self) -> Option<f64> {
        ratio(self.total_busy_thirds(), self.total_capacity_thirds())
    }

    /// Per-class utilization in `[0, 1]`; `None` as for
    /// [`fabric_util`](FabricHeat::fabric_util).
    pub fn class_util(&self, class: usize) -> Option<f64> {
        ratio(self.busy_thirds[class], self.capacity_thirds[class])
    }

    /// Fraction of write-back port-slots actually used, in `[0, 1]`;
    /// `None` before any invocation.
    pub fn writeback_saturation(&self) -> Option<f64> {
        ratio(self.writeback_writes, self.writeback_slots)
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::ArrayShape;
    use dim_mips::{AluOp, DataLoc, Instruction, Reg};

    fn alu_inst() -> Instruction {
        Instruction::Alu {
            op: AluOp::Addu,
            rd: Reg::T0,
            rs: Reg::T0,
            rt: Reg::A1,
        }
    }

    fn sample_config(shape: ArrayShape) -> Configuration {
        let mut c = Configuration::new(0x100, shape);
        // Three dependent ALU ops forced into distinct rows via min_row.
        for i in 0..3u32 {
            c.place(0x100 + 4 * i, alu_inst(), 0, i as usize).unwrap();
        }
        c.finish_segment(0, None, 0x10c);
        c
    }

    #[test]
    fn record_matches_exec_cycles_and_caps_busy() {
        let timing = ArrayTiming::default();
        let shape = ArrayShape::config1();
        let mut c = sample_config(shape);
        c.note_writeback(DataLoc::Gpr(Reg::T0), 0);
        let mut heat = FabricHeat::new();
        let sample = heat.record(&c, &timing, 0, 0);
        assert_eq!(sample.exec_cycles, c.exec_cycles(&timing, 0));
        assert_eq!(sample.rows, 3);
        assert_eq!(sample.issued_ops, 3);
        assert_eq!(sample.squashed_ops, 0);
        // 3 rows × 1 third each, one ALU busy per row.
        assert_eq!(sample.exec_thirds, 3);
        assert_eq!(sample.busy_thirds, [3, 0, 0]);
        for c in 0..UNIT_CLASSES {
            assert!(heat.busy_thirds[c] <= heat.capacity_thirds[c]);
        }
        assert_eq!(heat.exec_cycles + heat.residual_cycles, sample.exec_cycles);
        assert_eq!(sample.writeback_writes, 1);
        assert!(u64::from(sample.writeback_writes) <= sample.writeback_slots);
        assert_eq!(heat.rows().len(), 3);
        assert_eq!(heat.rows()[0].traversals, 1);
        assert_eq!(heat.rows()[0].issued, [1, 0, 0]);
    }

    #[test]
    fn infinite_shape_has_no_capacity() {
        let timing = ArrayTiming::default();
        let c = sample_config(ArrayShape::infinite());
        let mut heat = FabricHeat::new();
        let sample = heat.record(&c, &timing, 0, 0);
        assert_eq!(sample.capacity_thirds, 0);
        assert_eq!(heat.fabric_util(), None);
        assert!(sample.exec_cycles > 0);
    }

    #[test]
    fn merge_matches_sequential_record() {
        let timing = ArrayTiming::default();
        let c = sample_config(ArrayShape::config1());
        let mut a = FabricHeat::new();
        a.record(&c, &timing, 0, 2);
        a.record(&c, &timing, 0, 0);
        let mut b1 = FabricHeat::new();
        b1.record(&c, &timing, 0, 2);
        let mut b2 = FabricHeat::new();
        b2.record(&c, &timing, 0, 0);
        b1.merge(&b2);
        assert_eq!(a, b1);
    }

    #[test]
    fn overflow_bucket_catches_deep_rows() {
        let mut heat = FabricHeat::new();
        heat.row_mut(FABRIC_TRACKED_ROWS + 5).traversals = 7;
        assert_eq!(heat.overflow_row().traversals, 7);
        assert!(heat.rows().len() <= FABRIC_TRACKED_ROWS);
    }
}
