//! Array timing model.
//!
//! Each row of a configuration is one dataflow level. Simple ALU levels
//! are fast enough that several fit in one processor-equivalent cycle
//! (paper §4.1: "depending on the delay of each functional unit, more
//! than one operation can be executed within one processor equivalent
//! cycle"); multiplies and memory rows take whole cycles.

/// Per-row-kind delays, expressed against the processor clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayTiming {
    /// How many consecutive ALU-only rows execute per processor cycle.
    pub alu_rows_per_cycle: u64,
    /// Processor cycles for a row containing a multiply.
    pub mult_cycles: u64,
    /// Processor cycles for a row containing memory accesses (cache hit).
    pub ldst_cycles: u64,
    /// Cycles to read the configuration bits out of the reconfiguration
    /// cache (overlapped with operand fetch).
    pub config_read_cycles: u64,
    /// Pipeline stages available to hide reconfiguration (paper §4.3:
    /// the array starts executing in the fourth stage, so three cycles
    /// of reconfiguration are free).
    pub hidden_reconfig_cycles: u64,
    /// Flush penalty charged when a speculative configuration exits early
    /// because a branch went the other way.
    pub misspeculation_penalty: u64,
}

impl Default for ArrayTiming {
    fn default() -> Self {
        ArrayTiming {
            alu_rows_per_cycle: 3,
            mult_cycles: 2,
            ldst_cycles: 1,
            config_read_cycles: 1,
            hidden_reconfig_cycles: 3,
            misspeculation_penalty: 2,
        }
    }
}

/// The dominating unit kind of one row, for delay purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RowKind {
    /// Row holds only ALU/shift/compare operations.
    Alu,
    /// Row holds at least one multiply (and no memory op).
    Mult,
    /// Row holds at least one memory access.
    LoadStore,
}

impl ArrayTiming {
    /// Delay of one row in thirds of a cycle (integer arithmetic; an ALU
    /// row contributes `3 / alu_rows_per_cycle` thirds).
    pub fn row_thirds(&self, kind: RowKind) -> u64 {
        match kind {
            RowKind::Alu => (3 / self.alu_rows_per_cycle).max(1),
            RowKind::Mult => 3 * self.mult_cycles,
            RowKind::LoadStore => 3 * self.ldst_cycles,
        }
    }

    /// Converts accumulated thirds into whole cycles (rounding up).
    pub fn thirds_to_cycles(&self, thirds: u64) -> u64 {
        thirds.div_ceil(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_alu_rows_per_cycle() {
        let t = ArrayTiming::default();
        let thirds: u64 = (0..6).map(|_| t.row_thirds(RowKind::Alu)).sum();
        assert_eq!(t.thirds_to_cycles(thirds), 2);
        // Rounds up.
        assert_eq!(t.thirds_to_cycles(t.row_thirds(RowKind::Alu)), 1);
    }

    #[test]
    fn mult_and_mem_rows_full_cycles() {
        let t = ArrayTiming::default();
        assert_eq!(t.thirds_to_cycles(t.row_thirds(RowKind::Mult)), 2);
        assert_eq!(t.thirds_to_cycles(t.row_thirds(RowKind::LoadStore)), 1);
    }

    #[test]
    fn slower_alu_setting() {
        let t = ArrayTiming {
            alu_rows_per_cycle: 1,
            ..ArrayTiming::default()
        };
        assert_eq!(t.row_thirds(RowKind::Alu), 3);
    }
}
