//! Array geometry: the paper's Table 1 configurations.

use dim_mips::FuClass;

/// Geometry of the coarse-grained reconfigurable array.
///
/// A configuration is laid out as `rows` rows ("lines" in the paper);
/// each row provides `alus_per_row` ALU/shifter units, `mults_per_row`
/// multipliers and `ldsts_per_row` load/store units (the LD/ST group is
/// sized by the number of memory ports). Two instructions without data
/// dependences may occupy the same row and execute in parallel.
///
/// ```
/// use dim_cgra::ArrayShape;
/// let c1 = ArrayShape::config1();
/// assert_eq!((c1.rows, c1.columns()), (24, 11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayShape {
    /// Number of rows (levels) in the array.
    pub rows: usize,
    /// ALU/shifter units available per row.
    pub alus_per_row: usize,
    /// Multipliers available per row.
    pub mults_per_row: usize,
    /// Load/store units per row (bounded by memory ports).
    pub ldsts_per_row: usize,
    /// Register-file read ports used while fetching the input context.
    pub rf_read_ports: usize,
    /// Register-file write ports used for result write-back.
    pub rf_write_ports: usize,
}

/// Physical unit counts used for area accounting.
///
/// Multipliers and LD/ST units are shared between neighbouring rows in the
/// physical design (a multiply or memory row takes a full cycle while three
/// ALU rows fit in one, so one physical unit serves a group of rows); only
/// the ALUs are fully replicated. This reproduces Table 3a's counts for
/// configuration #1 (192 ALUs, 6 multipliers, 36 LD/ST units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnitCounts {
    /// ALU units.
    pub alus: usize,
    /// Multiplier units.
    pub mults: usize,
    /// Load/store units.
    pub ldsts: usize,
    /// Input (operand-select) multiplexers.
    pub input_muxes: usize,
    /// Output (bus-line) multiplexers.
    pub output_muxes: usize,
}

impl ArrayShape {
    /// Paper configuration #1: 24 rows × (8 ALU + 1 mult + 2 LD/ST).
    pub fn config1() -> ArrayShape {
        ArrayShape {
            rows: 24,
            alus_per_row: 8,
            mults_per_row: 1,
            ldsts_per_row: 2,
            rf_read_ports: 4,
            rf_write_ports: 4,
        }
    }

    /// Paper configuration #2: 48 rows × (8 ALU + 2 mult + 6 LD/ST).
    pub fn config2() -> ArrayShape {
        ArrayShape {
            rows: 48,
            alus_per_row: 8,
            mults_per_row: 2,
            ldsts_per_row: 6,
            rf_read_ports: 4,
            rf_write_ports: 4,
        }
    }

    /// Paper configuration #3: 150 rows × (12 ALU + 2 mult + 6 LD/ST).
    pub fn config3() -> ArrayShape {
        ArrayShape {
            rows: 150,
            alus_per_row: 12,
            mults_per_row: 2,
            ldsts_per_row: 6,
            rf_read_ports: 4,
            rf_write_ports: 4,
        }
    }

    /// A CCA-like array (paper §2.2's comparison point): a small
    /// ALU-only grid with no multipliers and no memory ports. Combine
    /// with `support_shifts = false` in the translator options to model
    /// the full restriction ("the CCA does not support memory operations
    /// or shifts").
    pub fn cca_like() -> ArrayShape {
        ArrayShape {
            rows: 7,
            alus_per_row: 6,
            mults_per_row: 0,
            ldsts_per_row: 0,
            rf_read_ports: 4,
            rf_write_ports: 4,
        }
    }

    /// Unbounded array for the paper's "ideal, infinite hardware
    /// resources" column.
    pub fn infinite() -> ArrayShape {
        ArrayShape {
            rows: usize::MAX / 4,
            alus_per_row: usize::MAX / 4,
            mults_per_row: usize::MAX / 4,
            ldsts_per_row: usize::MAX / 4,
            rf_read_ports: 4,
            rf_write_ports: 4,
        }
    }

    /// Functional units per row ("columns" in Table 1).
    pub fn columns(&self) -> usize {
        self.alus_per_row + self.mults_per_row + self.ldsts_per_row
    }

    /// Units of `class` available in one row. Branches occupy an ALU
    /// comparator; unsupported classes have no units.
    pub fn units_per_row(&self, class: FuClass) -> usize {
        match class {
            FuClass::Alu | FuClass::Branch => self.alus_per_row,
            FuClass::Multiplier => self.mults_per_row,
            FuClass::LoadStore => self.ldsts_per_row,
            FuClass::Unsupported => 0,
        }
    }

    /// Whether this shape has no practical resource bound.
    pub fn is_infinite(&self) -> bool {
        self.rows >= usize::MAX / 8
    }

    /// Physical unit counts for area accounting (see [`UnitCounts`]).
    pub fn physical_units(&self) -> UnitCounts {
        if self.is_infinite() {
            return UnitCounts::default();
        }
        // One multiplier row group per three ALU sub-rows plus the mult row
        // itself: every fourth row carries the multipliers, the others the
        // LD/ST ports. Matches Table 3a for configuration #1.
        let mult_rows = (self.rows / 4).max(1);
        let ldst_rows = self.rows - mult_rows;
        let alus = self.rows * self.alus_per_row;
        let mults = mult_rows * self.mults_per_row;
        let ldsts = ldst_rows * self.ldsts_per_row;
        UnitCounts {
            alus,
            mults,
            ldsts,
            // Two operand muxes per ALU/multiplier, one (address) per LD/ST.
            input_muxes: 2 * alus + 2 * mults + ldsts,
            // One output mux per bus line and row, plus a spare per row.
            output_muxes: self.rows * (crate::EncodingParams::default().bus_lines + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_columns() {
        assert_eq!(ArrayShape::config1().columns(), 11);
        assert_eq!(ArrayShape::config2().columns(), 16);
        assert_eq!(ArrayShape::config3().columns(), 20);
    }

    #[test]
    fn table3a_unit_counts_config1() {
        let u = ArrayShape::config1().physical_units();
        assert_eq!(u.alus, 192);
        assert_eq!(u.mults, 6);
        assert_eq!(u.ldsts, 36);
        // Input muxes ≈ 408 in the paper; our structural count is close.
        assert!((380..=460).contains(&u.input_muxes), "{}", u.input_muxes);
        assert_eq!(u.output_muxes, 216);
    }

    #[test]
    fn units_per_row_by_class() {
        let s = ArrayShape::config1();
        assert_eq!(s.units_per_row(FuClass::Alu), 8);
        assert_eq!(s.units_per_row(FuClass::Branch), 8);
        assert_eq!(s.units_per_row(FuClass::Multiplier), 1);
        assert_eq!(s.units_per_row(FuClass::LoadStore), 2);
        assert_eq!(s.units_per_row(FuClass::Unsupported), 0);
    }

    #[test]
    fn infinite_is_detected() {
        assert!(ArrayShape::infinite().is_infinite());
        assert!(!ArrayShape::config3().is_infinite());
    }
}
