//! # dim-cgra
//!
//! Structural, timing and encoding model of the dynamic coarse-grained
//! reconfigurable array from the DATE'08 DIM paper.
//!
//! * [`ArrayShape`] — the geometry of Table 1's configurations #1/#2/#3
//!   (plus an unbounded "ideal" shape);
//! * [`ArrayTiming`] — row delays (three ALU rows per processor cycle,
//!   multi-cycle multiplies, memory-port-limited LD/ST rows);
//! * [`Configuration`] — a translated sequence of instructions placed on
//!   the array, with speculation segments, live-in/write-back sets and
//!   all cycle-count queries;
//! * [`execute_dataflow`] — functional execution of a configuration from
//!   its placement (renamed operands, gated speculation, port-ordered
//!   memory), used to prove placements correct;
//! * [`encoding_breakdown`]/[`cache_bytes`] — the bits per stored
//!   configuration and reconfiguration-cache sizes (Table 3b/3c).
//!
//! ```
//! use dim_cgra::{ArrayShape, ArrayTiming, Configuration};
//! use dim_mips::{AluOp, Instruction, Reg};
//!
//! let mut config = Configuration::new(0x40_0000, ArrayShape::config1());
//! let add = Instruction::Alu { op: AluOp::Addu, rd: Reg::T0, rs: Reg::A0, rt: Reg::A1 };
//! config.place(0x40_0000, add, 0, 0)?;
//! assert_eq!(config.exec_cycles(&ArrayTiming::default(), 0), 1);
//! # Ok::<(), dim_cgra::PlaceError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod encoding;
mod exec;
mod heat;
mod render;
mod shape;
pub mod snapshot;
pub mod stream;
mod timing;
pub mod verify;

pub use config::{
    Configuration, InvocationCycles, PlaceError, PlacedOp, RowOccupancy, Segment, SegmentBranch,
};
pub use encoding::{cache_bytes, encoding_breakdown, EncodingBreakdown, EncodingParams};
pub use exec::{execute_dataflow, DataflowOutcome, EntryContext, ExecError, ExecMemory};
pub use heat::{
    unit_class_index, FabricHeat, FabricSample, RowHeat, FABRIC_TRACKED_ROWS, UNIT_CLASSES,
    UNIT_CLASS_NAMES,
};
pub use render::render_occupancy;
pub use shape::{ArrayShape, UnitCounts};
pub use stream::{
    verify_cert, StreamAccess, StreamAccessKind, StreamCertError, StreamCertViolation, StreamClass,
    StreamingCert, STREAM_BURST_CAP, STREAM_CERT_VERSION,
};
pub use timing::{ArrayTiming, RowKind};
