//! Array configurations: placed operations, speculation segments, timing.

use crate::{ArrayShape, ArrayTiming, RowKind};
use dim_mips::{DataLoc, FuClass, Instruction};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One operation placed at a row/column intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedOp {
    /// Address of the original instruction.
    pub pc: u32,
    /// The original instruction (kept for replay and disassembly).
    pub inst: Instruction,
    /// Row (level) the operation was allocated to.
    pub row: u32,
    /// Column within the row's group for its unit class.
    pub col: u32,
    /// Functional-unit class occupied.
    pub class: FuClass,
    /// Speculation depth: 0 for the first basic block, 1 for the first
    /// speculated block, ...
    pub depth: u8,
}

/// The branch terminating a speculation segment, evaluated inside the
/// array as a gating compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentBranch {
    /// PC of the branch instruction.
    pub pc: u32,
    /// The branch itself.
    pub inst: Instruction,
    /// Predicted direction this configuration was built for.
    pub predicted_taken: bool,
    /// Target when taken.
    pub taken_pc: u32,
    /// Fall-through address.
    pub fall_pc: u32,
}

impl SegmentBranch {
    /// The address execution continues at when the prediction holds.
    pub fn predicted_pc(&self) -> u32 {
        if self.predicted_taken {
            self.taken_pc
        } else {
            self.fall_pc
        }
    }

    /// The address execution continues at when the prediction fails.
    pub fn mispredicted_pc(&self) -> u32 {
        if self.predicted_taken {
            self.fall_pc
        } else {
            self.taken_pc
        }
    }
}

/// One basic block covered by a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Speculation depth of this block (0 = non-speculative).
    pub depth: u8,
    /// Index of the segment's first op in [`Configuration::ops`].
    pub start: usize,
    /// Number of ops in the segment (including its branch, if any).
    pub len: usize,
    /// The terminating branch when the segment is speculated over (or is
    /// the last covered block ending in a translated branch).
    pub branch: Option<SegmentBranch>,
    /// PC after the segment when no branch decides it (sequential exit).
    pub exit_pc: u32,
}

/// One row's unit occupancy, as seen by the heat/observability layer.
///
/// Mirrors the private allocation bookkeeping the placer maintains, so
/// utilization accounting ([`crate::FabricHeat`]) and the cycle model
/// ([`Configuration::exec_cycles`]) read the same row state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowOccupancy {
    /// Row (level) index.
    pub row: u32,
    /// ALU/shifter/comparator units occupied.
    pub alus: u32,
    /// Multiplier units occupied.
    pub mults: u32,
    /// Load/store units occupied.
    pub ldsts: u32,
    /// Delay-dominating kind of the row (`None` for an empty row).
    pub kind: Option<RowKind>,
}

impl RowOccupancy {
    /// Total units occupied in the row.
    pub fn units(&self) -> u32 {
        self.alus + self.mults + self.ldsts
    }
}

/// The three cycle spans charged for one array invocation: the
/// reconfiguration stall visible to the processor, row execution, and
/// the non-overlapped write-back tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvocationCycles {
    /// Reconfiguration stall cycles.
    pub stall: u64,
    /// Row-execution cycles.
    pub exec: u64,
    /// Write-back cycles not overlapped with execution.
    pub tail: u64,
}

impl InvocationCycles {
    /// All cycles across the three spans.
    pub fn total(&self) -> u64 {
        self.stall + self.exec + self.tail
    }
}

/// Why an operation could not be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// No free unit of the required class in any allowed row.
    Full,
    /// The instruction class cannot execute in the array.
    Unsupported,
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Full => write!(f, "array configuration is full"),
            PlaceError::Unsupported => write!(f, "instruction class not supported by the array"),
        }
    }
}

impl std::error::Error for PlaceError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct RowUsage {
    alus: u32,
    mults: u32,
    ldsts: u32,
}

impl RowUsage {
    fn used(&self, class: FuClass) -> u32 {
        match class {
            FuClass::Alu | FuClass::Branch => self.alus,
            FuClass::Multiplier => self.mults,
            FuClass::LoadStore => self.ldsts,
            FuClass::Unsupported => u32::MAX,
        }
    }

    fn take(&mut self, class: FuClass) -> u32 {
        let slot = match class {
            FuClass::Alu | FuClass::Branch => &mut self.alus,
            FuClass::Multiplier => &mut self.mults,
            FuClass::LoadStore => &mut self.ldsts,
            FuClass::Unsupported => unreachable!("checked by caller"),
        };
        let col = *slot;
        *slot += 1;
        col
    }

    fn kind(&self) -> Option<RowKind> {
        if self.ldsts > 0 {
            Some(RowKind::LoadStore)
        } else if self.mults > 0 {
            Some(RowKind::Mult)
        } else if self.alus > 0 {
            Some(RowKind::Alu)
        } else {
            None
        }
    }
}

/// A translated array configuration: the unit of storage in the
/// reconfiguration cache and the unit of execution on the array.
///
/// Built incrementally by the DIM translator (`dim-core`); this type owns
/// the structural side — placement against an [`ArrayShape`], speculation
/// segments, live-in/write-back sets — and the timing queries derived
/// from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// PC of the first covered instruction (the cache index).
    pub entry_pc: u32,
    shape: ArrayShape,
    ops: Vec<PlacedOp>,
    rows: Vec<RowUsage>,
    segments: Vec<Segment>,
    live_ins: BTreeSet<DataLoc>,
    writebacks: BTreeMap<DataLoc, u8>,
    loads: u32,
    stores: u32,
}

impl Configuration {
    /// Creates an empty configuration starting at `entry_pc` for an array
    /// of the given shape.
    pub fn new(entry_pc: u32, shape: ArrayShape) -> Configuration {
        Configuration {
            entry_pc,
            shape,
            ops: Vec::new(),
            rows: Vec::new(),
            segments: Vec::new(),
            live_ins: BTreeSet::new(),
            writebacks: BTreeMap::new(),
            loads: 0,
            stores: 0,
        }
    }

    /// The shape this configuration was placed against.
    pub fn shape(&self) -> &ArrayShape {
        &self.shape
    }

    /// Places `inst` in the first row at or after `min_row` with a free
    /// unit of its class, returning `(row, col)`.
    ///
    /// # Errors
    ///
    /// [`PlaceError::Unsupported`] when the instruction cannot run on the
    /// array, [`PlaceError::Full`] when no row in the shape can host it.
    pub fn place(
        &mut self,
        pc: u32,
        inst: Instruction,
        depth: u8,
        min_row: usize,
    ) -> Result<(u32, u32), PlaceError> {
        let class = inst.fu_class();
        if class == FuClass::Unsupported {
            return Err(PlaceError::Unsupported);
        }
        let cap = self.shape.units_per_row(class) as u32;
        if cap == 0 {
            return Err(PlaceError::Unsupported);
        }
        let mut row = min_row;
        loop {
            if row >= self.shape.rows {
                return Err(PlaceError::Full);
            }
            if row >= self.rows.len() {
                self.rows.resize(row + 1, RowUsage::default());
            }
            if self.rows[row].used(class) < cap {
                let col = self.rows[row].take(class);
                self.ops.push(PlacedOp {
                    pc,
                    inst,
                    row: row as u32,
                    col,
                    class,
                    depth,
                });
                if class == FuClass::LoadStore {
                    if matches!(inst, Instruction::Load { .. }) {
                        self.loads += 1;
                    } else {
                        self.stores += 1;
                    }
                }
                return Ok((row as u32, col));
            }
            row += 1;
        }
    }

    /// Records that `loc` must be fetched from the register file during
    /// reconfiguration (a live-in of the configuration).
    pub fn note_live_in(&mut self, loc: DataLoc) {
        self.live_ins.insert(loc);
    }

    /// Records that `loc` is written back by the configuration at the
    /// given speculation depth. Only one write-back per location is ever
    /// performed — "if there are two writes to the same register, just
    /// the last one will be performed" (paper §4.3) — but the write-back
    /// becomes *pending* at the location's earliest write: if a deeper
    /// segment squashes, the shallower value must still retire.
    pub fn note_writeback(&mut self, loc: DataLoc, depth: u8) {
        self.writebacks
            .entry(loc)
            .and_modify(|d| *d = (*d).min(depth))
            .or_insert(depth);
    }

    /// Closes the current segment (ops pushed since the previous segment
    /// end), with its optional terminating branch and sequential exit PC.
    pub fn finish_segment(&mut self, depth: u8, branch: Option<SegmentBranch>, exit_pc: u32) {
        let start = self.segments.last().map_or(0, |s| s.start + s.len);
        let len = self.ops.len() - start;
        self.segments.push(Segment {
            depth,
            start,
            len,
            branch,
            exit_pc,
        });
    }

    /// All placed operations in program order.
    pub fn ops(&self) -> &[PlacedOp] {
        &self.ops
    }

    /// Mutable access to the placed operations, for checkers and test
    /// harnesses that perturb placements (fault injection against the
    /// verifier). The length is fixed; derived row-occupancy caches are
    /// *not* updated, so after mutating ops only introspection and
    /// [`crate::verify::verify_config`] — which re-derives everything
    /// from the ops — give trustworthy answers.
    pub fn ops_mut(&mut self) -> &mut [PlacedOp] {
        &mut self.ops
    }

    /// Removes `loc` from the write-back map, returning its pending
    /// depth. Introspection/corruption support for the verifier.
    pub fn remove_writeback(&mut self, loc: DataLoc) -> Option<u8> {
        self.writebacks.remove(&loc)
    }

    /// Removes `loc` from the live-in set, reporting whether it was
    /// present. Introspection/corruption support for the verifier.
    pub fn remove_live_in(&mut self, loc: DataLoc) -> bool {
        self.live_ins.remove(&loc)
    }

    /// The speculation segments in depth order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Ops of one segment, in program order.
    pub fn segment_ops(&self, segment: &Segment) -> &[PlacedOp] {
        &self.ops[segment.start..segment.start + segment.len]
    }

    /// Number of covered instructions.
    pub fn instruction_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of rows actually occupied.
    pub fn rows_used(&self) -> usize {
        self.rows.len()
    }

    /// Distinct register-file locations fetched at reconfiguration.
    pub fn live_in_count(&self) -> usize {
        self.live_ins.len()
    }

    /// Live-in locations.
    pub fn live_ins(&self) -> impl Iterator<Item = DataLoc> + '_ {
        self.live_ins.iter().copied()
    }

    /// Distinct locations written back (after last-write-wins collapsing).
    pub fn writeback_count(&self) -> usize {
        self.writebacks.len()
    }

    /// Write-back locations with the depth of their *earliest* write —
    /// the depth at which the write-back becomes pending.
    pub fn writebacks(&self) -> impl Iterator<Item = (DataLoc, u8)> + '_ {
        self.writebacks.iter().map(|(&l, &d)| (l, d))
    }

    /// Loads placed in this configuration.
    pub fn load_count(&self) -> u32 {
        self.loads
    }

    /// Stores placed in this configuration.
    pub fn store_count(&self) -> u32 {
        self.stores
    }

    /// Whether the configuration is worth caching — the paper creates a
    /// cache entry only "if more than three instructions were found".
    pub fn worth_caching(&self) -> bool {
        self.ops.len() > 3
    }

    /// Maximum speculation depth present.
    pub fn max_depth(&self) -> u8 {
        self.segments.last().map_or(0, |s| s.depth)
    }

    /// Deepest row holding an operation of depth ≤ `upto_depth`, i.e. the
    /// last row a run confirmed to that depth actually traverses. `None`
    /// when no operation qualifies.
    pub fn last_row_at_depth(&self, upto_depth: u8) -> Option<usize> {
        self.ops
            .iter()
            .filter(|op| op.depth <= upto_depth)
            .map(|op| op.row as usize)
            .max()
    }

    /// Per-row unit occupancy, in row order, covering every row the
    /// placer touched. The fabric heat accumulator and `dim heat` read
    /// the same row state the cycle model charges for.
    pub fn row_occupancy(&self) -> impl ExactSizeIterator<Item = RowOccupancy> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(|(row, usage)| RowOccupancy {
                row: row as u32,
                alus: usage.alus,
                mults: usage.mults,
                ldsts: usage.ldsts,
                kind: usage.kind(),
            })
    }

    /// Delay-dominating kind of `row`, `None` for empty or out-of-range
    /// rows.
    pub fn row_kind(&self, row: usize) -> Option<RowKind> {
        self.rows.get(row).and_then(RowUsage::kind)
    }

    /// Execution cycles on the array for all rows containing operations
    /// of depth ≤ `upto_depth` (a misspeculated run pays only for the
    /// rows it actually traversed).
    pub fn exec_cycles(&self, timing: &ArrayTiming, upto_depth: u8) -> u64 {
        timing.thirds_to_cycles(self.exec_thirds(timing, upto_depth))
    }

    /// The pre-rounding row-delay sum behind [`exec_cycles`]
    /// (Configuration::exec_cycles): thirds of a cycle over every
    /// traversed row. Exposed so the heat accumulator can reconcile
    /// per-row activity against the charged cycles exactly.
    pub fn exec_thirds(&self, timing: &ArrayTiming, upto_depth: u8) -> u64 {
        let Some(last_row) = self.last_row_at_depth(upto_depth) else {
            return 0;
        };
        self.rows[..=last_row]
            .iter()
            .filter_map(RowUsage::kind)
            .map(|k| timing.row_thirds(k))
            .sum()
    }

    /// Cycles to reconfigure: configuration read plus operand fetch
    /// through the register-file read ports, minus the pipeline stages
    /// that hide it (paper §4.3). This is the *stall* visible to the
    /// processor.
    pub fn reconfig_stall_cycles(&self, timing: &ArrayTiming) -> u64 {
        let fetch = (self.live_ins.len() as u64).div_ceil(self.shape.rf_read_ports.max(1) as u64);
        (timing.config_read_cycles + fetch).saturating_sub(timing.hidden_reconfig_cycles)
    }

    /// Write-back cycles that cannot be overlapped: results write back
    /// `rf_write_ports` per cycle in parallel with execution (paper §4.2:
    /// "it is possible to write results back in parallel to the execution
    /// of other operations"), and the final batch drains while the
    /// processor refills its front end, so only write-backs in excess of
    /// the whole execution window stall anything.
    pub fn writeback_tail_cycles(&self, timing: &ArrayTiming, upto_depth: u8) -> u64 {
        let writes = self
            .writebacks
            .values()
            .filter(|&&d| d <= upto_depth)
            .count() as u64;
        let wb_cycles = writes.div_ceil(self.shape.rf_write_ports.max(1) as u64);
        let exec = self.exec_cycles(timing, upto_depth);
        wb_cycles.saturating_sub(exec)
    }

    /// The full span decomposition of one invocation executed to
    /// `upto_depth` — the single source the coupled system, the stats,
    /// and the observability events all draw from, so the three numbers
    /// can never drift apart between consumers.
    pub fn invocation_cycles(&self, timing: &ArrayTiming, upto_depth: u8) -> InvocationCycles {
        InvocationCycles {
            stall: self.reconfig_stall_cycles(timing),
            exec: self.exec_cycles(timing, upto_depth),
            tail: self.writeback_tail_cycles(timing, upto_depth),
        }
    }

    /// Total array cycles for a run that confirms every speculation up to
    /// `upto_depth`: stall + execution + write-back tail.
    pub fn total_cycles(&self, timing: &ArrayTiming, upto_depth: u8) -> u64 {
        self.invocation_cycles(timing, upto_depth).total()
    }

    /// Checks the structural invariants the executors rely on, returning
    /// the first violation as text. Used by tests and debug assertions;
    /// a configuration built through [`place`](Configuration::place) /
    /// [`finish_segment`](Configuration::finish_segment) should never
    /// fail this.
    pub fn validate(&self) -> Result<(), String> {
        // Segments partition ops contiguously with non-decreasing depth.
        let mut covered = 0usize;
        let mut last_depth = 0u8;
        for (k, seg) in self.segments.iter().enumerate() {
            if seg.start != covered {
                return Err(format!(
                    "segment {k} starts at {} instead of {covered}",
                    seg.start
                ));
            }
            covered += seg.len;
            if k > 0 && seg.depth < last_depth {
                return Err(format!("segment {k} depth decreases"));
            }
            last_depth = seg.depth;
            // A segment's branch, if any, is its last op.
            if let Some(branch) = seg.branch {
                match self.ops.get(seg.start + seg.len - 1) {
                    Some(op) if op.pc == branch.pc && op.inst.is_branch() => {}
                    _ => return Err(format!("segment {k}: branch is not the last op")),
                }
            }
            // All ops in the segment carry the segment's depth.
            for op in self.segment_ops(seg) {
                if op.depth != seg.depth {
                    return Err(format!(
                        "op at {:#x} has depth {} inside segment of depth {}",
                        op.pc, op.depth, seg.depth
                    ));
                }
            }
        }
        if covered != self.ops.len() {
            return Err(format!(
                "segments cover {covered} ops of {}",
                self.ops.len()
            ));
        }
        // Rows within shape, RAW order inside the placement.
        let mut producer_row: [Option<u32>; DataLoc::COUNT] = [None; DataLoc::COUNT];
        let mut last_mem_row: Option<u32> = None;
        for op in &self.ops {
            if !self.shape.is_infinite() && op.row as usize >= self.shape.rows {
                return Err(format!("op at {:#x} beyond shape rows", op.pc));
            }
            for src in op.inst.reads().iter() {
                if let Some(p) = producer_row[src.dense_index()] {
                    if p >= op.row {
                        return Err(format!(
                            "RAW violated: op at {:#x} row {} reads {} produced in row {p}",
                            op.pc, op.row, src
                        ));
                    }
                }
            }
            if op.inst.is_mem() {
                if let Some(m) = last_mem_row {
                    if op.row < m {
                        return Err(format!("memory order violated at {:#x}", op.pc));
                    }
                }
                last_mem_row = Some(last_mem_row.map_or(op.row, |m| m.max(op.row)));
            }
            for dst in op.inst.writes().iter() {
                producer_row[dst.dense_index()] = Some(op.row);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{AluOp, MemWidth, MulDivOp, Reg};

    fn alu(rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt,
        }
    }

    fn load(rt: Reg, base: Reg) -> Instruction {
        Instruction::Load {
            width: MemWidth::Word,
            signed: false,
            rt,
            base,
            offset: 0,
        }
    }

    #[test]
    fn independent_ops_share_a_row() {
        let mut c = Configuration::new(0x400000, ArrayShape::config1());
        let (r0, c0) = c
            .place(0x400000, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0)
            .unwrap();
        let (r1, c1) = c
            .place(0x400004, alu(Reg::T1, Reg::A2, Reg::A3), 0, 0)
            .unwrap();
        assert_eq!((r0, r1), (0, 0));
        assert_ne!(c0, c1);
        assert_eq!(c.rows_used(), 1);
    }

    #[test]
    fn row_overflow_moves_down() {
        let mut c = Configuration::new(0, ArrayShape::config1());
        for i in 0..9 {
            c.place(4 * i, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0)
                .unwrap();
        }
        // 8 ALUs per row: the 9th op lands in row 1.
        assert_eq!(c.ops()[8].row, 1);
    }

    #[test]
    fn min_row_respected() {
        let mut c = Configuration::new(0, ArrayShape::config1());
        let (r, _) = c.place(0, alu(Reg::T0, Reg::A0, Reg::A1), 0, 5).unwrap();
        assert_eq!(r, 5);
    }

    #[test]
    fn full_and_unsupported_errors() {
        let mut tiny = ArrayShape::config1();
        tiny.rows = 1;
        tiny.alus_per_row = 1;
        let mut c = Configuration::new(0, tiny);
        c.place(0, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0).unwrap();
        assert_eq!(
            c.place(4, alu(Reg::T1, Reg::A0, Reg::A1), 0, 0),
            Err(PlaceError::Full)
        );
        assert_eq!(
            c.place(
                8,
                Instruction::MulDiv {
                    op: MulDivOp::Div,
                    rs: Reg::A0,
                    rt: Reg::A1
                },
                0,
                0
            ),
            Err(PlaceError::Unsupported)
        );
    }

    #[test]
    fn exec_cycles_mix() {
        let t = ArrayTiming::default();
        let mut c = Configuration::new(0, ArrayShape::config3());
        // Three dependent ALU rows -> 1 cycle.
        for i in 0..3 {
            c.place(4 * i, alu(Reg::T0, Reg::T0, Reg::A1), 0, i as usize)
                .unwrap();
        }
        assert_eq!(c.exec_cycles(&t, 0), 1);
        // Add a load row -> +1 cycle; a mult row -> +2 cycles.
        c.place(100, load(Reg::T1, Reg::T0), 0, 3).unwrap();
        c.place(
            104,
            Instruction::MulDiv {
                op: MulDivOp::Mult,
                rs: Reg::T1,
                rt: Reg::T0,
            },
            0,
            4,
        )
        .unwrap();
        assert_eq!(c.exec_cycles(&t, 0), 1 + 1 + 2);
    }

    #[test]
    fn depth_limits_cycle_accounting() {
        let t = ArrayTiming::default();
        let mut c = Configuration::new(0, ArrayShape::config3());
        c.place(0, load(Reg::T0, Reg::A0), 0, 0).unwrap();
        c.place(4, load(Reg::T1, Reg::T0), 1, 1).unwrap();
        c.place(8, load(Reg::T2, Reg::T1), 2, 2).unwrap();
        assert_eq!(c.exec_cycles(&t, 0), 1);
        assert_eq!(c.exec_cycles(&t, 1), 2);
        assert_eq!(c.exec_cycles(&t, 2), 3);
    }

    #[test]
    fn reconfig_stall_hidden_until_ports_saturate() {
        let t = ArrayTiming::default();
        let mut c = Configuration::new(0, ArrayShape::config1());
        for r in [
            Reg::A0,
            Reg::A1,
            Reg::A2,
            Reg::A3,
            Reg::T0,
            Reg::T1,
            Reg::T2,
            Reg::T3,
        ] {
            c.note_live_in(DataLoc::Gpr(r));
        }
        // 8 live-ins / 4 ports = 2 cycles + 1 config read = 3 == hidden.
        assert_eq!(c.reconfig_stall_cycles(&t), 0);
        for r in [
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
        ] {
            c.note_live_in(DataLoc::Gpr(r));
        }
        // 16/4 + 1 = 5 -> stall 2.
        assert_eq!(c.reconfig_stall_cycles(&t), 2);
    }

    #[test]
    fn writeback_pending_at_earliest_depth() {
        let mut c = Configuration::new(0, ArrayShape::config1());
        c.note_writeback(DataLoc::Gpr(Reg::T0), 0);
        c.note_writeback(DataLoc::Gpr(Reg::T0), 1);
        c.note_writeback(DataLoc::Gpr(Reg::T1), 1);
        assert_eq!(c.writeback_count(), 2);
        let depths: Vec<_> = c.writebacks().collect();
        // T0 was first written at depth 0, so even a depth-1 squash must
        // still retire its depth-0 value.
        assert!(depths.contains(&(DataLoc::Gpr(Reg::T0), 0)));
        assert!(depths.contains(&(DataLoc::Gpr(Reg::T1), 1)));
    }

    #[test]
    fn segments_partition_ops() {
        let mut c = Configuration::new(0, ArrayShape::config1());
        c.place(0, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0).unwrap();
        c.place(4, alu(Reg::T1, Reg::T0, Reg::A1), 0, 1).unwrap();
        c.finish_segment(0, None, 8);
        c.place(8, alu(Reg::T2, Reg::T1, Reg::A1), 1, 2).unwrap();
        c.finish_segment(1, None, 12);
        assert_eq!(c.segments().len(), 2);
        assert_eq!(c.segment_ops(&c.segments()[0]).len(), 2);
        assert_eq!(c.segment_ops(&c.segments()[1]).len(), 1);
        assert_eq!(c.max_depth(), 1);
    }

    #[test]
    fn worth_caching_threshold() {
        let mut c = Configuration::new(0, ArrayShape::config1());
        for i in 0..3 {
            c.place(4 * i, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0)
                .unwrap();
        }
        assert!(!c.worth_caching());
        c.place(12, alu(Reg::T1, Reg::A0, Reg::A1), 0, 0).unwrap();
        assert!(c.worth_caching());
    }
}
