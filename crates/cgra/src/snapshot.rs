//! Wire format for [`Configuration`]: the per-entry payload of the
//! reconfiguration-cache snapshot (`.dimrc`) files.
//!
//! A configuration is serialized as its *construction recipe* — entry
//! PC, shape, live-in/write-back sets, and per-segment instruction
//! placements — and decoding replays that recipe through the normal
//! [`Configuration::place`]/[`Configuration::finish_segment`] builders.
//! Because placement is deterministic for a fixed insertion order, the
//! decoded configuration is structurally identical to the encoded one
//! (the decoder verifies every replayed row and runs
//! [`Configuration::validate`] as a final gate), so a corrupt or
//! hand-edited snapshot can never smuggle an inconsistent placement into
//! the array.
//!
//! Instructions travel as their 32-bit MIPS machine encodings
//! (`dim_mips::code::encode`/`decode`), which the `golden_encodings`
//! suite proves lossless for every instruction the translator places.
//!
//! All integers are little-endian. Strings do not occur.

use crate::{ArrayShape, Configuration, SegmentBranch};
use dim_mips::{decode, encode, DataLoc};
use std::fmt;

/// Why a snapshot payload could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// A field held a value outside its domain (bad register index,
    /// undecodable instruction word, row mismatch on replay, ...).
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian byte cursor over a snapshot payload.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// FNV-1a 64-bit hash — the snapshot checksum (the workspace's shared
/// implementation, re-exported here for snapshot callers).
pub use dim_obs::fnv1a64;

/// Serializes an [`ArrayShape`] (six `u64` fields).
pub fn put_shape(out: &mut Vec<u8>, shape: &ArrayShape) {
    for v in [
        shape.rows,
        shape.alus_per_row,
        shape.mults_per_row,
        shape.ldsts_per_row,
        shape.rf_read_ports,
        shape.rf_write_ports,
    ] {
        put_u64(out, v as u64);
    }
}

/// Deserializes an [`ArrayShape`] written by [`put_shape`].
pub fn read_shape(c: &mut Cursor<'_>) -> Result<ArrayShape, WireError> {
    let mut f = || -> Result<usize, WireError> {
        let v = c.u64()?;
        usize::try_from(v).map_err(|_| WireError::Corrupt(format!("shape field {v} overflows")))
    };
    Ok(ArrayShape {
        rows: f()?,
        alus_per_row: f()?,
        mults_per_row: f()?,
        ldsts_per_row: f()?,
        rf_read_ports: f()?,
        rf_write_ports: f()?,
    })
}

/// Appends the wire encoding of one configuration to `out`.
pub fn encode_config(config: &Configuration, out: &mut Vec<u8>) {
    put_u32(out, config.entry_pc);
    put_shape(out, config.shape());
    let live_ins: Vec<DataLoc> = config.live_ins().collect();
    put_u32(out, live_ins.len() as u32);
    for loc in live_ins {
        out.push(loc.dense_index() as u8);
    }
    let writebacks: Vec<(DataLoc, u8)> = config.writebacks().collect();
    put_u32(out, writebacks.len() as u32);
    for (loc, depth) in writebacks {
        out.push(loc.dense_index() as u8);
        out.push(depth);
    }
    put_u32(out, config.segments().len() as u32);
    for segment in config.segments() {
        out.push(segment.depth);
        put_u32(out, segment.exit_pc);
        match segment.branch {
            None => out.push(0),
            Some(b) => {
                out.push(1);
                put_u32(out, b.pc);
                put_u32(out, encode(&b.inst));
                out.push(b.predicted_taken as u8);
                put_u32(out, b.taken_pc);
                put_u32(out, b.fall_pc);
            }
        }
        let ops = config.segment_ops(segment);
        put_u32(out, ops.len() as u32);
        for op in ops {
            put_u32(out, op.pc);
            put_u32(out, encode(&op.inst));
            put_u32(out, op.row);
        }
    }
}

fn read_loc(c: &mut Cursor<'_>) -> Result<DataLoc, WireError> {
    let idx = c.u8()? as usize;
    DataLoc::from_dense_index(idx)
        .ok_or_else(|| WireError::Corrupt(format!("data location index {idx}")))
}

/// Bounds a count field so a corrupt header cannot request a huge
/// allocation before the payload runs out anyway.
fn checked_count(c: &Cursor<'_>, n: u32, min_bytes_each: usize) -> Result<usize, WireError> {
    let n = n as usize;
    if n.saturating_mul(min_bytes_each) > c.remaining() {
        return Err(WireError::Truncated);
    }
    Ok(n)
}

/// Decodes one configuration from the cursor, replaying its placement.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, an instruction word does
/// not decode, the replayed placement diverges from the recorded rows,
/// or the rebuilt configuration fails [`Configuration::validate`].
pub fn decode_config(c: &mut Cursor<'_>) -> Result<Configuration, WireError> {
    let entry_pc = c.u32()?;
    let shape = read_shape(c)?;
    let mut config = Configuration::new(entry_pc, shape);

    let n_live_raw = c.u32()?;
    let n_live = checked_count(c, n_live_raw, 1)?;
    for _ in 0..n_live {
        let loc = read_loc(c)?;
        config.note_live_in(loc);
    }
    let n_wb_raw = c.u32()?;
    let n_wb = checked_count(c, n_wb_raw, 2)?;
    for _ in 0..n_wb {
        let loc = read_loc(c)?;
        let depth = c.u8()?;
        config.note_writeback(loc, depth);
    }
    let n_segments_raw = c.u32()?;
    let n_segments = checked_count(c, n_segments_raw, 6)?;
    for _ in 0..n_segments {
        let depth = c.u8()?;
        let exit_pc = c.u32()?;
        let branch = match c.u8()? {
            0 => None,
            1 => {
                let pc = c.u32()?;
                let word = c.u32()?;
                let inst = decode(word).map_err(|e| {
                    WireError::Corrupt(format!("branch word {word:#010x} at {pc:#x}: {e}"))
                })?;
                let predicted_taken = c.u8()? != 0;
                let taken_pc = c.u32()?;
                let fall_pc = c.u32()?;
                Some(SegmentBranch {
                    pc,
                    inst,
                    predicted_taken,
                    taken_pc,
                    fall_pc,
                })
            }
            other => return Err(WireError::Corrupt(format!("branch tag {other}"))),
        };
        let n_ops_raw = c.u32()?;
        let n_ops = checked_count(c, n_ops_raw, 12)?;
        for _ in 0..n_ops {
            let pc = c.u32()?;
            let word = c.u32()?;
            let row = c.u32()?;
            let inst = decode(word).map_err(|e| {
                WireError::Corrupt(format!("instruction word {word:#010x} at {pc:#x}: {e}"))
            })?;
            let (placed_row, _) = config.place(pc, inst, depth, row as usize).map_err(|e| {
                WireError::Corrupt(format!("placement replay at {pc:#x} row {row}: {e}"))
            })?;
            if placed_row != row {
                return Err(WireError::Corrupt(format!(
                    "placement replay at {pc:#x}: row {placed_row} != recorded {row}"
                )));
            }
        }
        config.finish_segment(depth, branch, exit_pc);
    }
    config
        .validate()
        .map_err(|e| WireError::Corrupt(format!("rebuilt configuration invalid: {e}")))?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{AluOp, Instruction, Reg};

    fn sample_config() -> Configuration {
        let mut c = Configuration::new(0x40_0000, ArrayShape::config2());
        let alu = |rd, rs, rt| Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt,
        };
        c.place(0x40_0000, alu(Reg::T0, Reg::A0, Reg::A1), 0, 0)
            .unwrap();
        c.place(0x40_0004, alu(Reg::T1, Reg::T0, Reg::A1), 0, 1)
            .unwrap();
        let branch = Instruction::Branch {
            cond: dim_mips::BranchCond::Ne,
            rs: Reg::T1,
            rt: Reg::ZERO,
            offset: -3,
        };
        c.place(0x40_0008, branch, 0, 2).unwrap();
        c.note_live_in(DataLoc::Gpr(Reg::A0));
        c.note_live_in(DataLoc::Gpr(Reg::A1));
        c.note_writeback(DataLoc::Gpr(Reg::T0), 0);
        c.note_writeback(DataLoc::Gpr(Reg::T1), 0);
        c.finish_segment(
            0,
            Some(SegmentBranch {
                pc: 0x40_0008,
                inst: branch,
                predicted_taken: true,
                taken_pc: 0x40_0000,
                fall_pc: 0x40_000c,
            }),
            0x40_000c,
        );
        c.place(0x40_0000, alu(Reg::T2, Reg::T1, Reg::A0), 1, 3)
            .unwrap();
        c.note_writeback(DataLoc::Gpr(Reg::T2), 1);
        c.finish_segment(1, None, 0x40_0004);
        c
    }

    #[test]
    fn config_roundtrips() {
        let config = sample_config();
        let mut bytes = Vec::new();
        encode_config(&config, &mut bytes);
        let mut cursor = Cursor::new(&bytes);
        let back = decode_config(&mut cursor).unwrap();
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(back, config);
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let config = sample_config();
        let mut bytes = Vec::new();
        encode_config(&config, &mut bytes);
        for len in 0..bytes.len() {
            let mut cursor = Cursor::new(&bytes[..len]);
            assert!(
                decode_config(&mut cursor).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn corrupt_instruction_word_detected() {
        let config = sample_config();
        let mut bytes = Vec::new();
        encode_config(&config, &mut bytes);
        // Flip bits of an op's instruction word (shape + counts precede).
        let last4 = bytes.len() - 8; // ...[word][row] of the final op
        bytes[last4..last4 + 4].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let mut cursor = Cursor::new(&bytes);
        assert!(decode_config(&mut cursor).is_err());
    }

    #[test]
    fn fnv_distinguishes_flips() {
        let a = b"the quick brown fox";
        let mut b = a.to_vec();
        b[3] ^= 1;
        assert_ne!(fnv1a64(a), fnv1a64(&b));
    }
}
