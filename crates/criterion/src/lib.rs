//! Offline, dependency-free drop-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The real `criterion` crate cannot be vendored in this build
//! environment (no registry access). This shim times each benchmark with
//! `std::time::Instant` over a fixed warm-up plus measurement phase and
//! prints a one-line summary (median iteration time and derived
//! throughput). It keeps `cargo bench` runnable and comparable across
//! builds; it does not attempt criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms elapsed (at least once).
        let warm_start = Instant::now();
        let mut iters_per_sample: u32 = 0;
        loop {
            black_box(routine());
            iters_per_sample += 1;
            if warm_start.elapsed() > Duration::from_millis(50) || iters_per_sample >= 1000 {
                break;
            }
        }
        let iters_per_sample = iters_per_sample.max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used to derive throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                format!(
                    "  ({:.1} Melem/s)",
                    n as f64 / median.as_nanos() as f64 * 1e3
                )
            }
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / median.as_nanos() as f64 * 1e9 / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{:<32} median {:>12.3?}{}", self.name, id, median, rate);
        self
    }

    /// Ends the group (output is already printed; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares the benchmark functions of one bench target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}
