//! Offline, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The real `proptest` crate cannot be vendored in this build environment
//! (no registry access), so this shim provides the same surface —
//! [`Strategy`], [`prelude`], `proptest!`, `prop_oneof!`, the
//! `prop_assert*` macros, `prop::collection::vec`, `prop::sample::select`
//! — backed by a deterministic PRNG. Failing cases are reported with
//! their generated inputs; shrinking is not implemented (the failing
//! inputs are printed verbatim instead).
//!
//! Determinism: every test function derives its seed from its own name,
//! so failures reproduce across runs. Set `PROPTEST_CASES` to override
//! the per-test case count globally.

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration for a `proptest!` block (subset of the real crate's
    /// `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// Applies the `PROPTEST_CASES` environment override, if set.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Error type of a `proptest!` body (bodies may `return Ok(())`
    /// early or fail via `prop_assert!`, which panics in this shim).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    /// Result type a `proptest!` body is wrapped into.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// A small, fast, deterministic PRNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (FNV-1a), so each test gets a
        /// stable but distinct stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A value generator (non-shrinking subset of proptest's trait).
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (cheaply cloneable).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> OneOf<T> {
        /// Uniform choice.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            OneOf::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted choice; weights need not be normalized.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            OneOf { arms, total }
        }
    }

    impl<T: Debug> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u128) as u64;
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("nonempty").1.generate(rng)
        }
    }

    /// String-from-regex strategies: `&str` patterns generate matching
    /// strings, supporting the subset `literal`, `.`, `[a-z0-9]` classes,
    /// and the quantifiers `{m,n}`, `{n}`, `*`, `+`, `?`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (atom, (lo, hi)) in &atoms {
                let n = lo + rng.below((hi - lo + 1) as u128) as usize;
                for _ in 0..n {
                    out.push(atom.generate(rng));
                }
            }
            out
        }
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Dot,
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn generate(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Literal(c) => *c,
                Atom::Dot => {
                    // Mostly printable ASCII, occasionally any scalar.
                    if rng.below(8) == 0 {
                        char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
                    } else {
                        char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
                    }
                }
                Atom::Class(ranges) => {
                    let total: u128 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u128) - (*a as u128) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    for (a, b) in ranges {
                        let span = (*b as u128) - (*a as u128) + 1;
                        if pick < span {
                            return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
                        }
                        pick -= span;
                    }
                    ranges.first().map_or('?', |(a, _)| *a)
                }
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, (usize, usize))> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    for d in chars.by_ref() {
                        match d {
                            ']' => break,
                            '-' if prev.is_some() => {
                                prev = Some('-'); // resolved on the next char
                            }
                            d => {
                                if prev == Some('-') {
                                    if let Some((_, hi)) = ranges.last_mut() {
                                        *hi = d;
                                        prev = None;
                                        continue;
                                    }
                                }
                                ranges.push((d, d));
                                prev = Some(d);
                            }
                        }
                    }
                    Atom::Class(ranges)
                }
                other => Atom::Literal(other),
            };
            let quant = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&d| d != '}').collect();
                    let parts: Vec<&str> = spec.splitn(2, ',').collect();
                    let lo: usize = parts[0].trim().parse().unwrap_or(0);
                    let hi = parts.get(1).map_or(lo, |s| s.trim().parse().unwrap_or(lo));
                    (lo, hi.max(lo))
                }
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push((atom, quant));
        }
        atoms
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + rng.below(span as u128) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates one arbitrary value. Implementations bias lightly
        /// toward boundary values (0, 1, MIN, MAX).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-8 boundary bias, otherwise uniform.
                    if rng.next_u64() & 7 == 0 {
                        match rng.next_u64() & 3 {
                            0 => 0 as $t,
                            1 => 1 as $t,
                            2 => <$t>::MAX,
                            _ => <$t>::MIN,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy with element strategy `element` and a length in
    /// `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Uniform choice from a static slice.
    #[derive(Debug, Clone, Copy)]
    pub struct Select<T: 'static>(&'static [T]);

    impl<T: Clone + Debug + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u128) as usize].clone()
        }
    }

    /// Picks uniformly from `items` (which must be nonempty).
    pub fn select<T: Clone + Debug + 'static>(items: &'static [T]) -> Select<T> {
        assert!(!items.is_empty(), "select from empty slice");
        Select(items)
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced module tree (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs. On failure the
/// generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.resolved_cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        panic!(
                            "proptest {}: case {} rejected ({:?}) with inputs: {}",
                            stringify!($name), case, e, desc
                        );
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest {}: case {} failed with inputs: {}",
                            stringify!($name), case, desc
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        let s = 3u32..17;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((3..17).contains(&v));
        }
        let neg = -5i16..=5;
        for _ in 0..1000 {
            let v = neg.generate(&mut rng);
            assert!((-5..=5).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_and_oneof_compose(
            xs in prop::collection::vec((0u8..4, any::<bool>()), 1..10),
            pick in prop_oneof![1 => Just(1u32), 1 => Just(2), 5 => Just(3)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|(a, _)| *a < 4));
            prop_assert!((1..=3).contains(&pick));
        }
    }
}
