//! Cross-layer observability guarantees:
//!
//! * probing is behavior-neutral — a recording run is cycle- and
//!   state-identical to a NullProbe run (property-tested);
//! * the recorded event stream is internally consistent with the
//!   simulator's own counters;
//! * a JSONL trace replays to the exact `DimStats` of the live run;
//! * the cycle profiler's column sums equal the total cycle count.

use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips::asm::assemble;
use dim_mips::Reg;
use dim_mips_sim::{CacheConfig, CacheSim, Machine};
use dim_obs::{replay, CycleProfiler, JsonlSink, Probe, RecordingProbe};
use proptest::prelude::*;

const MAX_INSTRUCTIONS: u64 = 10_000_000;

/// A loop with a data-dependent branch (misspeculation exercise), memory
/// traffic, and a multiply — parameterized so proptest can vary the
/// dynamic behavior.
fn workload_src(iters: u32, mask: u32, stride: u32) -> String {
    format!(
        "
        .data
        buf: .space 2048
        .text
        main: li $s0, {iters}
              la $s1, buf
              li $v0, 0
        loop: andi $t1, $s0, {mask}
              beqz $t1, skip
              addiu $v0, $v0, 3
              xor  $t2, $v0, $s0
              addu $v0, $v0, $t2
        skip: andi $t3, $s0, 127
              sll  $t4, $t3, 2
              addu $t5, $s1, $t4
              sw   $v0, 0($t5)
              lw   $t6, 0($t5)
              mul  $t7, $t6, $s0
              addu $v0, $v0, $t7
              addiu $s0, $s0, -{stride}
              bgtz $s0, loop
              break 0"
    )
}

fn build_system(src: &str, slots: usize, spec: bool, with_caches: bool) -> System {
    let program = assemble(src).expect("assembles");
    let mut machine = Machine::load(&program);
    if with_caches {
        machine.icache = Some(CacheSim::new(CacheConfig::icache_4k()));
        machine.dcache = Some(CacheSim::new(CacheConfig::dcache_4k()));
    }
    System::new(
        machine,
        SystemConfig::new(ArrayShape::config2(), slots, spec),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Observation must never perturb the simulation: architectural
    /// state, cycle counts, and every accelerator counter are identical
    /// between an unprobed run and a recording run.
    #[test]
    fn recording_probe_never_changes_behavior(
        iters in 1u32..200,
        mask in prop_oneof![Just(0u32), Just(1), Just(3), Just(7)],
        stride in 1u32..3,
        slots in prop_oneof![Just(0usize), Just(16), Just(64)],
        spec in any::<bool>(),
        with_caches in any::<bool>(),
    ) {
        let src = workload_src(iters, mask, stride);
        let mut plain = build_system(&src, slots, spec, with_caches);
        let mut probed = build_system(&src, slots, spec, with_caches);
        let mut recorder = RecordingProbe::new();

        let r1 = plain.run(MAX_INSTRUCTIONS).expect("plain run");
        let r2 = probed.run_probed(MAX_INSTRUCTIONS, &mut recorder).expect("probed run");
        prop_assert_eq!(r1, r2);

        for r in Reg::all() {
            prop_assert_eq!(plain.machine().cpu.reg(r), probed.machine().cpu.reg(r));
        }
        prop_assert_eq!(plain.machine().stats, probed.machine().stats);
        prop_assert_eq!(plain.stats(), probed.stats());
        prop_assert_eq!(plain.total_cycles(), probed.total_cycles());

        // The event stream accounts for every cycle and every retire.
        let stats = probed.stats();
        let mstats = &probed.machine().stats;
        prop_assert_eq!(recorder.total_cycles(),
                        mstats.cycles + stats.total_array_cycles());
        prop_assert_eq!(recorder.count("retire") as u64, mstats.instructions);
        prop_assert_eq!(recorder.count("array_invoke") as u64, stats.array_invocations);
        prop_assert_eq!(recorder.count("rcache_flush") as u64, stats.config_flushes);
        prop_assert_eq!(recorder.count("rcache_insert") as u64, stats.configs_built);
        let (hits, misses) = probed.cache().hit_miss();
        prop_assert_eq!(recorder.count("rcache_hit") as u64, hits);
        prop_assert_eq!(recorder.count("rcache_miss") as u64, misses);
    }

    /// The JSONL trace round-trips to the exact live `DimStats`.
    #[test]
    fn jsonl_trace_replays_to_identical_stats(
        iters in 1u32..200,
        mask in prop_oneof![Just(0u32), Just(1), Just(3)],
        slots in prop_oneof![Just(16usize), Just(64)],
        with_caches in any::<bool>(),
    ) {
        let src = workload_src(iters, mask, 1);
        let mut system = build_system(&src, slots, true, with_caches);
        let bits = system.stored_bits_per_config();
        let mut sink = JsonlSink::new(Vec::new(), "prop", bits);
        system.run_probed(MAX_INSTRUCTIONS, &mut sink).expect("runs");
        sink.finish();
        let (bytes, io_err) = sink.into_inner();
        prop_assert!(io_err.is_none());

        let trace = replay::read_trace(&String::from_utf8(bytes).unwrap())
            .expect("trace validates");
        let s = trace.summary;
        let live = system.stats();

        prop_assert_eq!(s.array_invocations, live.array_invocations);
        prop_assert_eq!(s.array_instructions, live.array_instructions);
        prop_assert_eq!(s.array_exec_cycles, live.array_exec_cycles);
        prop_assert_eq!(s.reconfig_stall_cycles, live.reconfig_stall_cycles);
        prop_assert_eq!(s.writeback_tail_cycles, live.writeback_tail_cycles);
        prop_assert_eq!(s.array_loads, live.array_loads);
        prop_assert_eq!(s.array_stores, live.array_stores);
        prop_assert_eq!(s.full_hits, live.full_hits);
        prop_assert_eq!(s.misspeculations, live.misspeculations);
        prop_assert_eq!(s.config_flushes, live.config_flushes);
        prop_assert_eq!(s.configs_built, live.configs_built);
        prop_assert_eq!(s.translated_instructions, live.translated_instructions);
        prop_assert_eq!(s.array_occupied_rows, live.array_occupied_rows);
        prop_assert_eq!(s.rcache_evictions_live, live.rcache_evictions_live);
        prop_assert_eq!(s.rcache_evictions_dead, live.rcache_evictions_dead);
        // Bit counters reconstruct exactly from the header's
        // bits_per_config (taken from the live system's encoding).
        prop_assert_eq!(s.cache_bits_read, live.cache_bits_read);
        prop_assert_eq!(s.cache_bits_written, live.cache_bits_written);

        prop_assert_eq!(s.retired, system.machine().stats.instructions);
        prop_assert_eq!(s.pipeline_cycles, system.machine().stats.cycles);
        prop_assert_eq!(s.total_cycles(), system.total_cycles());
    }

    /// The profiler's per-block columns sum to the total cycle count
    /// exactly — no cycle is lost or double-counted.
    #[test]
    fn profile_columns_sum_to_total_cycles(
        iters in 1u32..200,
        mask in prop_oneof![Just(0u32), Just(3)],
        slots in prop_oneof![Just(0usize), Just(64)],
        with_caches in any::<bool>(),
    ) {
        let src = workload_src(iters, mask, 1);
        let mut system = build_system(&src, slots, true, with_caches);
        let mut profiler = CycleProfiler::new();
        system.run_probed(MAX_INSTRUCTIONS, &mut profiler).expect("runs");
        let profile = profiler.into_profile();

        let mstats = &system.machine().stats;
        let astats = system.stats();
        prop_assert_eq!(profile.total_cycles(), system.total_cycles());
        prop_assert_eq!(
            profile.totals.pipeline + profile.totals.i_stall + profile.totals.d_stall,
            mstats.cycles
        );
        prop_assert_eq!(profile.totals.reconfig_stall, astats.reconfig_stall_cycles);
        prop_assert_eq!(profile.totals.array_exec, astats.array_exec_cycles);
        prop_assert_eq!(profile.totals.writeback_tail, astats.writeback_tail_cycles);
        prop_assert_eq!(profile.totals.retired, mstats.instructions);

        // The counter-derived breakdown agrees with the profiler column
        // for column — same attribution model, two independent sources.
        let breakdown = system.cycle_breakdown();
        prop_assert_eq!(breakdown.total(), system.total_cycles());
        prop_assert_eq!(breakdown.pipeline, profile.totals.pipeline);
        prop_assert_eq!(breakdown.i_stall, profile.totals.i_stall);
        prop_assert_eq!(breakdown.d_stall, profile.totals.d_stall);
        prop_assert_eq!(breakdown.reconfig_stall, profile.totals.reconfig_stall);
        prop_assert_eq!(breakdown.array_exec, profile.totals.array_exec);
        prop_assert_eq!(breakdown.writeback_tail, profile.totals.writeback_tail);
        if with_caches {
            prop_assert!(breakdown.i_stall + breakdown.d_stall > 0);
        }
    }
}

/// The eviction split at the capacity boundary: a cache sized to hold
/// every region never evicts (both counters zero); one slot short,
/// displacements begin, the live/dead split accounts for every eviction
/// the cache reports, and the hot loop's reused config counts as a
/// *live* casualty.
#[test]
fn eviction_split_tracks_capacity_boundary() {
    let src = "
        main: li $s0, 30
              li $v0, 0
        l1:   xor $t0, $v0, $s0
              addu $v0, $v0, $t0
              sll $t1, $v0, 1
              addu $v0, $v0, $t1
              addiu $s0, $s0, -1
              bnez $s0, l1
              li $s1, 30
        l2:   srl $t2, $v0, 2
              xor $v0, $v0, $t2
              addiu $v0, $v0, 7
              addiu $s1, $s1, -1
              bnez $s1, l2
              break 0";
    let run = |slots: usize| {
        let mut system = build_system(src, slots, true, false);
        system.run(MAX_INSTRUCTIONS).expect("runs");
        system
    };

    // Roomy: every region stays resident.
    let roomy = run(64);
    assert_eq!(roomy.cache().evictions(), 0);
    assert_eq!(roomy.stats().rcache_evictions_live, 0);
    assert_eq!(roomy.stats().rcache_evictions_dead, 0);
    let resident = roomy.cache().len();
    assert!(resident >= 2, "needs at least two regions to displace");

    // Exactly at capacity: still nothing evicts.
    let exact = run(resident);
    assert_eq!(exact.cache().evictions(), 0);
    assert_eq!(exact.stats().rcache_evictions_live, 0);
    assert_eq!(exact.stats().rcache_evictions_dead, 0);

    // One short: displacement starts and the split stays exhaustive.
    let tight = run(resident - 1);
    let stats = tight.stats();
    assert!(tight.cache().evictions() > 0);
    assert_eq!(
        stats.rcache_evictions_live + stats.rcache_evictions_dead,
        tight.cache().evictions()
    );

    // A single slot forces the hot loop's config — hit on every
    // iteration — to be displaced when the next region arrives, so at
    // least one eviction must be classified live.
    let single = run(1);
    let stats = single.stats();
    assert_eq!(
        stats.rcache_evictions_live + stats.rcache_evictions_dead,
        single.cache().evictions()
    );
    assert!(
        stats.rcache_evictions_live >= 1,
        "the hot loop's config was reused before being displaced: {stats:?}"
    );
}

/// The bounded in-memory trace sees the same events as an external sink
/// (one event path) and reports drops in its display.
#[test]
fn trace_and_probe_share_one_event_path() {
    let src = workload_src(150, 0, 1);
    let mut system = build_system(&src, 64, true, false);
    system.enable_trace(4);
    let mut recorder = RecordingProbe::new();
    system
        .run_probed(MAX_INSTRUCTIONS, &mut recorder)
        .expect("runs");

    let trace = system.trace().expect("tracing enabled");
    let invocations = system.stats().array_invocations;
    assert!(invocations > 4, "workload must invoke the array repeatedly");
    assert_eq!(trace.len() as u64 + trace.dropped(), invocations);
    assert!(trace.to_string().contains("earlier invocations dropped"));

    // The retained tail matches the recorder's last events exactly.
    let recorded: Vec<_> = recorder
        .events
        .iter()
        .filter_map(|e| match e {
            dim_obs::ProbeEvent::ArrayInvoke(inv) => Some(*inv),
            _ => None,
        })
        .collect();
    let tail = &recorded[recorded.len() - trace.len()..];
    for (traced, inv) in system.trace().unwrap().events().zip(tail) {
        assert_eq!(traced.entry_pc, inv.entry_pc);
        assert_eq!(traced.cycles, inv.total_cycles());
        assert_eq!(traced.exit_pc, inv.exit_pc);
        assert_eq!(traced.misspeculated, inv.misspeculated);
    }
}
