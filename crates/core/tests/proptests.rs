//! Property tests for the DIM engine internals: dependence-driven
//! allocation preserves RAW order, the predictor behaves like a 2-bit
//! counter, and the reconfiguration cache is a bounded FIFO.

use dim_core::{BimodalPredictor, DependenceTable, ReconfCache};
use dim_mips::{AluOp, DataLoc, Instruction, MemWidth, Reg};
use proptest::prelude::*;

fn any_inst() -> impl Strategy<Value = Instruction> {
    let reg = (1u8..32).prop_map(|i| Reg::new(i).unwrap());
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs, rt)| Instruction::Alu {
            op: AluOp::Xor,
            rd,
            rs,
            rt
        }),
        (reg.clone(), reg.clone()).prop_map(|(rt, base)| Instruction::Load {
            width: MemWidth::Word,
            signed: false,
            rt,
            base,
            offset: 0
        }),
        (reg.clone(), reg).prop_map(|(rt, base)| Instruction::Store {
            width: MemWidth::Word,
            rt,
            base,
            offset: 4
        }),
    ]
}

proptest! {
    /// Greedy allocation at `min_row` must never place a reader at or
    /// above its producer's row, and memory ops must be row-ordered.
    #[test]
    fn raw_and_memory_order_preserved(insts in prop::collection::vec(any_inst(), 1..64)) {
        let mut table = DependenceTable::new();
        let mut rows = Vec::new();
        for inst in &insts {
            let row = table.min_row(inst);
            table.record(inst, row);
            rows.push(row);
        }
        // Check RAW pairs against the recorded placement.
        let mut last_writer: [Option<usize>; DataLoc::COUNT] = [None; DataLoc::COUNT];
        let mut last_mem_row: Option<u32> = None;
        for (j, inst) in insts.iter().enumerate() {
            for src in inst.reads().iter() {
                if let Some(i) = last_writer[src.dense_index()] {
                    prop_assert!(
                        rows[i] < rows[j],
                        "op {j} reads {src} produced by op {i} in the same or later row"
                    );
                }
            }
            if inst.is_mem() {
                if let Some(m) = last_mem_row {
                    prop_assert!(rows[j] >= m, "memory op {j} placed above an earlier one");
                }
                last_mem_row = Some(last_mem_row.map_or(rows[j], |m| m.max(rows[j])));
            }
            for dst in inst.writes().iter() {
                last_writer[dst.dense_index()] = Some(j);
            }
        }
    }

    /// The predictor saturates after any three identical outcomes and
    /// never claims saturation against the last two outcomes.
    #[test]
    fn predictor_counter_properties(outcomes in prop::collection::vec(any::<bool>(), 1..64)) {
        let mut p = BimodalPredictor::new();
        for w in outcomes.windows(3) {
            p.update(0x100, w[0]);
            if w[0] == w[1] && w[1] == w[2] {
                p.update(0x100, w[1]);
                p.update(0x100, w[2]);
                prop_assert_eq!(p.saturated_direction(0x100), Some(w[0]));
                // Rewind is impossible; just continue feeding.
            } else {
                p.update(0x100, w[1]);
                p.update(0x100, w[2]);
            }
            // Saturation, if claimed, must match the most recent outcome
            // at least half the time semantics: a strongly-taken counter
            // cannot exist right after two not-takens.
            if w[1] == w[2] {
                if let Some(dir) = p.saturated_direction(0x100) {
                    prop_assert_eq!(dir, w[2]);
                }
            }
        }
    }

    /// The cache never exceeds capacity and evicts strictly in insertion
    /// order.
    #[test]
    fn cache_capacity_and_fifo(
        slots in 1usize..8,
        pcs in prop::collection::vec(0u32..16, 1..64),
    ) {
        use dim_cgra::{ArrayShape, Configuration};
        let mut cache = ReconfCache::new(slots);
        let mut model: Vec<u32> = Vec::new(); // insertion order of live pcs
        for &pc4 in &pcs {
            let pc = pc4 * 4;
            let mut c = Configuration::new(pc, ArrayShape::config1());
            let add = Instruction::Alu { op: AluOp::Addu, rd: Reg::T0, rs: Reg::A0, rt: Reg::A1 };
            c.place(pc, add, 0, 0).unwrap();
            let existed = model.contains(&pc);
            cache.insert(c);
            if !existed {
                model.push(pc);
                if model.len() > slots {
                    model.remove(0);
                }
            }
            prop_assert!(cache.len() <= slots);
            // Model agreement: exactly the modelled pcs are present.
            for &p in &model {
                prop_assert!(cache.peek(p).is_some(), "pc {p:#x} missing");
            }
            prop_assert_eq!(cache.len(), model.len());
        }
    }
}
