//! The warm-start contract of rcache snapshots: restoring a snapshot
//! into a fresh system that resumes from the saved machine state
//! produces, counter for counter, exactly the continuation the original
//! system executed after the save.
//!
//! The snapshot may be taken at *any* instruction boundary — including
//! mid-loop and mid-translation — so these tests sweep the save point,
//! the cache capacity (down to a single slot, where warm-up state is
//! dominated by evictions) and the speculation policy.

use dim_cgra::ArrayShape;
use dim_core::{DimStats, System, SystemConfig};
use dim_mips::asm::{assemble, Program};
use dim_mips_sim::Machine;
use proptest::prelude::*;

/// Two hot loops with distinct bodies, parameterized by trip counts so
/// the save point can land in either loop or the glue between them.
fn two_loop_program(iters1: u32, iters2: u32) -> Program {
    let src = format!(
        "
        main: li $s0, {iters1}
              li $v0, 0
        l1:   addu $v0, $v0, $s0
              xor  $t1, $v0, $s0
              addu $v0, $v0, $t1
              addiu $s0, $s0, -1
              bnez $s0, l1
              li $s1, {iters2}
        l2:   sll $t2, $v0, 2
              addu $v0, $v0, $t2
              srl  $t3, $v0, 3
              xor  $v0, $v0, $t3
              addiu $s1, $s1, -1
              bnez $s1, l2
              break 0"
    );
    assemble(&src).unwrap()
}

/// Field-wise `a - b`; panics on underflow, which would itself signal
/// that the warm run did work the cold continuation never did.
fn stats_delta(a: &DimStats, b: &DimStats) -> DimStats {
    DimStats {
        array_invocations: a.array_invocations - b.array_invocations,
        array_instructions: a.array_instructions - b.array_instructions,
        array_exec_cycles: a.array_exec_cycles - b.array_exec_cycles,
        reconfig_stall_cycles: a.reconfig_stall_cycles - b.reconfig_stall_cycles,
        writeback_tail_cycles: a.writeback_tail_cycles - b.writeback_tail_cycles,
        array_loads: a.array_loads - b.array_loads,
        array_stores: a.array_stores - b.array_stores,
        full_hits: a.full_hits - b.full_hits,
        misspeculations: a.misspeculations - b.misspeculations,
        config_flushes: a.config_flushes - b.config_flushes,
        configs_built: a.configs_built - b.configs_built,
        translated_instructions: a.translated_instructions - b.translated_instructions,
        cache_bits_read: a.cache_bits_read - b.cache_bits_read,
        cache_bits_written: a.cache_bits_written - b.cache_bits_written,
        array_occupied_rows: a.array_occupied_rows - b.array_occupied_rows,
        rcache_evictions_live: a.rcache_evictions_live - b.rcache_evictions_live,
        rcache_evictions_dead: a.rcache_evictions_dead - b.rcache_evictions_dead,
    }
}

const BUDGET: u64 = 10_000_000;

/// Runs the property for one parameter point and returns an error string
/// on the first divergence.
fn check_warm_matches_cold(
    iters1: u32,
    iters2: u32,
    warmup: u64,
    slots: usize,
    speculation: bool,
) -> Result<(), String> {
    let program = two_loop_program(iters1, iters2);
    let config = SystemConfig::new(ArrayShape::config1(), slots, speculation);

    // Cold run to the save point.
    let mut cold = System::new(Machine::load(&program), config);
    cold.run(warmup).map_err(|e| e.to_string())?;
    let mark = *cold.stats();
    let machine_at_mark = cold.machine().clone();
    let bytes = cold.save_rcache();

    // Cold continuation to completion.
    cold.run(BUDGET).map_err(|e| e.to_string())?;
    let cold_delta = stats_delta(cold.stats(), &mark);

    // Warm restart: fresh system, saved machine state, loaded snapshot.
    let mut warm = System::new(machine_at_mark, config);
    warm.load_rcache(&bytes).map_err(|e| e.to_string())?;
    warm.run(BUDGET).map_err(|e| e.to_string())?;

    if &cold_delta != warm.stats() {
        return Err(format!(
            "DimStats diverged after warmup={warmup} slots={slots} \
             spec={speculation}:\ncold delta {cold_delta:#?}\nwarm {:#?}",
            warm.stats()
        ));
    }
    if cold.machine().cpu != warm.machine().cpu {
        return Err(format!(
            "final CPU state diverged after warmup={warmup} slots={slots} spec={speculation}"
        ));
    }
    if cold.machine().stats.cycles != warm.machine().stats.cycles {
        return Err(format!(
            "processor cycles diverged: cold {} vs warm {}",
            cold.machine().stats.cycles,
            warm.machine().stats.cycles
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A warm-started run produces DimStats identical to the equivalent
    /// cold run's post-save continuation, and the two executions retire
    /// the same instructions into the same final machine state.
    #[test]
    fn warm_restart_matches_cold_continuation(
        iters1 in 8u32..48,
        iters2 in 8u32..48,
        warmup in 1u64..600,
        slots in prop_oneof![Just(1usize), Just(2), Just(4), Just(64)],
        speculation in any::<bool>(),
    ) {
        if let Err(msg) = check_warm_matches_cold(iters1, iters2, warmup, slots, speculation) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// The deterministic edge cases the sweep above may not pin: saving
/// before anything was translated, and saving after the program halted.
#[test]
fn warm_restart_matches_at_trivial_save_points() {
    // Save at instruction 1: the snapshot is essentially empty.
    check_warm_matches_cold(16, 16, 1, 64, true).unwrap();
    // Save after completion: the continuation is empty on both sides.
    check_warm_matches_cold(16, 16, BUDGET, 64, true).unwrap();
}
