//! Fabric-heat conservation laws, enforced end-to-end:
//!
//! * `heat.exec_cycles + heat.residual_cycles` equals the system's
//!   array-exec cycle attribution **exactly** — the row-window model
//!   and the cycle model charge from the same state;
//! * per unit class, busy thirds never exceed capacity thirds on a
//!   finite shape, run-level and row-level;
//! * per-row heat sums back to the run totals (nothing lost to the
//!   overflow bucket or double-counted);
//! * confirmed operations equal the instructions retired through the
//!   array.
//!
//! Checked property-style on a parameterized synthetic kernel and
//! exhaustively on all 18 bundled workloads.

use dim_cgra::{ArrayShape, FabricHeat, UNIT_CLASSES};
use dim_core::{System, SystemConfig};
use dim_mips::asm::assemble;
use dim_mips_sim::Machine;
use dim_workloads::{suite, validate, Scale};
use proptest::prelude::*;

const MAX_INSTRUCTIONS: u64 = 10_000_000;

/// Every conservation law the heat accumulator promises, against the
/// system that fed it.
fn assert_heat_laws(system: &System, label: &str) {
    let heat: &FabricHeat = system.fabric_heat();
    let breakdown = system.cycle_breakdown();
    let stats = system.stats();

    // Exact reconciliation with the cycle model.
    assert_eq!(
        heat.exec_cycles + heat.residual_cycles,
        breakdown.array_exec,
        "{label}: heat cycles diverge from the charged array-exec span"
    );
    assert_eq!(
        heat.invocations, stats.array_invocations,
        "{label}: heat missed an invocation"
    );

    // Busy can never exceed capacity, per class and in total — on
    // finite shapes; the infinite shape records capacity 0 (utilization
    // undefined) while busy thirds still accumulate.
    let shape = system.config().shape;
    if !shape.is_infinite() {
        for c in 0..UNIT_CLASSES {
            assert!(
                heat.busy_thirds[c] <= heat.capacity_thirds[c],
                "{label}: class {c} busy {} exceeds capacity {}",
                heat.busy_thirds[c],
                heat.capacity_thirds[c]
            );
        }
    }
    if let Some(util) = heat.fabric_util() {
        assert!(
            (0.0..=1.0).contains(&util),
            "{label}: util {util} out of range"
        );
    }
    if let Some(sat) = heat.writeback_saturation() {
        assert!(
            (0.0..=1.0).contains(&sat),
            "{label}: wb sat {sat} out of range"
        );
    }

    // Row-level heat reconciles with the run totals: summed busy thirds
    // and issued ops per class match, including the overflow bucket,
    // and no row is busier than its physical units over its windows.
    let per_row_units: [u64; UNIT_CLASSES] = [
        shape.units_per_row(dim_mips::FuClass::Alu) as u64,
        shape.units_per_row(dim_mips::FuClass::Multiplier) as u64,
        shape.units_per_row(dim_mips::FuClass::LoadStore) as u64,
    ];
    let mut busy = [0u64; UNIT_CLASSES];
    let mut issued = [0u64; UNIT_CLASSES];
    let mut squashed = 0u64;
    for row in heat
        .rows()
        .iter()
        .chain(std::iter::once(heat.overflow_row()))
    {
        for c in 0..UNIT_CLASSES {
            busy[c] += row.busy_thirds[c];
            issued[c] += row.issued[c];
            if !shape.is_infinite() {
                assert!(
                    row.busy_thirds[c] <= per_row_units[c] * row.active_thirds,
                    "{label}: row busy exceeds its physical units over its windows"
                );
            }
        }
        squashed += row.squashed;
    }
    assert_eq!(busy, heat.busy_thirds, "{label}: per-row busy loses thirds");
    assert_eq!(issued, heat.issued_ops, "{label}: per-row issued loses ops");
    assert_eq!(
        squashed, heat.squashed_ops,
        "{label}: per-row squash count drifts"
    );

    // Confirmed operations are exactly the instructions the array
    // retired on the system's behalf.
    assert_eq!(
        issued.iter().sum::<u64>(),
        stats.array_instructions,
        "{label}: issued ops disagree with array-retired instructions"
    );
}

/// A loop with a data-dependent branch, memory traffic, and a multiply,
/// parameterized for proptest (same shape as the observability tests).
fn workload_src(iters: u32, mask: u32, stride: u32) -> String {
    format!(
        "
        .data
        buf: .space 2048
        .text
        main: li $s0, {iters}
              la $s1, buf
              li $v0, 0
        loop: andi $t1, $s0, {mask}
              beqz $t1, skip
              addiu $v0, $v0, 3
              xor  $t2, $v0, $s0
              addu $v0, $v0, $t2
        skip: andi $t3, $s0, 127
              sll  $t4, $t3, 2
              addu $t5, $s1, $t4
              sw   $v0, 0($t5)
              lw   $t6, 0($t5)
              mul  $t7, $t6, $s0
              addu $v0, $v0, $t7
              addiu $s0, $s0, -{stride}
              bgtz $s0, loop
              break 0"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation holds for arbitrary dynamic behavior across shapes,
    /// cache pressure, and speculation settings — including the
    /// infinite shape, where capacity is 0 and utilization undefined.
    #[test]
    fn heat_conserves_on_synthetic_kernels(
        iters in 1u32..200,
        mask in prop_oneof![Just(0u32), Just(1), Just(3), Just(7)],
        stride in 1u32..3,
        slots in prop_oneof![Just(1usize), Just(16), Just(64)],
        spec in any::<bool>(),
        shape in prop_oneof![
            Just(ArrayShape::config1()),
            Just(ArrayShape::config2()),
            Just(ArrayShape::config3()),
            Just(ArrayShape::infinite()),
        ],
    ) {
        let src = workload_src(iters, mask, stride);
        let program = assemble(&src).expect("assembles");
        let mut system = System::new(
            Machine::load(&program),
            SystemConfig::new(shape, slots, spec),
        );
        system.run(MAX_INSTRUCTIONS).expect("runs");
        assert_heat_laws(&system, "synthetic");
        if shape.is_infinite() {
            prop_assert_eq!(system.fabric_heat().total_capacity_thirds(), 0);
            prop_assert_eq!(system.fabric_heat().fabric_util(), None);
        }
    }
}

/// The conservation laws hold on every bundled workload, and each
/// accelerated run still validates against its reference model.
#[test]
fn heat_conserves_on_all_bundled_workloads() {
    let mut exercised = 0;
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let mut system = System::new(
            Machine::load(&built.program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        system.run(built.max_steps).expect(spec.name);
        validate(system.machine(), &built).expect(spec.name);
        assert_heat_laws(&system, spec.name);
        if system.stats().array_invocations > 0 {
            exercised += 1;
        }
    }
    assert!(
        exercised >= 16,
        "only {exercised} workloads invoked the array — heat barely exercised"
    );
}

/// Merging per-shard accumulators (the sweep aggregation path) is
/// equivalent to accumulating in one.
#[test]
fn heat_merge_equals_single_accumulator() {
    let build = |iters| {
        let program = assemble(&workload_src(iters, 3, 1)).unwrap();
        let mut system = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        system.run(MAX_INSTRUCTIONS).unwrap();
        system
    };
    let a = build(60);
    let b = build(90);
    let mut merged = a.fabric_heat().clone();
    merged.merge(b.fabric_heat());
    assert_eq!(
        merged.exec_cycles + merged.residual_cycles,
        a.cycle_breakdown().array_exec + b.cycle_breakdown().array_exec
    );
    assert_eq!(
        merged.invocations,
        a.stats().array_invocations + b.stats().array_invocations
    );
    for c in 0..UNIT_CLASSES {
        assert!(merged.busy_thirds[c] <= merged.capacity_thirds[c]);
        assert_eq!(
            merged.busy_thirds[c],
            a.fabric_heat().busy_thirds[c] + b.fabric_heat().busy_thirds[c]
        );
    }
}
