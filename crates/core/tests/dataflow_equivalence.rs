//! Placement-correctness property: for random instruction sequences,
//! translating them with the DIM engine and then executing the resulting
//! configuration *from its placement* (row by row, renamed operands,
//! gated stores — `dim_cgra::execute_dataflow`) must produce exactly the
//! state sequential execution produces. This is the test that would
//! catch a dependence-table or placement bug even though the coupled
//! system's replay path wouldn't care.

use dim_cgra::{execute_dataflow, ArrayShape, EntryContext, ExecMemory};
use dim_core::{BimodalPredictor, Translator, TranslatorOptions};
use dim_mips::{AluImmOp, AluOp, DataLoc, Instruction, MemWidth, MulDivOp, Reg, ShiftOp};
use dim_mips_sim::{Effect, StepInfo};
use proptest::prelude::*;
use std::collections::HashMap;

/// Scratch memory base; generated addresses stay inside one page.
const MEM_BASE: u32 = 0x1000_0000;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

/// Destination registers exclude `$k0`, which the harness pins to the
/// scratch page base so memory ops stay aligned and in range.
fn dst_reg() -> impl Strategy<Value = Reg> {
    (0u8..31).prop_map(|i| Reg::new(if i >= 26 { i + 1 } else { i }).unwrap())
}

fn any_inst() -> impl Strategy<Value = Instruction> {
    let alu = prop_oneof![
        Just(AluOp::Addu),
        Just(AluOp::Subu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Slt),
        Just(AluOp::Sltu)
    ];
    let alui = prop_oneof![
        Just(AluImmOp::Addiu),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Slti)
    ];
    let shift = prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)];
    prop_oneof![
        (alu, dst_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs, rt)| Instruction::Alu {
            op,
            rd,
            rs,
            rt
        }),
        (alui, dst_reg(), any_reg(), any::<u16>())
            .prop_map(|(op, rt, rs, imm)| Instruction::AluImm { op, rt, rs, imm }),
        (shift, dst_reg(), any_reg(), 0u8..32).prop_map(|(op, rd, rt, shamt)| Instruction::Shift {
            op,
            rd,
            rt,
            shamt
        }),
        (dst_reg(), any::<u16>()).prop_map(|(rt, imm)| Instruction::Lui { rt, imm }),
        (
            prop_oneof![Just(MulDivOp::Mult), Just(MulDivOp::Multu)],
            any_reg(),
            any_reg()
        )
            .prop_map(|(op, rs, rt)| Instruction::MulDiv { op, rs, rt }),
        dst_reg().prop_map(|rd| Instruction::Mflo { rd }),
        dst_reg().prop_map(|rd| Instruction::Mfhi { rd }),
        // Memory ops against a fixed page: base is overwritten to a safe
        // register ($gp-like $k0) by the test harness below.
        (0u32..64, dst_reg()).prop_map(|(slot, rt)| Instruction::Load {
            width: MemWidth::Word,
            signed: false,
            rt,
            base: Reg::K0,
            offset: (slot * 4) as i16,
        }),
        (0u32..64, any_reg()).prop_map(|(slot, rt)| Instruction::Store {
            width: MemWidth::Word,
            rt,
            base: Reg::K0,
            offset: (slot * 4) as i16,
        }),
        (0u32..64, dst_reg()).prop_map(|(slot, rt)| Instruction::Load {
            width: MemWidth::Byte,
            signed: true,
            rt,
            base: Reg::K0,
            offset: (slot * 4) as i16,
        }),
    ]
}

/// Sequential reference: execute in program order over a context + map
/// memory (same semantics as the CPU, restricted to the generated ops).
fn sequential(
    insts: &[Instruction],
    ctx: &EntryContext,
    mem: &HashMap<u32, u8>,
) -> (EntryContext, HashMap<u32, u8>) {
    let mut c = ctx.clone();
    let mut m = mem.clone();
    // Keep $k0 pinned: the harness sets it to MEM_BASE and generated ops
    // may overwrite it, matching both executions.
    for inst in insts {
        use Instruction::*;
        match *inst {
            Alu { op, rd, rs, rt } => {
                let v = op.eval(c.read(DataLoc::Gpr(rs)), c.read(DataLoc::Gpr(rt)));
                c.write(DataLoc::Gpr(rd), v);
            }
            AluImm { op, rt, rs, imm } => {
                let v = op.eval(c.read(DataLoc::Gpr(rs)), imm);
                c.write(DataLoc::Gpr(rt), v);
            }
            Shift { op, rd, rt, shamt } => {
                let v = op.eval(c.read(DataLoc::Gpr(rt)), shamt as u32);
                c.write(DataLoc::Gpr(rd), v);
            }
            Lui { rt, imm } => c.write(DataLoc::Gpr(rt), (imm as u32) << 16),
            MulDiv { op, rs, rt } => {
                let (hi, lo) = op.eval(c.read(DataLoc::Gpr(rs)), c.read(DataLoc::Gpr(rt)));
                c.write(DataLoc::Hi, hi);
                c.write(DataLoc::Lo, lo);
            }
            Mfhi { rd } => {
                let value = c.read(DataLoc::Hi);
                c.write(DataLoc::Gpr(rd), value);
            }
            Mflo { rd } => {
                let value = c.read(DataLoc::Lo);
                c.write(DataLoc::Gpr(rd), value);
            }
            Load {
                width,
                signed,
                rt,
                base,
                offset,
            } => {
                let addr = c
                    .read(DataLoc::Gpr(base))
                    .wrapping_add(offset as i32 as u32);
                let v = match (width, signed) {
                    (MemWidth::Byte, true) => m.read_u8(addr) as i8 as i32 as u32,
                    (MemWidth::Byte, false) => m.read_u8(addr) as u32,
                    (MemWidth::Word, _) => u32::from_le_bytes([
                        m.read_u8(addr),
                        m.read_u8(addr + 1),
                        m.read_u8(addr + 2),
                        m.read_u8(addr + 3),
                    ]),
                    _ => unreachable!("generator emits bytes and words only"),
                };
                c.write(DataLoc::Gpr(rt), v);
            }
            Store {
                width,
                rt,
                base,
                offset,
            } => {
                let addr = c
                    .read(DataLoc::Gpr(base))
                    .wrapping_add(offset as i32 as u32);
                let v = c.read(DataLoc::Gpr(rt));
                let n = width.bytes() as usize;
                for (i, byte) in v.to_le_bytes().iter().take(n).enumerate() {
                    m.write_u8(addr + i as u32, *byte);
                }
            }
            _ => unreachable!("generator emits supported ops only"),
        }
    }
    (c, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_execution_equals_sequential(
        seeds in prop::collection::vec(any::<u32>(), 34),
        insts in prop::collection::vec(any_inst(), 1..48),
    ) {
        // Build the configuration exactly the way the DIM engine does.
        let mut translator = Translator::new(TranslatorOptions::new(ArrayShape::config3()));
        let predictor = BimodalPredictor::new();
        for (k, &inst) in insts.iter().enumerate() {
            let info = StepInfo {
                pc: 0x400000 + 4 * k as u32,
                inst,
                next_pc: 0x400000 + 4 * (k as u32 + 1),
                taken: None,
                mem_addr: None,
                effect: Effect::None,
            };
            prop_assert!(translator.observe(&info, &predictor).is_none());
        }
        let exit_pc = 0x400000 + 4 * insts.len() as u32;
        let Some(config) = translator.take_partial(exit_pc) else {
            // Fewer than the caching threshold: nothing to check.
            return Ok(());
        };
        prop_assert_eq!(config.instruction_count(), insts.len());
        config.validate().expect("translator output is structurally sound");

        // Shared random entry state.
        let mut ctx = EntryContext { regs: [0; 32], hi: seeds[32], lo: seeds[33] };
        for (i, &v) in seeds.iter().take(32).enumerate() {
            ctx.regs[i] = v;
        }
        ctx.regs[0] = 0;
        ctx.regs[Reg::K0.index()] = MEM_BASE; // memory page base
        let mut mem: HashMap<u32, u8> = HashMap::new();
        for slot in 0..64u32 {
            for b in 0..4 {
                mem.write_u8(MEM_BASE + 4 * slot + b, (slot * 7 + b) as u8);
            }
        }

        // Reference vs dataflow-from-placement.
        let (ref_ctx, ref_mem) = sequential(&insts, &ctx, &mem);
        let outcome = execute_dataflow(&config, &mut ctx, &mut mem)
            .expect("generated ops are always executable");
        prop_assert_eq!(outcome.exit_pc, exit_pc);
        prop_assert!(!outcome.misspeculated);

        // Registers named in the write-back set must match; untouched
        // registers keep their entry values in both.
        for r in Reg::all() {
            prop_assert_eq!(
                ctx.regs[r.index()],
                ref_ctx.regs[r.index()],
                "register {} differs", r
            );
        }
        prop_assert_eq!(ctx.hi, ref_ctx.hi, "HI differs");
        prop_assert_eq!(ctx.lo, ref_ctx.lo, "LO differs");
        for slot in 0..64u32 {
            for b in 0..4 {
                let addr = MEM_BASE + 4 * slot + b;
                prop_assert_eq!(mem.read_u8(addr), ref_mem.read_u8(addr), "byte {:#x}", addr);
            }
        }
    }
}
