//! Golden vectors for the workspace's single shared FNV-1a helper, as
//! re-exported from `dim-core` — the name every checksum consumer
//! (snapshot footers, sweep journal, status-file header) imports.

use dim_core::fnv1a64;

#[test]
fn golden_vectors_through_the_core_reexport() {
    // Noll's published FNV-1a 64-bit reference vectors.
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a64(b"b"), 0xaf63_df4c_8601_f1a5);
    assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
}

#[test]
fn every_reexport_is_the_same_function() {
    // The cgra and core re-exports must resolve to the obs canonical
    // definition — compare as function pointers.
    let core_fn: fn(&[u8]) -> u64 = dim_core::fnv1a64;
    let cgra_fn: fn(&[u8]) -> u64 = dim_cgra::snapshot::fnv1a64;
    let obs_fn: fn(&[u8]) -> u64 = dim_obs::fnv1a64;
    let sample = b"dim-flight";
    assert_eq!(core_fn(sample), obs_fn(sample));
    assert_eq!(cgra_fn(sample), obs_fn(sample));
}
