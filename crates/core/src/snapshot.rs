//! Versioned, checksummed snapshots of the accelerator's warm state:
//! the reconfiguration cache (translated configurations in FIFO order),
//! the bimodal predictor table, and the per-configuration misspeculation
//! strike counters.
//!
//! A snapshot lets a later run skip the translation warm-up entirely
//! (`dim accel --rcache-save/--rcache-load`, `dim sweep` warm-start):
//! restoring a snapshot and re-running a program from the same machine
//! state produces, instruction for instruction, the continuation the
//! original system would have executed — the property the
//! `warm_restart_matches_cold_continuation` tests pin down.
//!
//! ## File layout (`.dimrc`)
//!
//! ```text
//! magic   "DIMRC\0"            6 bytes
//! version u16                  (currently 1)
//! len     u64                  payload length in bytes
//! payload [len bytes]          header + predictor + strikes + configs
//! check   u64                  FNV-1a 64 of the payload
//! ```
//!
//! The payload starts with a compatibility header (array shape, cache
//! slots + policy, speculation settings, flush threshold). Loading
//! validates magic, version, length, checksum, and every header field
//! against the live [`SystemConfig`]; any mismatch is a hard error —
//! a snapshot never silently reinterprets configurations placed for a
//! different array.

use crate::rcache::ReplacementPolicy;
use crate::{Counter, ReconfCache, System, SystemConfig};
use dim_cgra::snapshot::{
    decode_config, encode_config, put_shape, put_u32, put_u64, read_shape, Cursor, WireError,
};
use dim_cgra::{ArrayShape, Configuration};
use dim_obs::frame::{self, FrameError, FrameSpec};
use std::fmt;

/// File magic of a reconfiguration-cache snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 6] = b"DIMRC\0";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// The snapshot's frame identity for the shared [`frame`] helper.
pub const SNAPSHOT_FRAME: FrameSpec = FrameSpec {
    magic: SNAPSHOT_MAGIC,
    version: SNAPSHOT_VERSION,
};

/// Why a snapshot could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The payload checksum did not match — truncated or corrupted file.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the payload actually read.
        actual: u64,
    },
    /// The payload structure could not be decoded.
    Wire(WireError),
    /// The snapshot was taken under settings incompatible with the
    /// system it is being loaded into; the message names the field.
    Incompatible(String),
    /// A decoded configuration failed the static verifier
    /// (`dim_cgra::verify`) — structurally well-formed bytes describing
    /// a region that could not have come from the translator.
    InvalidConfig {
        /// Entry PC of the failing region.
        pc: u32,
        /// Covered instructions of the failing region.
        len: u32,
        /// First verifier violation.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DIM rcache snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot version {v} not supported (this build reads <= {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (file says {expected:#018x}, payload hashes to \
                 {actual:#018x}) — file truncated or corrupted"
            ),
            SnapshotError::Wire(e) => write!(f, "snapshot payload: {e}"),
            SnapshotError::Incompatible(what) => {
                write!(f, "snapshot incompatible with this configuration: {what}")
            }
            SnapshotError::InvalidConfig { pc, len, detail } => write!(
                f,
                "snapshot region at {pc:#x} ({len} instructions) failed verification: {detail}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

impl From<FrameError> for SnapshotError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::BadMagic => SnapshotError::BadMagic,
            FrameError::UnsupportedVersion(v) => SnapshotError::UnsupportedVersion(v),
            FrameError::Truncated | FrameError::Oversized { .. } => {
                SnapshotError::Wire(WireError::Truncated)
            }
            FrameError::TrailingBytes(n) => SnapshotError::Wire(WireError::Corrupt(format!(
                "{n} trailing bytes after checksum"
            ))),
            FrameError::ChecksumMismatch { expected, actual } => {
                SnapshotError::ChecksumMismatch { expected, actual }
            }
        }
    }
}

fn policy_bits(policy: ReplacementPolicy) -> u8 {
    match policy {
        ReplacementPolicy::Fifo => 0,
        ReplacementPolicy::Lru => 1,
    }
}

fn policy_from_bits(bits: u8) -> Result<ReplacementPolicy, SnapshotError> {
    match bits {
        0 => Ok(ReplacementPolicy::Fifo),
        1 => Ok(ReplacementPolicy::Lru),
        other => Err(SnapshotError::Wire(WireError::Corrupt(format!(
            "replacement policy tag {other}"
        )))),
    }
}

fn check_eq<T: PartialEq + fmt::Debug>(
    field: &str,
    snapshot: T,
    live: T,
) -> Result<(), SnapshotError> {
    if snapshot != live {
        return Err(SnapshotError::Incompatible(format!(
            "{field}: snapshot has {snapshot:?}, system has {live:?}"
        )));
    }
    Ok(())
}

/// The fully decoded contents of a `.dimrc` snapshot, independent of any
/// live [`System`] — the structure `dim verify` inspects offline and
/// [`System::load_rcache`] restores after its compatibility checks.
#[derive(Debug, Clone)]
pub struct SnapshotContents {
    /// Array geometry the snapshot was taken under.
    pub shape: ArrayShape,
    /// Reconfiguration-cache capacity in slots.
    pub cache_slots: u64,
    /// Cache replacement policy.
    pub cache_policy: ReplacementPolicy,
    /// Whether speculation was enabled.
    pub speculation: bool,
    /// Maximum merged basic blocks when speculating.
    pub max_spec_blocks: u8,
    /// Whether the array's ALUs included shifters.
    pub support_shifts: bool,
    /// Misspeculation flush threshold.
    pub misspec_flush_threshold: u32,
    /// Bimodal predictor entries `(pc, counter)`.
    pub predictor: Vec<(u32, Counter)>,
    /// Per-configuration misspeculation strikes `(pc, count)`.
    pub strikes: Vec<(u32, u32)>,
    /// Cached configurations in saved FIFO order.
    pub configs: Vec<Configuration>,
}

impl SnapshotContents {
    /// Decodes a complete `.dimrc` byte image: magic, version, length,
    /// checksum, header, predictor, strikes, and every configuration
    /// (each replay-decoded against the header's array shape).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] for anything that is not a well-formed snapshot.
    pub fn parse(bytes: &[u8]) -> Result<SnapshotContents, SnapshotError> {
        let (version, payload) = frame::decode_frame(SNAPSHOT_FRAME, bytes)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        let mut p = Cursor::new(payload);
        let shape = read_shape(&mut p)?;
        let cache_slots = p.u64()?;
        let cache_policy = policy_from_bits(p.u8()?)?;
        let speculation = p.u8()? != 0;
        let max_spec_blocks = p.u8()?;
        let support_shifts = p.u8()? != 0;
        let misspec_flush_threshold = p.u32()?;

        let mut predictor = Vec::new();
        let n_pred = p.u32()?;
        for _ in 0..n_pred {
            let pc = p.u32()?;
            let bits = p.u8()?;
            let counter = Counter::from_bits(bits).ok_or_else(|| {
                SnapshotError::Wire(WireError::Corrupt(format!("counter bits {bits}")))
            })?;
            predictor.push((pc, counter));
        }
        let mut strikes = Vec::new();
        let n_strikes = p.u32()?;
        for _ in 0..n_strikes {
            let pc = p.u32()?;
            let n = p.u32()?;
            strikes.push((pc, n));
        }
        let mut configs = Vec::new();
        let n_configs = p.u32()?;
        for _ in 0..n_configs {
            let entry = decode_config(&mut p)?;
            if entry.shape() != &shape {
                return Err(SnapshotError::Incompatible(format!(
                    "configuration at {:#x} was placed for a different shape",
                    entry.entry_pc
                )));
            }
            configs.push(entry);
        }
        if p.remaining() != 0 {
            return Err(SnapshotError::Wire(WireError::Corrupt(format!(
                "{} unread payload bytes",
                p.remaining()
            ))));
        }
        Ok(SnapshotContents {
            shape,
            cache_slots,
            cache_policy,
            speculation,
            max_spec_blocks,
            support_shifts,
            misspec_flush_threshold,
            predictor,
            strikes,
            configs,
        })
    }

    /// Runs the static configuration verifier over every cached region.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::InvalidConfig`] naming the first failing
    /// region's PC and length.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        for config in &self.configs {
            if let Some(violation) = dim_cgra::verify::verify_config(config).into_iter().next() {
                return Err(SnapshotError::InvalidConfig {
                    pc: config.entry_pc,
                    len: config.instruction_count() as u32,
                    detail: violation.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Serializes these contents back into a complete `.dimrc` byte
    /// image (magic, version, length, payload, checksum). Inverse of
    /// [`parse`](SnapshotContents::parse); [`System::save_rcache`] is
    /// implemented on top of it.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_shape(&mut payload, &self.shape);
        put_u64(&mut payload, self.cache_slots);
        payload.push(policy_bits(self.cache_policy));
        payload.push(self.speculation as u8);
        payload.push(self.max_spec_blocks);
        payload.push(self.support_shifts as u8);
        put_u32(&mut payload, self.misspec_flush_threshold);

        put_u32(&mut payload, self.predictor.len() as u32);
        for &(pc, counter) in &self.predictor {
            put_u32(&mut payload, pc);
            payload.push(counter.to_bits());
        }
        put_u32(&mut payload, self.strikes.len() as u32);
        for &(pc, n) in &self.strikes {
            put_u32(&mut payload, pc);
            put_u32(&mut payload, n);
        }
        put_u32(&mut payload, self.configs.len() as u32);
        for config in &self.configs {
            encode_config(config, &mut payload);
        }

        frame::encode_frame(SNAPSHOT_FRAME, &payload)
    }

    fn check_compatible(&self, config: &SystemConfig) -> Result<(), SnapshotError> {
        check_eq("array shape", self.shape, config.shape)?;
        check_eq("cache slots", self.cache_slots, config.cache_slots as u64)?;
        check_eq("replacement policy", self.cache_policy, config.cache_policy)?;
        check_eq("speculation", self.speculation, config.speculation)?;
        check_eq(
            "max_spec_blocks",
            self.max_spec_blocks,
            config.max_spec_blocks,
        )?;
        check_eq("support_shifts", self.support_shifts, config.support_shifts)?;
        check_eq(
            "misspec_flush_threshold",
            self.misspec_flush_threshold,
            config.misspec_flush_threshold,
        )?;
        Ok(())
    }
}

impl System {
    /// Serializes the accelerator's warm state (reconfiguration cache,
    /// predictor, misspeculation strikes) into a versioned, checksummed
    /// snapshot.
    ///
    /// Takes `&mut self` because snapshotting finalizes the translator —
    /// any in-flight partial detection region is abandoned, leaving the
    /// continuing system in exactly the state a warm restart of this
    /// snapshot would start from.
    pub fn save_rcache(&mut self) -> Vec<u8> {
        self.translator.abandon_region();

        let mut strikes: Vec<(u32, u32)> = self
            .misspec_counts
            .iter()
            .map(|(&pc, &n)| (pc, n))
            .collect();
        strikes.sort_unstable_by_key(|&(pc, _)| pc);

        let config = *self.config();
        SnapshotContents {
            shape: config.shape,
            cache_slots: config.cache_slots as u64,
            cache_policy: config.cache_policy,
            speculation: config.speculation,
            max_spec_blocks: config.max_spec_blocks,
            support_shifts: config.support_shifts,
            misspec_flush_threshold: config.misspec_flush_threshold,
            predictor: self.predictor.entries(),
            strikes,
            configs: self.cache.iter().cloned().collect(),
        }
        .encode()
    }

    /// Replaces the accelerator's warm state with the snapshot's:
    /// reconfiguration cache contents (in saved FIFO order, statistics
    /// zeroed), predictor counters, and misspeculation strikes. The
    /// machine and the run statistics are untouched. Call before (or
    /// between) runs; like [`save_rcache`](System::save_rcache) it
    /// abandons any in-flight detection region.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a snapshot, fail the
    /// checksum, were saved under a different array shape, cache
    /// geometry, or speculation policy than this system's, or contain a
    /// configuration that fails the static verifier
    /// ([`SnapshotError::InvalidConfig`] names the region's PC/len).
    pub fn load_rcache(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let contents = SnapshotContents::parse(bytes)?;
        let config = *self.config();
        contents.check_compatible(&config)?;
        contents.verify()?;

        // Build fresh state first so a corrupt tail cannot leave the
        // system half-restored.
        let mut predictor = crate::BimodalPredictor::new();
        for &(pc, counter) in &contents.predictor {
            predictor.seed(pc, counter);
        }
        let strikes: std::collections::HashMap<u32, u32> =
            contents.strikes.iter().copied().collect();
        let mut cache = ReconfCache::with_policy(config.cache_slots, config.cache_policy);
        for entry in contents.configs {
            let pc = entry.entry_pc;
            if !cache.seed(entry) {
                return Err(SnapshotError::Wire(WireError::Corrupt(format!(
                    "cache entry at {pc:#x} exceeds capacity or repeats"
                ))));
            }
        }

        self.translator.abandon_region();
        self.predictor = predictor;
        self.misspec_counts = strikes;
        self.cache = cache;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use dim_cgra::ArrayShape;
    use dim_mips::asm::assemble;
    use dim_mips_sim::Machine;

    const LOOP: &str = "
        main: li $s0, 300
              li $v0, 0
        loop: addu $v0, $v0, $s0
              xor  $t1, $v0, $s0
              addu $v0, $v0, $t1
              sll  $t2, $v0, 2
              addu $v0, $v0, $t2
              addiu $s0, $s0, -1
              bnez $s0, loop
              break 0";

    fn warmed_system() -> System {
        let program = assemble(LOOP).unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config1(), 64, true),
        );
        sys.run(10_000_000).unwrap();
        assert!(!sys.cache().is_empty(), "warm-up produced no configs");
        sys
    }

    #[test]
    fn snapshot_roundtrips_cache_contents() {
        let mut sys = warmed_system();
        let bytes = sys.save_rcache();
        let program = assemble(LOOP).unwrap();
        let mut fresh = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config1(), 64, true),
        );
        fresh.load_rcache(&bytes).unwrap();
        let a: Vec<_> = sys.cache().iter().cloned().collect();
        let b: Vec<_> = fresh.cache().iter().cloned().collect();
        assert_eq!(a, b, "cache contents and order must round-trip");
        assert_eq!(fresh.cache().hit_miss(), (0, 0), "stats start fresh");
        // Saving the restored system reproduces the same bytes.
        assert_eq!(fresh.save_rcache(), bytes);
    }

    #[test]
    fn load_rejects_wrong_shape_slots_policy() {
        let mut sys = warmed_system();
        let bytes = sys.save_rcache();
        let program = assemble(LOOP).unwrap();
        for config in [
            SystemConfig::new(ArrayShape::config2(), 64, true),
            SystemConfig::new(ArrayShape::config1(), 16, true),
            SystemConfig::new(ArrayShape::config1(), 64, false),
        ] {
            let mut other = System::new(Machine::load(&program), config);
            let err = other.load_rcache(&bytes).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Incompatible(_)),
                "expected Incompatible, got {err:?}"
            );
        }
    }

    #[test]
    fn load_rejects_corruption_truncation_and_bad_magic() {
        let mut sys = warmed_system();
        let bytes = sys.save_rcache();
        let program = assemble(LOOP).unwrap();
        let fresh = || {
            System::new(
                Machine::load(&program),
                SystemConfig::new(ArrayShape::config1(), 64, true),
            )
        };

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(fresh().load_rcache(&bad), Err(SnapshotError::BadMagic));

        // Future version.
        let mut bad = bytes.clone();
        bad[6] = 0xff;
        assert!(matches!(
            fresh().load_rcache(&bad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));

        // Flip a payload byte: checksum must catch it.
        let mut bad = bytes.clone();
        let mid = 16 + (bad.len() - 24) / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            fresh().load_rcache(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncation at every boundary below the checksum tail.
        for len in 0..bytes.len() {
            assert!(
                fresh().load_rcache(&bytes[..len]).is_err(),
                "prefix of {len} bytes loaded"
            );
        }
    }

    /// Three hot loops against a 2-slot cache force capacity evictions
    /// before the save; the snapshot must capture the post-eviction FIFO
    /// state (survivors only, in surviving order) and restore it exactly.
    #[test]
    fn snapshot_roundtrips_through_eviction() {
        const THREE_LOOPS: &str = "
            main: li $s0, 80
            l1:   addu $v0, $v0, $s0
                  xor  $t1, $v0, $s0
                  addu $v0, $v0, $t1
                  addiu $s0, $s0, -1
                  bnez $s0, l1
                  li $s1, 80
            l2:   sll $t2, $v0, 2
                  addu $v0, $v0, $t2
                  addiu $s1, $s1, -1
                  bnez $s1, l2
                  li $s2, 80
            l3:   srl $t3, $v0, 1
                  xor  $v0, $v0, $t3
                  addiu $s2, $s2, -1
                  bnez $s2, l3
                  break 0";
        let program = assemble(THREE_LOOPS).unwrap();
        let config = SystemConfig::new(ArrayShape::config1(), 2, true);
        let mut sys = System::new(Machine::load(&program), config);
        sys.run(10_000_000).unwrap();
        assert!(
            sys.cache().evictions() > 0,
            "three loops into two slots must evict"
        );
        assert_eq!(sys.cache().len(), 2, "cache full at save time");

        let bytes = sys.save_rcache();
        let mut fresh = System::new(Machine::load(&program), config);
        fresh.load_rcache(&bytes).unwrap();
        let a: Vec<_> = sys.cache().iter().cloned().collect();
        let b: Vec<_> = fresh.cache().iter().cloned().collect();
        assert_eq!(a, b, "post-eviction contents and FIFO order round-trip");
        assert_eq!(fresh.cache().evictions(), 0, "restored stats start fresh");
        assert_eq!(fresh.save_rcache(), bytes);
    }

    /// A snapshot whose bytes are structurally perfect (valid magic,
    /// checksum, wire layout) but whose payload describes a region the
    /// translator could never have committed must be rejected by the
    /// verifier pass with the failing region's PC and length.
    #[test]
    fn load_rejects_doctored_but_checksum_valid_snapshot() {
        let mut sys = warmed_system();
        let bytes = sys.save_rcache();
        let mut contents = SnapshotContents::parse(&bytes).unwrap();
        assert!(!contents.configs.is_empty());
        // Drop one write-back from the first region: the wire stays
        // self-consistent (decode replays placements fine), but the
        // write-back map no longer matches the instruction window.
        let victim = &mut contents.configs[0];
        let expected_pc = victim.entry_pc;
        let expected_len = victim.instruction_count() as u32;
        let (loc, _) = victim.writebacks().next().expect("region writes something");
        victim.remove_writeback(loc);
        let doctored = contents.encode();
        assert_ne!(doctored, bytes);

        let program = assemble(LOOP).unwrap();
        let mut fresh = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config1(), 64, true),
        );
        match fresh.load_rcache(&doctored).unwrap_err() {
            SnapshotError::InvalidConfig { pc, len, detail } => {
                assert_eq!(pc, expected_pc);
                assert_eq!(len, expected_len);
                assert!(detail.contains("writeback-mismatch"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // The failed load must not have touched the warm state.
        assert!(fresh.cache().is_empty());
    }

    #[test]
    fn parse_encode_roundtrip_is_byte_identical() {
        let mut sys = warmed_system();
        let bytes = sys.save_rcache();
        let contents = SnapshotContents::parse(&bytes).unwrap();
        assert!(contents.verify().is_ok());
        assert_eq!(contents.encode(), bytes);
        assert_eq!(contents.shape, ArrayShape::config1());
        assert_eq!(contents.cache_slots, 64);
        assert!(contents.speculation);
        assert_eq!(contents.configs.len(), sys.cache().len());
    }

    #[test]
    fn snapshot_version_constant_is_one() {
        // Bumping the format version must be a conscious act: update the
        // compat policy in docs/sweeps.md when this changes.
        assert_eq!(SNAPSHOT_VERSION, 1);
    }
}
