//! A gshare predictor — an ablation alternative to the paper's bimodal
//! scheme.
//!
//! The paper gates speculation on per-branch 2-bit counters ([`super::
//! BimodalPredictor`]). Gshare indexes a shared counter table by
//! `PC ⊕ global history`, capturing correlated branches at the cost of
//! aliasing. The [`SpeculationPredictor`] trait lets the translator
//! policy be measured with either (see the `ablations` binary).

use crate::predictor::{BimodalPredictor, Counter};

/// The interface the speculation policy needs from a branch predictor:
/// per-branch outcome recording and a "confident direction" query.
pub trait SpeculationPredictor {
    /// Records one executed branch outcome.
    fn update(&mut self, pc: u32, taken: bool);
    /// `Some(direction)` when the predictor is confident enough to
    /// speculate across this branch.
    fn confident_direction(&self, pc: u32) -> Option<bool>;
}

impl SpeculationPredictor for BimodalPredictor {
    fn update(&mut self, pc: u32, taken: bool) {
        BimodalPredictor::update(self, pc, taken);
    }

    fn confident_direction(&self, pc: u32) -> Option<bool> {
        self.saturated_direction(pc)
    }
}

/// Gshare: a table of 2-bit counters indexed by PC xor global history.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<Counter>,
    history: u32,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a predictor with `2^index_bits` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32, history_bits: u32) -> GsharePredictor {
        assert!((1..=24).contains(&index_bits), "index_bits out of range");
        GsharePredictor {
            counters: vec![Counter::WeakNotTaken; 1 << index_bits],
            history: 0,
            history_bits: history_bits.min(index_bits),
        }
    }

    fn index(&self, pc: u32) -> usize {
        let mask = (self.counters.len() - 1) as u32;
        let hist = self.history & ((1u32 << self.history_bits) - 1);
        (((pc >> 2) ^ hist) & mask) as usize
    }

    /// The current global-history register (for tests/diagnostics).
    pub fn history(&self) -> u32 {
        self.history & ((1u32 << self.history_bits) - 1)
    }
}

impl SpeculationPredictor for GsharePredictor {
    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = self.counters[i];
        self.counters[i] = {
            use Counter::*;
            match (c, taken) {
                (StrongNotTaken, true) => WeakNotTaken,
                (WeakNotTaken, true) => WeakTaken,
                (WeakTaken, true) | (StrongTaken, true) => StrongTaken,
                (StrongNotTaken, false) | (WeakNotTaken, false) => StrongNotTaken,
                (WeakTaken, false) => WeakNotTaken,
                (StrongTaken, false) => WeakTaken,
            }
        };
        self.history = (self.history << 1) | taken as u32;
    }

    fn confident_direction(&self, pc: u32) -> Option<bool> {
        self.counters[self.index(pc)].saturated()
    }
}

/// Measures a predictor's hit rate over an outcome stream — used by the
/// predictor ablation to compare bimodal vs gshare on real traces.
pub fn measure_hit_rate<P: SpeculationPredictor>(
    predictor: &mut P,
    stream: impl IntoIterator<Item = (u32, bool)>,
) -> f64 {
    let mut total = 0u64;
    let mut hits = 0u64;
    for (pc, taken) in stream {
        // Predict with the confident direction, else weakly not-taken.
        let predicted = predictor.confident_direction(pc).unwrap_or(false);
        if predicted == taken {
            hits += 1;
        }
        predictor.update(pc, taken);
        total += 1;
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_biased_branch() {
        let mut p = GsharePredictor::new(10, 6);
        for _ in 0..8 {
            p.update(0x400100, true);
        }
        // The history register walks, so several table entries train; the
        // one for the current history must be confident.
        assert_eq!(p.confident_direction(0x400100), Some(true));
    }

    #[test]
    fn gshare_learns_an_alternating_pattern_bimodal_cannot() {
        // Pattern T,N,T,N...: bimodal oscillates (never saturated);
        // gshare with history separates the two contexts.
        let stream: Vec<(u32, bool)> = (0..400).map(|i| (0x400200, i % 2 == 0)).collect();
        let mut bimodal = BimodalPredictor::new();
        let bi = measure_hit_rate(&mut bimodal, stream.clone());
        let mut gshare = GsharePredictor::new(12, 8);
        let gs = measure_hit_rate(&mut gshare, stream);
        assert!(gs > 0.9, "gshare should learn the alternation ({gs})");
        assert!(gs > bi, "gshare {gs} must beat bimodal {bi} here");
    }

    #[test]
    fn history_register_masks() {
        let mut p = GsharePredictor::new(8, 4);
        for _ in 0..100 {
            p.update(0, true);
        }
        assert_eq!(p.history(), 0xf);
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn zero_index_bits_rejected() {
        let _ = GsharePredictor::new(0, 0);
    }
}
