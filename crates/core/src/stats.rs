//! Accelerator-side event counters.

/// Events attributed to the DIM engine, the reconfiguration cache and the
/// array, accumulated by [`System`](crate::System). Together with the
/// processor-side [`RunStats`](dim_mips_sim::RunStats) these drive the
/// speedup (Table 2) and energy (Figures 5-6) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DimStats {
    /// Times a cached configuration was executed on the array.
    pub array_invocations: u64,
    /// Instructions retired through array execution instead of the
    /// pipeline.
    pub array_instructions: u64,
    /// Array execution cycles (row traversal).
    pub array_exec_cycles: u64,
    /// Reconfiguration stall cycles visible to the processor.
    pub reconfig_stall_cycles: u64,
    /// Write-back cycles not overlapped with execution.
    pub writeback_tail_cycles: u64,
    /// Data-memory loads issued by array LD/ST units.
    pub array_loads: u64,
    /// Data-memory stores issued by array LD/ST units.
    pub array_stores: u64,
    /// Array invocations whose every speculated branch was correct.
    pub full_hits: u64,
    /// Speculated branches that went the wrong way during array execution.
    pub misspeculations: u64,
    /// Configurations flushed from the cache after repeated
    /// misspeculation.
    pub config_flushes: u64,
    /// Configurations built and inserted into the cache.
    pub configs_built: u64,
    /// Instructions examined by the detection hardware.
    pub translated_instructions: u64,
    /// Bits read from the reconfiguration cache (energy account).
    pub cache_bits_read: u64,
    /// Bits written to the reconfiguration cache (energy account).
    pub cache_bits_written: u64,
    /// Sum over invocations of the rows each executed configuration
    /// occupied — drives the power-gating model (unused rows switched
    /// off, the paper's announced future work).
    pub array_occupied_rows: u64,
    /// Capacity evictions whose victim had served at least one cache
    /// hit while resident.
    pub rcache_evictions_live: u64,
    /// Capacity evictions whose victim was never reused after insertion
    /// — translation work the cache discarded before any payback.
    pub rcache_evictions_dead: u64,
}

impl DimStats {
    /// Zeroed counters.
    pub fn new() -> DimStats {
        DimStats::default()
    }

    /// Accumulates another run's counters into this one.
    ///
    /// Addition saturates so aggregating a whole suite of runs into one
    /// report can never wrap and silently corrupt a total; in debug
    /// builds an actual overflow is treated as a logic error and asserts.
    pub fn merge(&mut self, other: &DimStats) {
        fn acc(total: &mut u64, add: u64) {
            debug_assert!(
                total.checked_add(add).is_some(),
                "DimStats counter overflow: {total} + {add}"
            );
            *total = total.saturating_add(add);
        }
        acc(&mut self.array_invocations, other.array_invocations);
        acc(&mut self.array_instructions, other.array_instructions);
        acc(&mut self.array_exec_cycles, other.array_exec_cycles);
        acc(&mut self.reconfig_stall_cycles, other.reconfig_stall_cycles);
        acc(&mut self.writeback_tail_cycles, other.writeback_tail_cycles);
        acc(&mut self.array_loads, other.array_loads);
        acc(&mut self.array_stores, other.array_stores);
        acc(&mut self.full_hits, other.full_hits);
        acc(&mut self.misspeculations, other.misspeculations);
        acc(&mut self.config_flushes, other.config_flushes);
        acc(&mut self.configs_built, other.configs_built);
        acc(
            &mut self.translated_instructions,
            other.translated_instructions,
        );
        acc(&mut self.cache_bits_read, other.cache_bits_read);
        acc(&mut self.cache_bits_written, other.cache_bits_written);
        acc(&mut self.array_occupied_rows, other.array_occupied_rows);
        acc(&mut self.rcache_evictions_live, other.rcache_evictions_live);
        acc(&mut self.rcache_evictions_dead, other.rcache_evictions_dead);
    }

    /// All cycles attributable to array execution (stalls + rows +
    /// write-back tails).
    pub fn total_array_cycles(&self) -> u64 {
        self.array_exec_cycles + self.reconfig_stall_cycles + self.writeback_tail_cycles
    }

    /// Array data-memory accesses.
    pub fn array_mem_accesses(&self) -> u64 {
        self.array_loads + self.array_stores
    }

    /// Average rows occupied per invocation (0 when the array never ran).
    pub fn mean_occupied_rows(&self) -> f64 {
        if self.array_invocations == 0 {
            0.0
        } else {
            self.array_occupied_rows as f64 / self.array_invocations as f64
        }
    }
}

/// Exact per-phase decomposition of a run's total cycle count.
///
/// The six categories match the attribution model of
/// `dim_obs::AttributionKind`: three pipeline-side spans (base issue
/// cycles, instruction-cache stalls, data-cache stalls) and three
/// array-side spans (reconfiguration stalls, row execution, write-back
/// tail). [`total`](CycleBreakdown::total) equals
/// [`System::total_cycles`](crate::System::total_cycles) exactly — the
/// breakdown is computed from the same counters, not sampled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Pipeline issue + structural penalty cycles.
    pub pipeline: u64,
    /// Instruction-cache stall cycles.
    pub i_stall: u64,
    /// Data-cache stall cycles on the pipeline side.
    pub d_stall: u64,
    /// Reconfiguration stall cycles before array invocations.
    pub reconfig_stall: u64,
    /// Array row-execution cycles.
    pub array_exec: u64,
    /// Write-back tail cycles not overlapped with execution.
    pub writeback_tail: u64,
}

impl CycleBreakdown {
    /// Sum over all six categories.
    pub fn total(&self) -> u64 {
        self.pipeline
            + self.i_stall
            + self.d_stall
            + self.reconfig_stall
            + self.array_exec
            + self.writeback_tail
    }

    /// `(stable name, cycles)` pairs in rendering order.
    pub fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("pipeline", self.pipeline),
            ("i_stall", self.i_stall),
            ("d_stall", self.d_stall),
            ("reconfig_stall", self.reconfig_stall),
            ("array_exec", self.array_exec),
            ("writeback_tail", self.writeback_tail),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let s = DimStats {
            array_exec_cycles: 10,
            reconfig_stall_cycles: 2,
            writeback_tail_cycles: 1,
            array_loads: 3,
            array_stores: 4,
            ..DimStats::new()
        };
        assert_eq!(s.total_array_cycles(), 13);
        assert_eq!(s.array_mem_accesses(), 7);
    }

    #[test]
    fn merge_adds_and_saturates() {
        let mut a = DimStats {
            array_invocations: 2,
            array_exec_cycles: 9,
            ..DimStats::new()
        };
        let b = DimStats {
            array_invocations: 3,
            misspeculations: 1,
            ..DimStats::new()
        };
        a.merge(&b);
        assert_eq!(a.array_invocations, 5);
        assert_eq!(a.array_exec_cycles, 9);
        assert_eq!(a.misspeculations, 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overflow"))]
    fn merge_overflow_is_loud_in_debug() {
        let mut a = DimStats {
            array_exec_cycles: u64::MAX,
            ..DimStats::new()
        };
        let b = DimStats {
            array_exec_cycles: 1,
            ..DimStats::new()
        };
        a.merge(&b);
        // Release builds saturate instead of wrapping.
        assert_eq!(a.array_exec_cycles, u64::MAX);
    }
}
