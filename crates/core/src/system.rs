//! The coupled system: MIPS core + DIM detection + reconfigurable array.
//!
//! The run loop mirrors Figure 1 of the paper. Before each fetch the PC
//! probes the reconfiguration cache. On a hit, the stored configuration
//! is loaded (stalling only if operand fetch exceeds the three hidden
//! pipeline stages), executed on the array — including speculative
//! segments gated by their branches — and the PC moved past the covered
//! region. On a miss, the instruction executes normally on the pipeline
//! while the DIM hardware translates it in parallel.

use crate::{
    BimodalPredictor, CycleBreakdown, DimStats, ReconfCache, ReplacementPolicy, Trace, Translator,
    TranslatorOptions,
};
use dim_cgra::{
    verify_cert, ArrayShape, ArrayTiming, Configuration, EncodingParams, FabricHeat, StreamingCert,
};
use dim_mips::Instruction;
use dim_mips_sim::{HaltReason, Machine, SimError};
use dim_obs::{
    ArrayInvoke, FabricUtil, HostBucket, HostSplit, NullProbe, Probe, ProbeEvent, SharedClock,
};
use std::collections::HashMap;

/// All accelerator parameters for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Array geometry (Table 1).
    pub shape: ArrayShape,
    /// Array timing model.
    pub timing: ArrayTiming,
    /// Reconfiguration cache capacity in slots (Table 2 sweeps 16/64/256).
    pub cache_slots: usize,
    /// Cache replacement policy (FIFO per the paper; LRU for ablations).
    pub cache_policy: ReplacementPolicy,
    /// Whether branches may be speculated over.
    pub speculation: bool,
    /// Maximum basic blocks merged per configuration.
    pub max_spec_blocks: u8,
    /// A configuration accumulating this many misspeculations (without an
    /// intervening fully-correct run) is flushed even if the branch
    /// counter never saturates the other way — bounding the damage of
    /// periodically alternating branches.
    pub misspec_flush_threshold: u32,
    /// Whether the array's ALUs include shifters (false models the
    /// CCA-like baseline of paper §2.2).
    pub support_shifts: bool,
    /// Debug mode: additionally execute every invoked configuration
    /// *from its placement* (`dim_cgra::execute_dataflow`) on a copy of
    /// the architectural state and panic on any divergence from the
    /// replay result. Slow; for tests and bring-up.
    pub cross_check: bool,
    /// Debug mode: run the static configuration verifier
    /// (`dim_cgra::verify::verify_config`) on every configuration the
    /// translator commits, panicking on the first violation. Catches
    /// translator bugs at the commit point instead of at (mis)execution.
    pub verify_configs: bool,
    /// Encoding constants (cache bit accounting).
    pub encoding: EncodingParams,
}

impl SystemConfig {
    /// A full-featured setup for the given shape and cache size.
    pub fn new(shape: ArrayShape, cache_slots: usize, speculation: bool) -> SystemConfig {
        SystemConfig {
            shape,
            timing: ArrayTiming::default(),
            cache_slots,
            cache_policy: ReplacementPolicy::Fifo,
            speculation,
            max_spec_blocks: 3,
            misspec_flush_threshold: 8,
            support_shifts: true,
            cross_check: false,
            verify_configs: false,
            encoding: EncodingParams::default(),
        }
    }
}

/// The MIPS+DIM+array system simulator.
///
/// ```
/// use dim_core::{System, SystemConfig};
/// use dim_cgra::ArrayShape;
/// use dim_mips::asm::assemble;
/// use dim_mips_sim::Machine;
///
/// let program = assemble("
///     main: li $t0, 200
///           li $v0, 0
///     loop: addu $v0, $v0, $t0
///           xor  $t1, $v0, $t0
///           addu $v0, $v0, $t1
///           addiu $t0, $t0, -1
///           bnez $t0, loop
///           break 0
/// ")?;
/// let config = SystemConfig::new(ArrayShape::config1(), 64, true);
/// let mut accelerated = System::new(Machine::load(&program), config);
/// accelerated.run(1_000_000)?;
///
/// let mut baseline = Machine::load(&program);
/// baseline.run(1_000_000)?;
/// // Same architectural result, fewer cycles.
/// assert_eq!(accelerated.machine().cpu.reg(dim_mips::Reg::V0),
///            baseline.cpu.reg(dim_mips::Reg::V0));
/// assert!(accelerated.total_cycles() < baseline.stats.cycles);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct System {
    machine: Machine,
    config: SystemConfig,
    pub(crate) cache: ReconfCache,
    pub(crate) translator: Translator,
    pub(crate) predictor: BimodalPredictor,
    stats: DimStats,
    fabric: FabricHeat,
    host_split: Option<Box<HostSplit>>,
    stored_bits_per_config: u64,
    pub(crate) misspec_counts: HashMap<u32, u32>,
    trace: Option<Trace>,
    commit_log: Option<Vec<Configuration>>,
    /// Installed streaming certificates, keyed by region entry PC.
    stream_certs: HashMap<u32, StreamingCert>,
    /// Commits whose region matched a certificate and were tagged.
    stream_tags_applied: u64,
}

impl System {
    /// Couples a loaded machine with a DIM accelerator.
    pub fn new(machine: Machine, config: SystemConfig) -> System {
        let opts = TranslatorOptions {
            shape: config.shape,
            speculation: config.speculation,
            max_spec_blocks: config.max_spec_blocks,
            support_shifts: config.support_shifts,
        };
        let stored_bits = if config.shape.is_infinite() {
            0
        } else {
            dim_cgra::encoding_breakdown(&config.shape, &config.encoding).stored_bits() as u64
        };
        System {
            machine,
            config,
            cache: ReconfCache::with_policy(config.cache_slots, config.cache_policy),
            translator: Translator::new(opts),
            predictor: BimodalPredictor::new(),
            stats: DimStats::new(),
            fabric: FabricHeat::new(),
            host_split: None,
            stored_bits_per_config: stored_bits,
            misspec_counts: HashMap::new(),
            trace: None,
            commit_log: None,
            stream_certs: HashMap::new(),
            stream_tags_applied: 0,
        }
    }

    /// Installs streaming-eligibility certificates (`dim prove`) to be
    /// consulted at every translator commit: a committed configuration
    /// whose entry PC matches a certificate and whose ops all lie in
    /// the certified region is tagged `stream_ok(K)` in the rcache.
    /// Replay behavior is unchanged — the tag is the contract surface
    /// for the streaming executor. Returns the number installed.
    ///
    /// # Errors
    ///
    /// Rejects the whole batch on the first structurally invalid
    /// certificate (`dim_cgra::verify_cert`), naming its defect.
    pub fn install_stream_certs(
        &mut self,
        certs: impl IntoIterator<Item = StreamingCert>,
    ) -> Result<usize, String> {
        let mut installed = 0;
        for cert in certs {
            if let Some(violation) = verify_cert(&cert).into_iter().next() {
                return Err(format!(
                    "certificate @ {:#x} ({}): {violation}",
                    cert.entry_pc, cert.workload
                ));
            }
            self.stream_certs.insert(cert.entry_pc, cert);
            installed += 1;
        }
        Ok(installed)
    }

    /// Installed certificates, keyed by entry PC.
    pub fn stream_certs(&self) -> &HashMap<u32, StreamingCert> {
        &self.stream_certs
    }

    /// Commits that matched an installed certificate and tagged their
    /// rcache entry `stream_ok(K)` so far.
    pub fn stream_tags_applied(&self) -> u64 {
        self.stream_tags_applied
    }

    /// Starts recording every configuration the translator commits to
    /// the cache. The log is unbounded — test/analysis use only (the
    /// static-candidate soundness cross-check in `dim-lint` compares it
    /// against the statically computed candidate set).
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// All configurations committed since [`enable_commit_log`]
    /// (in commit order), or an empty slice when logging is off.
    ///
    /// [`enable_commit_log`]: System::enable_commit_log
    pub fn commit_log(&self) -> &[Configuration] {
        self.commit_log.as_deref().unwrap_or(&[])
    }

    /// Enables invocation tracing, retaining the last `capacity` array
    /// invocations (see [`Trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The underlying machine (CPU, memory, processor-side statistics).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the underlying machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Accelerator-side statistics.
    pub fn stats(&self) -> &DimStats {
        &self.stats
    }

    /// Always-on fabric utilization accounting (`dim heat`). Its
    /// `exec_cycles + residual_cycles` reconciles exactly with
    /// [`cycle_breakdown`](System::cycle_breakdown)'s array-execution
    /// span.
    pub fn fabric_heat(&self) -> &FabricHeat {
        &self.fabric
    }

    /// Enables host-time attribution: subsequent
    /// [`run_probed`](System::run_probed) iterations split wall time
    /// (read from `clock`, strided-sampled) across the
    /// {fetch/decode, translate, rcache, array-replay}
    /// [`HostBucket`]s. Off by default — the uninstrumented hot loop
    /// pays nothing.
    pub fn enable_host_split(&mut self, clock: SharedClock) {
        self.host_split = Some(Box::new(HostSplit::new(clock)));
    }

    /// The host-time attribution accumulated so far, if
    /// [`enable_host_split`](System::enable_host_split) was called.
    pub fn host_split(&self) -> Option<&HostSplit> {
        self.host_split.as_deref()
    }

    /// The reconfiguration cache.
    pub fn cache(&self) -> &ReconfCache {
        &self.cache
    }

    /// The experiment parameters.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Bits one stored configuration occupies in the reconfiguration
    /// cache (0 for the idealized infinite array). Trace sinks record
    /// this so replay can reconstruct the cache-bit energy counters.
    pub fn stored_bits_per_config(&self) -> u64 {
        self.stored_bits_per_config
    }

    /// Total cycles: processor cycles plus all array-attributed cycles.
    pub fn total_cycles(&self) -> u64 {
        self.machine.stats.cycles + self.stats.total_array_cycles()
    }

    /// Total retired instructions (pipeline + array).
    pub fn total_instructions(&self) -> u64 {
        self.machine.stats.instructions + self.stats.array_instructions
    }

    /// Exact per-phase cycle attribution of the run so far. The
    /// breakdown's total equals [`total_cycles`](System::total_cycles)
    /// by construction; `dim perf` cross-checks it against the
    /// probe-derived profile to catch accounting drift.
    pub fn cycle_breakdown(&self) -> CycleBreakdown {
        CycleBreakdown {
            pipeline: self.machine.stats.base_cycles(),
            i_stall: self.machine.stats.i_stall_cycles,
            d_stall: self.machine.stats.d_stall_cycles,
            reconfig_stall: self.stats.reconfig_stall_cycles,
            array_exec: self.stats.array_exec_cycles,
            writeback_tail: self.stats.writeback_tail_cycles,
        }
    }

    /// Runs until the program halts or `max_instructions` have retired.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from either the pipeline or the
    /// array's memory accesses.
    pub fn run(&mut self, max_instructions: u64) -> Result<HaltReason, SimError> {
        self.run_probed(max_instructions, &mut NullProbe)
    }

    /// Runs like [`run`](System::run), emitting the full structured
    /// event stream — retires, translation begin/commit, cache
    /// hit/miss/insert/flush, array invocations — into `probe`. The
    /// probe is monomorphized in; with [`NullProbe`] this *is* `run`.
    /// The caller keeps ownership of the probe and is responsible for
    /// calling [`Probe::finish`] when the whole run is over.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from either the pipeline or the
    /// array's memory accesses.
    pub fn run_probed<P: Probe>(
        &mut self,
        max_instructions: u64,
        probe: &mut P,
    ) -> Result<HaltReason, SimError> {
        let mut retired: u64 = 0;
        let result = loop {
            if retired >= max_instructions {
                break self.machine.halted().unwrap_or(HaltReason::StepLimit);
            }
            if let Some(reason) = self.machine.halted() {
                break reason;
            }
            let pc = self.machine.cpu.pc;
            // Host-time attribution brackets the four engine sections.
            // When disabled the `Option` check is the entire cost; when
            // enabled, most occurrences pay one counter increment (the
            // clock is only read on strided samples — see `HostSplit`).
            if let Some(split) = self.host_split.as_deref_mut() {
                split.enter(HostBucket::Rcache);
            }
            let hit = self.cache.lookup(pc).cloned();
            if let Some(split) = self.host_split.as_deref_mut() {
                split.exit(HostBucket::Rcache);
            }
            if let Some(config) = hit {
                if P::ENABLED {
                    probe.emit(ProbeEvent::RcacheHit {
                        pc,
                        len: config.instruction_count() as u32,
                    });
                }
                // A cache hit interrupts any in-flight detection region.
                // (The inserted partial may even evict the entry we are
                // about to execute, which is why it was cloned first.)
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.enter(HostBucket::Translate);
                }
                if let Some(partial) = self.translator.take_partial_probed(pc, probe) {
                    self.insert_config(partial, probe);
                }
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.exit(HostBucket::Translate);
                }
                retired += config.instruction_count() as u64;
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.enter(HostBucket::ArrayReplay);
                }
                let exec = self.execute_config(&config, probe);
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.exit(HostBucket::ArrayReplay);
                }
                exec?;
            } else {
                if P::ENABLED {
                    probe.emit(ProbeEvent::RcacheMiss { pc });
                }
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.enter(HostBucket::FetchDecode);
                }
                let step = self.machine.step_probed(probe);
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.exit(HostBucket::FetchDecode);
                }
                let info = step?;
                retired += 1;
                if let Some(taken) = info.taken {
                    self.predictor.update(info.pc, taken);
                }
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.enter(HostBucket::Translate);
                }
                if let Some(done) = self
                    .translator
                    .observe_probed(&info, &self.predictor, probe)
                {
                    self.insert_config(done, probe);
                }
                if let Some(split) = self.host_split.as_deref_mut() {
                    split.exit(HostBucket::Translate);
                }
            }
        };
        // Refresh the detection-energy account so it is exact even when
        // the run ends between array invocations.
        self.stats.translated_instructions = self.translator.observed_instructions();
        Ok(result)
    }

    fn insert_config<P: Probe>(&mut self, config: Configuration, probe: &mut P) {
        if self.config.verify_configs {
            let violations = dim_cgra::verify::verify_config(&config);
            assert!(
                violations.is_empty(),
                "translator committed an invalid configuration @ {:#x} ({} ops): {}",
                config.entry_pc,
                config.instruction_count(),
                violations
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
        if let Some(log) = &mut self.commit_log {
            log.push(config.clone());
        }
        self.stats.configs_built += 1;
        self.stats.cache_bits_written += self.stored_bits_per_config;
        let pc = config.entry_pc;
        let len = config.instruction_count() as u32;
        // Consult the installed streaming certificates: a commit whose
        // ops all lie inside a certified region is provably safe to
        // burst-replay K iterations, so its rcache entry gets tagged.
        let burst = self.stream_certs.get(&pc).and_then(|cert| {
            config
                .ops()
                .iter()
                .all(|op| cert.contains(op.pc))
                .then_some(cert.burst)
        });
        let evicted = self.cache.insert(config);
        if let Some(victim) = &evicted {
            if victim.uses > 0 {
                self.stats.rcache_evictions_live += 1;
            } else {
                self.stats.rcache_evictions_dead += 1;
            }
        }
        let tagged = burst.is_some_and(|k| self.cache.tag_stream(pc, k));
        if tagged {
            self.stream_tags_applied += 1;
        }
        if P::ENABLED {
            probe.emit(ProbeEvent::RcacheInsert {
                pc,
                len,
                evicted: evicted.as_ref().map(|e| e.pc),
            });
            if let Some(victim) = evicted {
                probe.emit(ProbeEvent::RcacheEvict {
                    pc: victim.pc,
                    len: victim.len,
                    uses: victim.uses,
                });
            }
            if tagged {
                probe.emit(ProbeEvent::StreamTag {
                    pc,
                    len,
                    burst: burst.unwrap_or(0),
                });
            }
        }
    }

    /// Snapshots the state the dataflow cross-check needs.
    fn entry_context(&self) -> dim_cgra::EntryContext {
        let mut regs = [0u32; 32];
        for r in dim_mips::Reg::all() {
            regs[r.index()] = self.machine.cpu.reg(r);
        }
        dim_cgra::EntryContext {
            regs,
            hi: self.machine.cpu.hi,
            lo: self.machine.cpu.lo,
        }
    }

    /// Debug cross-check: dataflow-executes `config` from the captured
    /// entry state and compares against the replayed (now current)
    /// architectural state.
    ///
    /// # Panics
    ///
    /// Panics on any divergence — that is the point.
    fn cross_check(&self, config: &Configuration, mut entry: dim_cgra::EntryContext) {
        struct Bus<'m> {
            mem: &'m dim_mips_sim::Memory,
            writes: std::collections::HashMap<u32, u8>,
        }
        impl dim_cgra::ExecMemory for Bus<'_> {
            fn read_u8(&self, addr: u32) -> u8 {
                *self.writes.get(&addr).unwrap_or(&self.mem.read_u8(addr))
            }
            fn write_u8(&mut self, addr: u32, value: u8) {
                self.writes.insert(addr, value);
            }
        }
        // Replay already ran, so memory holds post-state; the dataflow
        // pass reads the same bytes it would have seen only where the
        // config itself wrote them first — which the store buffer handles
        // — so feeding post-state memory is only sound for configs whose
        // loads never alias their own stores' pre-state. Restrict the
        // check accordingly: skip configs that both load and store.
        if config.load_count() > 0 && config.store_count() > 0 {
            return;
        }
        let mut bus = Bus {
            mem: &self.machine.mem,
            writes: std::collections::HashMap::new(),
        };
        let outcome = dim_cgra::execute_dataflow(config, &mut entry, &mut bus)
            .expect("replayed configuration must dataflow-execute");
        assert_eq!(
            outcome.exit_pc, self.machine.cpu.pc,
            "cross-check: exit PC diverged for config @ {:#x}",
            config.entry_pc
        );
        for r in dim_mips::Reg::all() {
            assert_eq!(
                entry.regs[r.index()],
                self.machine.cpu.reg(r),
                "cross-check: {r} diverged for config @ {:#x}",
                config.entry_pc
            );
        }
        assert_eq!(entry.hi, self.machine.cpu.hi, "cross-check: HI diverged");
        assert_eq!(entry.lo, self.machine.cpu.lo, "cross-check: LO diverged");
        // Committed stores must match the bytes the replay wrote.
        for (addr, byte) in bus.writes {
            assert_eq!(
                self.machine.mem.read_u8(addr),
                byte,
                "cross-check: memory byte {addr:#x} diverged for config @ {:#x}",
                config.entry_pc
            );
        }
    }

    /// Executes one cached configuration on the array.
    fn execute_config<P: Probe>(
        &mut self,
        config: &Configuration,
        probe: &mut P,
    ) -> Result<(), SimError> {
        self.stats.array_invocations += 1;
        self.stats.array_occupied_rows += config.rows_used() as u64;
        self.stats.cache_bits_read += self.stored_bits_per_config;

        let entry_snapshot = self.config.cross_check.then(|| self.entry_context());

        let timing = &self.config.timing;
        let mut executed_depth: u8 = 0;
        let mut misspec_branch: Option<(u32, bool)> = None;
        let mut executed: u32 = 0;
        let mut loads: u32 = 0;
        let mut stores: u32 = 0;
        let mut mem_stall_cycles: u64 = 0;

        'segments: for segment in config.segments() {
            for op in config.segment_ops(segment) {
                // Replay preserves exact architectural semantics; rows and
                // columns only affect the cycle accounting below.
                self.machine.cpu.pc = op.pc;
                let info = self.machine.cpu.execute(op.inst, &mut self.machine.mem)?;
                executed += 1;
                match op.inst {
                    Instruction::Load { .. } => loads += 1,
                    Instruction::Store { .. } => stores += 1,
                    _ => {}
                }
                // Data-cache misses stall the whole array until resolved
                // (paper §4.3); loads were *allocated* assuming hits.
                if let (Some(dc), Some(addr)) = (&mut self.machine.dcache, info.mem_addr) {
                    mem_stall_cycles += dc.access(addr);
                }
                if let (Some(branch), Some(taken)) = (segment.branch, info.taken) {
                    if op.pc == branch.pc {
                        self.predictor.update(branch.pc, taken);
                        if taken != branch.predicted_taken {
                            // The branch resolved against the speculated
                            // direction: deeper segments are squashed (their
                            // gated writes never trigger) and execution
                            // resumes at the actual target, already set by
                            // the replayed branch.
                            executed_depth = segment.depth;
                            misspec_branch = Some((branch.pc, branch.predicted_taken));
                            break 'segments;
                        }
                    }
                }
            }
            executed_depth = segment.depth;
            if segment.branch.is_none() {
                self.machine.cpu.pc = segment.exit_pc;
            }
        }

        self.stats.array_instructions += executed as u64;
        self.stats.array_loads += loads as u64;
        self.stats.array_stores += stores as u64;

        let spans = config.invocation_cycles(timing, executed_depth);
        let mut flushed = false;
        let mut misspec_penalty: u64 = 0;
        match misspec_branch {
            Some((branch_pc, predicted)) => {
                self.stats.misspeculations += 1;
                misspec_penalty = timing.misspeculation_penalty;
                // Flush the whole configuration once the counter saturates
                // the other way (paper §4.2), or once this configuration
                // has misspeculated a bounded number of times in a row.
                let strikes = self.misspec_counts.entry(config.entry_pc).or_insert(0);
                *strikes += 1;
                if self.predictor.saturated_direction(branch_pc) == Some(!predicted)
                    || *strikes >= self.config.misspec_flush_threshold
                {
                    self.cache.flush(config.entry_pc);
                    self.stats.config_flushes += 1;
                    self.misspec_counts.remove(&config.entry_pc);
                    flushed = true;
                }
            }
            None => {
                self.stats.full_hits += 1;
                self.misspec_counts.remove(&config.entry_pc);
            }
        }

        // The array stalls on data-cache misses and pays the flush
        // penalty inside its execution window, so both belong to the
        // exec span — stats, trace, and probe events all see one number.
        let exec_span = spans.exec + mem_stall_cycles + misspec_penalty;
        self.stats.reconfig_stall_cycles += spans.stall;
        self.stats.array_exec_cycles += exec_span;
        self.stats.writeback_tail_cycles += spans.tail;

        // Always-on fabric heat, fed from the same placement and timing
        // state the spans were charged from. The stall + penalty cycles
        // outside the row model travel as the sample's residual, so
        // heat's cycles reconcile exactly with `array_exec_cycles`.
        let fabric_sample = self.fabric.record(
            config,
            timing,
            executed_depth,
            mem_stall_cycles + misspec_penalty,
        );
        debug_assert_eq!(
            fabric_sample.exec_cycles, spans.exec,
            "fabric sample diverged from the charged exec span for config @ {:#x}",
            config.entry_pc
        );

        if P::ENABLED || self.trace.is_some() {
            let event = ProbeEvent::ArrayInvoke(ArrayInvoke {
                entry_pc: config.entry_pc,
                exit_pc: self.machine.cpu.pc,
                covered: config.instruction_count() as u32,
                executed,
                loads,
                stores,
                rows: config.rows_used() as u32,
                spec_depth: executed_depth,
                misspeculated: misspec_branch.is_some(),
                flushed,
                stall_cycles: spans.stall as u32,
                exec_cycles: exec_span as u32,
                tail_cycles: spans.tail as u32,
            });
            if P::ENABLED {
                if let Some((branch_pc, _)) = misspec_branch {
                    probe.emit(ProbeEvent::SpecMispredict {
                        region_pc: config.entry_pc,
                        region_len: config.instruction_count() as u32,
                        branch_pc,
                        penalty_cycles: misspec_penalty as u32,
                    });
                }
                if flushed {
                    probe.emit(ProbeEvent::RcacheFlush {
                        pc: config.entry_pc,
                        len: config.instruction_count() as u32,
                    });
                }
                probe.emit(ProbeEvent::Fabric(FabricUtil {
                    entry_pc: config.entry_pc,
                    rows: fabric_sample.rows,
                    exec_thirds: fabric_sample.exec_thirds as u32,
                    capacity_thirds: fabric_sample.capacity_thirds as u32,
                    alu_busy_thirds: fabric_sample.busy_thirds[0] as u32,
                    mult_busy_thirds: fabric_sample.busy_thirds[1] as u32,
                    ldst_busy_thirds: fabric_sample.busy_thirds[2] as u32,
                    issued_ops: fabric_sample.issued_ops,
                    squashed_ops: fabric_sample.squashed_ops,
                    residual_cycles: fabric_sample.residual_cycles as u32,
                    writeback_writes: fabric_sample.writeback_writes,
                    writeback_slots: fabric_sample.writeback_slots as u32,
                }));
                probe.emit(event);
            }
            if let Some(trace) = &mut self.trace {
                trace.emit(event);
            }
        }

        if let Some(entry) = entry_snapshot {
            self.cross_check(config, entry);
        }

        // The pipeline is drained while the array runs.
        self.machine.reset_hazard_window();
        self.translator.note_boundary();
        self.stats.translated_instructions = self.translator.observed_instructions();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;
    use dim_mips::Reg;

    fn build(src: &str, shape: ArrayShape, slots: usize, spec: bool) -> (System, Machine) {
        let p = assemble(src).expect("assembles");
        let sys = System::new(Machine::load(&p), SystemConfig::new(shape, slots, spec));
        let baseline = Machine::load(&p);
        (sys, baseline)
    }

    fn check_equivalent(src: &str, shape: ArrayShape, slots: usize, spec: bool) -> (u64, u64) {
        let (mut sys, mut base) = build(src, shape, slots, spec);
        let r1 = sys.run(10_000_000).unwrap();
        let r2 = base.run(10_000_000).unwrap();
        assert_eq!(r1, r2, "halt reasons differ");
        for r in Reg::all() {
            assert_eq!(
                sys.machine().cpu.reg(r),
                base.cpu.reg(r),
                "register {r} differs"
            );
        }
        assert_eq!(sys.machine().output, base.output);
        (base.stats.cycles, sys.total_cycles())
    }

    const SUM_LOOP: &str = "
        main: li $t0, 500
              li $v0, 0
        loop: addu $v0, $v0, $t0
              xor  $t1, $v0, $t0
              addu $v0, $v0, $t1
              sll  $t2, $v0, 2
              addu $v0, $v0, $t2
              addiu $t0, $t0, -1
              bnez $t0, loop
              break 0";

    #[test]
    fn accelerated_matches_baseline_and_speeds_up() {
        let (base, accel) = check_equivalent(SUM_LOOP, ArrayShape::config1(), 64, false);
        assert!(accel < base, "accel {accel} >= base {base}");
    }

    #[test]
    fn speculation_matches_baseline_and_speeds_up_more() {
        let (base, spec) = check_equivalent(SUM_LOOP, ArrayShape::config1(), 64, true);
        let (_, nospec) = check_equivalent(SUM_LOOP, ArrayShape::config1(), 64, false);
        assert!(spec < base);
        // Speculation folds the loop branch into the configuration.
        assert!(spec <= nospec, "spec {spec} > nospec {nospec}");
    }

    #[test]
    fn host_split_populates_all_four_engine_buckets() {
        let (mut sys, _base) = build(SUM_LOOP, ArrayShape::config1(), 64, false);
        sys.enable_host_split(dim_obs::MonotonicClock::shared());
        sys.run(10_000_000).unwrap();
        let split = sys.host_split().expect("enabled");
        // Every loop iteration looks up the rcache; misses fetch/decode
        // and feed the translator; hits replay on the array.
        assert!(split.count(HostBucket::Rcache) > 0);
        assert!(split.count(HostBucket::FetchDecode) > 0);
        assert!(split.count(HostBucket::Translate) > 0);
        assert!(split.count(HostBucket::ArrayReplay) > 0);
        assert!(sys.stats().array_invocations > 0, "workload never warmed");
        // Priming samples guarantee a nonzero estimate per used bucket.
        assert!(split.sampled(HostBucket::Rcache) > 0);
    }

    #[test]
    fn host_split_is_off_by_default() {
        let (mut sys, _base) = build(SUM_LOOP, ArrayShape::config1(), 64, false);
        sys.run(10_000_000).unwrap();
        assert!(sys.host_split().is_none());
    }

    #[test]
    fn zero_slot_cache_never_accelerates() {
        let (mut sys, mut base) = build(SUM_LOOP, ArrayShape::config1(), 0, true);
        sys.run(10_000_000).unwrap();
        base.run(10_000_000).unwrap();
        assert_eq!(sys.stats().array_invocations, 0);
        assert_eq!(sys.total_cycles(), base.stats.cycles);
    }

    #[test]
    fn commit_tags_rcache_entry_when_cert_matches() {
        let p = assemble(SUM_LOOP).expect("assembles");
        // The loop head sits after the two one-instruction `li`s.
        let loop_pc = p.entry + 8;
        let cert = StreamingCert {
            version: dim_cgra::STREAM_CERT_VERSION,
            workload: "sum".into(),
            entry_pc: loop_pc,
            len: 7,
            accesses: vec![],
            burst: 4,
            trip_bound: Some(500),
        };
        let mut sys = System::new(
            Machine::load(&p),
            SystemConfig::new(ArrayShape::config1(), 64, false),
        );
        assert_eq!(sys.install_stream_certs([cert]), Ok(1));
        sys.run(10_000_000).unwrap();
        assert!(sys.stream_tags_applied() > 0, "loop commit never tagged");
        assert_eq!(sys.cache().stream_tag(loop_pc), Some(4));

        let mut base = Machine::load(&p);
        base.run(10_000_000).unwrap();
        for r in Reg::all() {
            assert_eq!(sys.machine().cpu.reg(r), base.cpu.reg(r), "{r} differs");
        }
    }

    #[test]
    fn commit_is_not_tagged_when_region_does_not_cover_ops() {
        let p = assemble(SUM_LOOP).expect("assembles");
        let loop_pc = p.entry + 8;
        // Certificate too short: the committed config's later ops fall
        // outside the certified region, so the tag must not apply.
        let cert = StreamingCert {
            version: dim_cgra::STREAM_CERT_VERSION,
            workload: "sum".into(),
            entry_pc: loop_pc,
            len: 3,
            accesses: vec![],
            burst: 4,
            trip_bound: None,
        };
        let mut sys = System::new(
            Machine::load(&p),
            SystemConfig::new(ArrayShape::config1(), 64, false),
        );
        sys.install_stream_certs([cert]).unwrap();
        sys.run(10_000_000).unwrap();
        assert_eq!(sys.stream_tags_applied(), 0);
        assert_eq!(sys.cache().stream_tag(loop_pc), None);
    }

    #[test]
    fn install_rejects_invalid_cert() {
        let (mut sys, _) = build(SUM_LOOP, ArrayShape::config1(), 64, false);
        let bad = StreamingCert {
            version: dim_cgra::STREAM_CERT_VERSION,
            workload: "sum".into(),
            entry_pc: 0x40_0000,
            len: 8,
            accesses: vec![],
            burst: 0, // burst must be ≥ 1
            trip_bound: None,
        };
        let err = sys.install_stream_certs([bad]).unwrap_err();
        assert!(err.contains("burst"), "{err}");
    }

    #[test]
    fn data_dependent_branch_speculation_stays_correct() {
        // Branch alternates: taken, not-taken, ... — bimodal never fully
        // stabilizes, misspeculations must not corrupt state.
        let src = "
            main: li $s0, 400
                  li $v0, 0
            loop: andi $t1, $s0, 1
                  beqz $t1, even
                  addiu $v0, $v0, 3
                  addiu $v0, $v0, 5
                  addiu $v0, $v0, 7
            even: addiu $v0, $v0, 1
                  xor   $t2, $v0, $s0
                  addu  $v0, $v0, $t2
                  addiu $s0, $s0, -1
                  bnez  $s0, loop
                  break 0";
        check_equivalent(src, ArrayShape::config2(), 64, true);
        check_equivalent(src, ArrayShape::config2(), 64, false);
    }

    #[test]
    fn memory_traffic_stays_correct_under_acceleration() {
        let src = "
            .data
            buf: .space 256
            .text
            main: li $s0, 64
                  la $s1, buf
            loop: sll $t0, $s0, 2
                  addu $t1, $s1, $t0
                  addiu $t2, $s0, 100
                  sw  $t2, -4($t1)
                  lw  $t3, -4($t1)
                  addu $s2, $s2, $t3
                  addiu $s0, $s0, -1
                  bnez $s0, loop
                  break 0";
        check_equivalent(src, ArrayShape::config1(), 64, true);
    }

    #[test]
    fn stats_account_array_activity() {
        let (mut sys, _) = build(SUM_LOOP, ArrayShape::config1(), 64, false);
        sys.run(10_000_000).unwrap();
        let s = sys.stats();
        assert!(s.array_invocations > 100, "{s:?}");
        assert!(s.array_instructions > 1000);
        assert!(s.configs_built >= 1);
        assert_eq!(s.misspeculations, 0);
        assert_eq!(s.full_hits, s.array_invocations);
        let (hits, _miss) = sys.cache().hit_miss();
        assert_eq!(hits, s.array_invocations);
    }

    #[test]
    fn total_instructions_conserved() {
        let (mut sys, mut base) = build(SUM_LOOP, ArrayShape::config3(), 256, true);
        sys.run(10_000_000).unwrap();
        base.run(10_000_000).unwrap();
        assert_eq!(sys.total_instructions(), base.stats.instructions);
    }

    #[test]
    fn tiny_array_still_correct() {
        let mut shape = ArrayShape::config1();
        shape.rows = 2;
        shape.alus_per_row = 2;
        shape.ldsts_per_row = 1;
        shape.mults_per_row = 1;
        check_equivalent(SUM_LOOP, shape, 16, true);
    }

    #[test]
    fn infinite_shape_correct_and_fast() {
        let (base, inf) = check_equivalent(SUM_LOOP, ArrayShape::infinite(), 1 << 20, true);
        assert!(inf < base);
    }
}

#[cfg(test)]
mod cross_check_tests {
    use super::*;
    use dim_mips::asm::assemble;

    /// The cross-check mode must pass silently on representative loops
    /// (pure ALU, store-only, load-only) — it panics on divergence.
    #[test]
    fn cross_check_passes_on_representative_loops() {
        let programs = [
            // ALU + speculation.
            "main: li $s0, 300
             loop: addu $v0, $v0, $s0
                   xor  $t1, $v0, $s0
                   addu $v0, $v0, $t1
                   sll  $t2, $v0, 2
                   addu $v0, $v0, $t2
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
            // Store-only bodies.
            ".data
             buf: .space 1024
             .text
             main: li $s0, 200
                   la $s1, buf
             loop: andi $t0, $s0, 0xff
                   sll  $t1, $t0, 2
                   addu $t2, $s1, $t1
                   sw   $s0, 0($t2)
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
            // Load-only bodies with a multiplier.
            ".data
             tab: .word 3, 1, 4, 1, 5, 9, 2, 6
             .text
             main: li $s0, 200
                   la $s1, tab
             loop: andi $t0, $s0, 7
                   sll  $t1, $t0, 2
                   addu $t2, $s1, $t1
                   lw   $t3, 0($t2)
                   mul  $t4, $t3, $s0
                   addu $v0, $v0, $t4
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        ];
        for src in programs {
            let program = assemble(src).expect("assembles");
            let mut config = SystemConfig::new(ArrayShape::config2(), 64, true);
            config.cross_check = true;
            let mut sys = System::new(Machine::load(&program), config);
            sys.run(1_000_000).expect("runs");
            assert!(
                sys.stats().array_invocations > 0,
                "nothing was cross-checked"
            );
        }
    }
}
