//! # dim-core
//!
//! Dynamic Instruction Merging (DIM): a hardware binary-translation
//! engine that transparently maps sequences of MIPS instructions onto a
//! coarse-grained reconfigurable array at run time — the primary
//! contribution of *Beck et al., "Transparent Reconfigurable Acceleration
//! for Heterogeneous Embedded Applications", DATE 2008*.
//!
//! The crate provides the paper's §4 machinery:
//!
//! * [`DependenceTable`] — the per-row RAW-dependence bitmaps driving
//!   operation allocation;
//! * [`Translator`] — the detection/translation state machine that turns
//!   the retiring instruction stream into array
//!   [`Configuration`](dim_cgra::Configuration)s;
//! * [`BimodalPredictor`] — 2-bit counters gating speculation across
//!   basic blocks (a [`GsharePredictor`] is provided for ablations);
//! * [`ReconfCache`] — the PC-indexed FIFO reconfiguration cache;
//! * [`System`] — the coupled MIPS + DIM + array simulator with full
//!   cycle and event accounting.
//!
//! The cardinal invariant, enforced by differential and property tests:
//! for any program and any accelerator setting, the final architectural
//! state equals a plain processor run — acceleration only changes cycle
//! counts.

#![warn(missing_docs)]

mod gshare;
mod predictor;
mod rcache;
mod report;
mod snapshot;
mod stats;
mod system;
mod tables;
mod trace;
mod translator;

pub use dim_cgra::{
    verify_cert, StreamAccess, StreamAccessKind, StreamCertError, StreamCertViolation, StreamClass,
    StreamingCert, STREAM_BURST_CAP, STREAM_CERT_VERSION,
};
pub use dim_cgra::{FabricHeat, FabricSample, RowHeat, UNIT_CLASSES, UNIT_CLASS_NAMES};
/// The workspace's shared FNV-1a 64-bit hash — the one checksum used by
/// `.dimrc` snapshots, the sweep resume journal, and the live status
/// file. Canonically defined (and golden-vector tested) in `dim-obs`.
pub use dim_obs::fnv1a64;
/// The workspace's shared magic/version/len/fnv64 framing — one helper
/// behind `.dimrc` snapshots, `status.dimstat`, and the `dim serve`
/// wire protocol, so the three formats cannot drift. Canonically
/// defined (and golden-vector tested) in `dim-obs`.
pub use dim_obs::frame;
pub use gshare::{measure_hit_rate, GsharePredictor, SpeculationPredictor};
pub use predictor::{BimodalPredictor, Counter};
pub use rcache::{EvictedEntry, ReconfCache, ReplacementPolicy};
pub use report::{fabric_heat_json, RunReport};
pub use snapshot::{
    SnapshotContents, SnapshotError, SNAPSHOT_FRAME, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::{CycleBreakdown, DimStats};
pub use system::{System, SystemConfig};
pub use tables::{live_in_sources, DependenceTable};
pub use trace::{Trace, TraceEvent};
pub use translator::{Translator, TranslatorOptions};
