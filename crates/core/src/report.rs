//! Human-readable run reports: a compact summary of what the accelerator
//! did, shared by the CLI and the examples — plus the canonical JSON
//! serialization of a [`FabricHeat`] accumulator, shared by
//! `dim heat --json` and the per-cell `heat/<cell>.json` summaries a
//! sweep writes.

use crate::System;
use dim_cgra::{FabricHeat, RowHeat, UNIT_CLASSES, UNIT_CLASS_NAMES};
use dim_obs::ObjectWriter;
use std::fmt;

fn class_counts(values: &[u64; UNIT_CLASSES]) -> String {
    let mut o = ObjectWriter::new();
    for (name, v) in UNIT_CLASS_NAMES.iter().zip(values) {
        o.field_u64(name, *v);
    }
    o.finish()
}

fn field_opt_ratio(o: &mut ObjectWriter, key: &str, value: Option<f64>) {
    match value {
        Some(v) => {
            o.field_f64(key, v);
        }
        None => {
            o.field_raw(key, "null");
        }
    }
}

fn row_heat_json(label: &str, row: &RowHeat) -> String {
    let mut o = ObjectWriter::new();
    o.field_str("row", label);
    o.field_u64("traversals", row.traversals);
    o.field_u64("active_thirds", row.active_thirds);
    o.field_raw("busy_thirds", &class_counts(&row.busy_thirds));
    o.field_raw("issued", &class_counts(&row.issued));
    o.field_u64("squashed", row.squashed);
    o.finish()
}

/// Serializes a [`FabricHeat`] accumulator as one JSON object — the
/// payload of `dim heat --json` in run mode and of the per-cell
/// `heat/<cell>.json` files a sweep writes. Deterministic: field order
/// is fixed and every value derives from the saturating counters alone,
/// so serial and parallel sweeps over the same cell produce
/// byte-identical summaries.
pub fn fabric_heat_json(heat: &FabricHeat) -> String {
    let mut o = ObjectWriter::new();
    o.field_u64("invocations", heat.invocations);
    o.field_u64("max_row", heat.max_row);
    o.field_u64("exec_thirds", heat.exec_thirds);
    o.field_u64("exec_cycles", heat.exec_cycles);
    o.field_u64("residual_cycles", heat.residual_cycles);
    o.field_raw("busy_thirds", &class_counts(&heat.busy_thirds));
    o.field_raw("capacity_thirds", &class_counts(&heat.capacity_thirds));
    o.field_raw("issued_ops", &class_counts(&heat.issued_ops));
    o.field_u64("squashed_ops", heat.squashed_ops);
    field_opt_ratio(&mut o, "fabric_util", heat.fabric_util());
    for (c, name) in UNIT_CLASS_NAMES.iter().enumerate() {
        field_opt_ratio(&mut o, &format!("{name}_util"), heat.class_util(c));
    }
    o.field_u64("writeback_writes", heat.writeback_writes);
    o.field_u64("writeback_slots", heat.writeback_slots);
    field_opt_ratio(&mut o, "writeback_saturation", heat.writeback_saturation());
    let mut rows: Vec<String> = heat
        .rows()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.traversals > 0)
        .map(|(i, r)| row_heat_json(&i.to_string(), r))
        .collect();
    if heat.overflow_row().traversals > 0 {
        rows.push(row_heat_json("overflow", heat.overflow_row()));
    }
    o.field_raw("per_row", &format!("[{}]", rows.join(",")));
    o.finish()
}

/// A formatted summary of one accelerated run. Obtained from
/// [`System::report`]; render with `Display`.
#[derive(Debug, Clone)]
pub struct RunReport {
    total_instructions: u64,
    total_cycles: u64,
    proc_instructions: u64,
    proc_cycles: u64,
    array_instructions: u64,
    array_cycles: u64,
    array_invocations: u64,
    configs_built: u64,
    cache_hits: u64,
    cache_misses: u64,
    evictions: u64,
    misspeculations: u64,
    flushes: u64,
    mean_rows: f64,
    coverage: f64,
}

impl System {
    /// Summarizes the run so far.
    pub fn report(&self) -> RunReport {
        let stats = self.stats();
        let (hits, misses) = self.cache().hit_miss();
        let total_instructions = self.total_instructions();
        RunReport {
            total_instructions,
            total_cycles: self.total_cycles(),
            proc_instructions: self.machine().stats.instructions,
            proc_cycles: self.machine().stats.cycles,
            array_instructions: stats.array_instructions,
            array_cycles: stats.total_array_cycles(),
            array_invocations: stats.array_invocations,
            configs_built: stats.configs_built,
            cache_hits: hits,
            cache_misses: misses,
            evictions: self.cache().evictions(),
            misspeculations: stats.misspeculations,
            flushes: stats.config_flushes,
            mean_rows: stats.mean_occupied_rows(),
            coverage: if total_instructions == 0 {
                0.0
            } else {
                stats.array_instructions as f64 / total_instructions as f64
            },
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "retired {} instructions in {} cycles (IPC {:.2})",
            self.total_instructions,
            self.total_cycles,
            self.total_instructions as f64 / self.total_cycles.max(1) as f64,
        )?;
        writeln!(
            f,
            "  pipeline: {:>10} instructions, {:>10} cycles",
            self.proc_instructions, self.proc_cycles
        )?;
        writeln!(
            f,
            "  array:    {:>10} instructions, {:>10} cycles ({:.1}% coverage)",
            self.array_instructions,
            self.array_cycles,
            100.0 * self.coverage
        )?;
        writeln!(
            f,
            "  configurations: {} built, {} invocations ({} hits / {} misses, {} evictions), {:.1} rows avg",
            self.configs_built,
            self.array_invocations,
            self.cache_hits,
            self.cache_misses,
            self.evictions,
            self.mean_rows,
        )?;
        write!(
            f,
            "  speculation: {} misspeculations, {} configuration flushes",
            self.misspeculations, self.flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use dim_cgra::ArrayShape;
    use dim_mips::asm::assemble;
    use dim_mips_sim::Machine;

    #[test]
    fn report_renders_consistent_numbers() {
        let program = assemble(
            "main: li $t0, 100
             loop: addu $v0, $v0, $t0
                   xor  $t1, $v0, $t0
                   addu $v0, $v0, $t1
                   addiu $t0, $t0, -1
                   bnez $t0, loop
                   break 0",
        )
        .unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config1(), 16, true),
        );
        sys.run(1_000_000).unwrap();
        let report = sys.report();
        let text = report.to_string();
        assert!(text.contains("retired"), "{text}");
        assert!(text.contains("coverage"), "{text}");
        assert!(text.contains("configurations:"), "{text}");
        // Consistency: parts sum to the whole.
        assert_eq!(
            report.total_instructions,
            report.proc_instructions + report.array_instructions
        );
        assert_eq!(
            report.total_cycles,
            report.proc_cycles + report.array_cycles
        );
        assert!(
            report.coverage > 0.5,
            "hot loop should mostly run on the array"
        );
    }
}
