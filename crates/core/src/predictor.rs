//! Bimodal branch prediction driving the speculation policy.
//!
//! The paper's speculative policy "is based on bimodal branch
//! prediction": a 2-bit saturating counter per branch. A basic block is
//! only speculated over once its branch counter saturates; a
//! configuration is flushed when the counter reaches the opposite
//! saturation point.

use std::collections::HashMap;

/// A 2-bit saturating counter state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// 0 — saturated not-taken.
    StrongNotTaken,
    /// 1.
    WeakNotTaken,
    /// 2.
    WeakTaken,
    /// 3 — saturated taken.
    StrongTaken,
}

impl Counter {
    fn update(self, taken: bool) -> Counter {
        use Counter::*;
        match (self, taken) {
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, true) => StrongTaken,
            (StrongTaken, true) => StrongTaken,
            (StrongNotTaken, false) => StrongNotTaken,
            (WeakNotTaken, false) => StrongNotTaken,
            (WeakTaken, false) => WeakNotTaken,
            (StrongTaken, false) => WeakTaken,
        }
    }

    /// `Some(direction)` when the counter is saturated.
    pub fn saturated(self) -> Option<bool> {
        match self {
            Counter::StrongTaken => Some(true),
            Counter::StrongNotTaken => Some(false),
            _ => None,
        }
    }

    /// The 2-bit encoding used by the snapshot wire format.
    pub fn to_bits(self) -> u8 {
        match self {
            Counter::StrongNotTaken => 0,
            Counter::WeakNotTaken => 1,
            Counter::WeakTaken => 2,
            Counter::StrongTaken => 3,
        }
    }

    /// Inverse of [`to_bits`](Counter::to_bits); `None` above 3.
    pub fn from_bits(bits: u8) -> Option<Counter> {
        match bits {
            0 => Some(Counter::StrongNotTaken),
            1 => Some(Counter::WeakNotTaken),
            2 => Some(Counter::WeakTaken),
            3 => Some(Counter::StrongTaken),
            _ => None,
        }
    }
}

/// Table of per-branch 2-bit counters, keyed by branch PC.
///
/// Counters start at [`Counter::WeakNotTaken`], so a branch must go the
/// same way at least twice before the translator speculates across it.
#[derive(Debug, Clone, Default)]
pub struct BimodalPredictor {
    counters: HashMap<u32, Counter>,
}

impl BimodalPredictor {
    /// Creates an empty predictor.
    pub fn new() -> BimodalPredictor {
        BimodalPredictor::default()
    }

    /// Current counter for a branch.
    pub fn counter(&self, pc: u32) -> Counter {
        self.counters
            .get(&pc)
            .copied()
            .unwrap_or(Counter::WeakNotTaken)
    }

    /// Records one executed outcome.
    pub fn update(&mut self, pc: u32, taken: bool) {
        let c = self.counter(pc).update(taken);
        self.counters.insert(pc, c);
    }

    /// `Some(direction)` when the branch is saturated and safe to
    /// speculate over.
    pub fn saturated_direction(&self, pc: u32) -> Option<bool> {
        self.counter(pc).saturated()
    }

    /// Number of branches tracked.
    pub fn tracked_branches(&self) -> usize {
        self.counters.len()
    }

    /// All tracked `(branch PC, counter)` pairs, sorted by PC so the
    /// snapshot byte stream is deterministic.
    pub fn entries(&self) -> Vec<(u32, Counter)> {
        let mut v: Vec<(u32, Counter)> = self.counters.iter().map(|(&pc, &c)| (pc, c)).collect();
        v.sort_unstable_by_key(|&(pc, _)| pc);
        v
    }

    /// Restores one counter (snapshot warm-start path).
    pub fn seed(&mut self, pc: u32, counter: Counter) {
        self.counters.insert(pc, counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_after_two_takens() {
        let mut p = BimodalPredictor::new();
        assert_eq!(p.saturated_direction(8), None);
        p.update(8, true);
        assert_eq!(p.saturated_direction(8), None);
        p.update(8, true);
        assert_eq!(p.saturated_direction(8), Some(true));
        // Stays saturated.
        p.update(8, true);
        assert_eq!(p.counter(8), Counter::StrongTaken);
    }

    #[test]
    fn opposite_saturation_takes_hysteresis() {
        let mut p = BimodalPredictor::new();
        for _ in 0..5 {
            p.update(8, true);
        }
        p.update(8, false);
        assert_eq!(p.saturated_direction(8), None); // WeakTaken
        p.update(8, false);
        assert_eq!(p.saturated_direction(8), None); // WeakNotTaken
        p.update(8, false);
        assert_eq!(p.saturated_direction(8), Some(false));
    }

    #[test]
    fn branches_are_independent() {
        let mut p = BimodalPredictor::new();
        p.update(8, true);
        p.update(8, true);
        p.update(12, false);
        assert_eq!(p.saturated_direction(8), Some(true));
        assert_eq!(p.saturated_direction(12), Some(false));
        assert_eq!(p.tracked_branches(), 2);
    }
}
