//! The DIM detection tables (paper §4.2).
//!
//! The hardware keeps, per array row, a bitmap of target registers (the
//! *dependence table*): an incoming instruction's sources are compared
//! against the bitmaps to find the first row where it can be allocated
//! without violating a RAW dependence. We model the same information as
//! the latest producing row per architectural location, which answers the
//! allocation query in O(sources) — bit-for-bit equivalent to scanning
//! the bitmaps.
//!
//! Memory ordering: addresses are unknown at translation time, so memory
//! operations keep program order — each memory op is allocated at or
//! below the row of the previous one, and the LD/ST units of one row
//! (the memory ports) issue their accesses in program order within that
//! row's cycle. Loads therefore always observe earlier stores, without
//! serializing one row per access.

use dim_mips::{DataLoc, Instruction};

/// Per-candidate-configuration dependence state.
#[derive(Debug, Clone)]
pub struct DependenceTable {
    /// Row of the most recent producer of each dense location, if any.
    producer_row: [Option<u32>; DataLoc::COUNT],
    /// Row of the most recent memory operation (program-order fence).
    last_mem_row: Option<u32>,
}

impl Default for DependenceTable {
    fn default() -> Self {
        DependenceTable::new()
    }
}

impl DependenceTable {
    /// Creates an empty table (no producers).
    pub fn new() -> DependenceTable {
        DependenceTable {
            producer_row: [None; DataLoc::COUNT],
            last_mem_row: None,
        }
    }

    /// Whether `loc` has a producer inside the candidate configuration
    /// (if not, its value is a live-in fetched from the register file).
    pub fn is_produced(&self, loc: DataLoc) -> bool {
        self.producer_row[loc.dense_index()].is_some()
    }

    /// The earliest row `inst` may be allocated to, given RAW
    /// dependences on its register sources and memory ordering.
    pub fn min_row(&self, inst: &Instruction) -> u32 {
        let mut row = 0;
        for src in inst.reads().iter() {
            if let Some(p) = self.producer_row[src.dense_index()] {
                row = row.max(p + 1);
            }
        }
        if inst.is_mem() {
            if let Some(m) = self.last_mem_row {
                // Same row allowed: the row's memory ports issue in
                // program order within the cycle.
                row = row.max(m);
            }
        }
        row
    }

    /// Records that `inst` was allocated at `row`, updating producer rows
    /// for its writes and the memory-ordering fences.
    pub fn record(&mut self, inst: &Instruction, row: u32) {
        for dst in inst.writes().iter() {
            self.producer_row[dst.dense_index()] = Some(row);
        }
        if inst.is_mem() {
            self.last_mem_row = Some(self.last_mem_row.map_or(row, |m| m.max(row)));
        }
    }
}

/// Iterates the sources of `inst` that are live-ins w.r.t. `table`.
pub fn live_in_sources<'a>(
    table: &'a DependenceTable,
    inst: &'a Instruction,
) -> impl Iterator<Item = DataLoc> + 'a {
    inst.reads()
        .iter()
        .collect::<Vec<_>>()
        .into_iter()
        .filter(move |&l| !table.is_produced(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{AluOp, MemWidth, Reg};

    fn add(rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt,
        }
    }

    fn lw(rt: Reg, base: Reg) -> Instruction {
        Instruction::Load {
            width: MemWidth::Word,
            signed: false,
            rt,
            base,
            offset: 0,
        }
    }

    fn sw(rt: Reg, base: Reg) -> Instruction {
        Instruction::Store {
            width: MemWidth::Word,
            rt,
            base,
            offset: 0,
        }
    }

    #[test]
    fn raw_dependence_pushes_down() {
        let mut t = DependenceTable::new();
        let i1 = add(Reg::T0, Reg::A0, Reg::A1);
        assert_eq!(t.min_row(&i1), 0);
        t.record(&i1, 0);
        let i2 = add(Reg::T1, Reg::T0, Reg::A1); // reads T0
        assert_eq!(t.min_row(&i2), 1);
        t.record(&i2, 1);
        let i3 = add(Reg::T2, Reg::A2, Reg::A3); // independent
        assert_eq!(t.min_row(&i3), 0);
    }

    #[test]
    fn war_and_waw_do_not_constrain() {
        let mut t = DependenceTable::new();
        t.record(&add(Reg::T0, Reg::A0, Reg::A1), 3);
        // WAW on T0 and WAR on A0: false dependencies are renamed away.
        let waw = add(Reg::T0, Reg::A2, Reg::A3);
        assert_eq!(t.min_row(&waw), 0);
    }

    #[test]
    fn memory_ops_keep_program_order_by_row() {
        let mut t = DependenceTable::new();
        let l1 = lw(Reg::T0, Reg::A0);
        t.record(&l1, 0);
        let l2 = lw(Reg::T1, Reg::A1);
        assert_eq!(t.min_row(&l2), 0); // may share the row (ports ordered)
        t.record(&l2, 0);
        let s1 = sw(Reg::T2, Reg::A2);
        assert_eq!(t.min_row(&s1), 0); // still row 0: issued after by port order
        t.record(&s1, 3); // placed further down by a RAW elsewhere
        let l3 = lw(Reg::T3, Reg::A3);
        assert_eq!(t.min_row(&l3), 3); // never above an earlier memory op
                                       // RAW on the loaded value still forces the next row.
        t.record(&l3, 3);
        let use_load = add(Reg::T5, Reg::T3, Reg::A0);
        assert_eq!(t.min_row(&use_load), 4);
    }

    #[test]
    fn live_in_detection() {
        let mut t = DependenceTable::new();
        t.record(&add(Reg::T0, Reg::A0, Reg::A1), 0);
        let i = add(Reg::T1, Reg::T0, Reg::S0);
        let live: Vec<_> = live_in_sources(&t, &i).collect();
        assert_eq!(live, vec![DataLoc::Gpr(Reg::S0)]);
    }

    #[test]
    fn hi_lo_tracked_like_registers() {
        let mut t = DependenceTable::new();
        let mult = Instruction::MulDiv {
            op: dim_mips::MulDivOp::Mult,
            rs: Reg::A0,
            rt: Reg::A1,
        };
        t.record(&mult, 2);
        let mflo = Instruction::Mflo { rd: Reg::T0 };
        assert_eq!(t.min_row(&mflo), 3);
        assert!(t.is_produced(DataLoc::Lo));
        assert!(t.is_produced(DataLoc::Hi));
    }
}
