//! The reconfiguration cache: PC-indexed FIFO store of translated
//! configurations (paper §3: "this configuration is saved in a special
//! cache, and indexed by the program counter").

use dim_cgra::Configuration;
use std::collections::{HashMap, VecDeque};

/// Replacement policy of the reconfiguration cache. The paper's cache is
/// FIFO ("a new entry in the cache (based on FIFO) is created"); LRU is
/// provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the oldest-inserted entry (the paper's policy).
    #[default]
    Fifo,
    /// Evict the least-recently *executed* entry.
    Lru,
}

/// What a capacity eviction displaced: the victim's identity (entry PC
/// plus covered length — the stable region id) and how often it was
/// reused between insertion and eviction. `uses == 0` marks a *dead*
/// eviction: the translation never repaid its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedEntry {
    /// Entry PC of the evicted configuration.
    pub pc: u32,
    /// Instructions the evicted configuration covered.
    pub len: u32,
    /// Lookup hits the entry served while resident.
    pub uses: u64,
}

/// The configuration cache (FIFO by default, per the paper).
///
/// The slot count is the headline capacity parameter swept in Table 2
/// (16 / 64 / 256 slots).
#[derive(Debug, Clone)]
pub struct ReconfCache {
    slots: usize,
    policy: ReplacementPolicy,
    entries: HashMap<u32, Configuration>,
    order: VecDeque<u32>,
    /// Lookup hits per resident entry since its (re-)insertion, for
    /// live-vs-dead eviction accounting.
    uses: HashMap<u32, u64>,
    /// `stream_ok(K)` tags: resident entries whose region matched a
    /// streaming certificate at commit time, with the certified burst.
    /// Purely a contract surface for the streaming executor — replay
    /// behavior does not consult it. A tag lives and dies with its
    /// entry (cleared on flush, eviction and replacement).
    stream_tags: HashMap<u32, u32>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    evictions_live: u64,
    evictions_dead: u64,
    flushes: u64,
}

impl ReconfCache {
    /// Creates a FIFO cache with `slots` entries (0 disables caching
    /// entirely).
    pub fn new(slots: usize) -> ReconfCache {
        ReconfCache::with_policy(slots, ReplacementPolicy::Fifo)
    }

    /// Creates a cache with an explicit replacement policy.
    pub fn with_policy(slots: usize, policy: ReplacementPolicy) -> ReconfCache {
        ReconfCache {
            slots,
            policy,
            entries: HashMap::new(),
            order: VecDeque::new(),
            uses: HashMap::new(),
            stream_tags: HashMap::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            evictions_live: 0,
            evictions_dead: 0,
            flushes: 0,
        }
    }

    /// Capacity in slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Current number of stored configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the configuration for `pc`, counting a hit or miss.
    /// Under LRU, a hit refreshes the entry's recency.
    pub fn lookup(&mut self, pc: u32) -> Option<&Configuration> {
        match self.entries.get(&pc) {
            Some(c) => {
                self.hits += 1;
                *self.uses.entry(pc).or_insert(0) += 1;
                if self.policy == ReplacementPolicy::Lru {
                    self.order.retain(|&p| p != pc);
                    self.order.push_back(pc);
                }
                Some(c)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the statistics.
    pub fn peek(&self, pc: u32) -> Option<&Configuration> {
        self.entries.get(&pc)
    }

    /// Inserts a configuration (keyed by its entry PC), evicting the
    /// oldest entry when full. Re-inserting an existing PC replaces the
    /// configuration without changing its FIFO position (and restarts
    /// its reuse count — the new translation must earn its own keep).
    /// Returns the displaced entry's identity and reuse count, if the
    /// insert evicted one.
    pub fn insert(&mut self, config: Configuration) -> Option<EvictedEntry> {
        if self.slots == 0 {
            return None;
        }
        let pc = config.entry_pc;
        self.insertions += 1;
        self.uses.insert(pc, 0);
        // A replacement translation must re-earn its tag too.
        self.stream_tags.remove(&pc);
        if self.entries.insert(pc, config).is_some() {
            return None;
        }
        self.order.push_back(pc);
        let mut evicted = None;
        while self.entries.len() > self.slots {
            // Skip stale order entries left by flushes.
            if let Some(old) = self.order.pop_front() {
                if let Some(victim) = self.entries.remove(&old) {
                    let uses = self.uses.remove(&old).unwrap_or(0);
                    self.stream_tags.remove(&old);
                    self.evictions += 1;
                    if uses > 0 {
                        self.evictions_live += 1;
                    } else {
                        self.evictions_dead += 1;
                    }
                    evicted = Some(EvictedEntry {
                        pc: old,
                        len: victim.instruction_count() as u32,
                        uses,
                    });
                }
            }
        }
        evicted
    }

    /// Removes the configuration for `pc` (misspeculation flush).
    pub fn flush(&mut self, pc: u32) {
        if self.entries.remove(&pc).is_some() {
            self.flushes += 1;
            self.uses.remove(&pc);
            self.stream_tags.remove(&pc);
            self.order.retain(|&p| p != pc);
        }
    }

    /// Tags the resident entry at `pc` as `stream_ok(burst)` — its
    /// region matched a streaming certificate at commit time. Returns
    /// `false` (and tags nothing) if no entry is resident at `pc` or
    /// `burst` is 0.
    pub fn tag_stream(&mut self, pc: u32, burst: u32) -> bool {
        if burst == 0 || !self.entries.contains_key(&pc) {
            return false;
        }
        self.stream_tags.insert(pc, burst);
        true
    }

    /// The certified burst K of the entry at `pc`, if it is resident
    /// and stream-tagged.
    pub fn stream_tag(&self, pc: u32) -> Option<u32> {
        self.stream_tags.get(&pc).copied()
    }

    /// Number of resident stream-tagged entries.
    pub fn stream_tag_count(&self) -> usize {
        self.stream_tags.len()
    }

    /// `(hits, misses)` lookup counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Configurations inserted over the run.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Capacity evictions over the run.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Capacity evictions whose victim had served at least one lookup
    /// hit while resident.
    pub fn evictions_live(&self) -> u64 {
        self.evictions_live
    }

    /// Capacity evictions whose victim was never reused after insertion
    /// — translations the cache threw away before they repaid anything.
    pub fn evictions_dead(&self) -> u64 {
        self.evictions_dead
    }

    /// Misspeculation flushes over the run.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Iterates over the stored configurations in FIFO (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &Configuration> + '_ {
        self.order.iter().filter_map(|pc| self.entries.get(pc))
    }

    /// Restores one entry without touching any statistic — the snapshot
    /// warm-start path, which must leave the hit/miss/insertion counters
    /// of the new run untouched. Entries seed in call order, so seeding
    /// a snapshot's FIFO sequence reproduces the saved eviction order
    /// exactly. Returns `false` (and stores nothing) if the cache is
    /// already at capacity or the PC is already present; snapshot
    /// loading treats that as corruption upstream.
    pub fn seed(&mut self, config: Configuration) -> bool {
        let pc = config.entry_pc;
        if self.slots == 0 || self.entries.len() >= self.slots || self.entries.contains_key(&pc) {
            return false;
        }
        self.entries.insert(pc, config);
        self.order.push_back(pc);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cgra::ArrayShape;
    use dim_mips::{AluOp, Instruction, Reg};

    fn config_at(pc: u32) -> Configuration {
        let mut c = Configuration::new(pc, ArrayShape::config1());
        let add = Instruction::Alu {
            op: AluOp::Addu,
            rd: Reg::T0,
            rs: Reg::A0,
            rt: Reg::A1,
        };
        c.place(pc, add, 0, 0).unwrap();
        c
    }

    #[test]
    fn fifo_eviction_order() {
        let mut cache = ReconfCache::new(2);
        assert_eq!(cache.insert(config_at(0x100)), None);
        assert_eq!(cache.insert(config_at(0x200)), None);
        let evicted = cache.insert(config_at(0x300)).unwrap();
        assert_eq!(evicted.pc, 0x100);
        assert_eq!(evicted.len, 1);
        assert_eq!(evicted.uses, 0);
        assert!(cache.peek(0x100).is_none());
        assert!(cache.peek(0x200).is_some());
        assert!(cache.peek(0x300).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_keeps_position() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x200));
        cache.insert(config_at(0x100)); // replace, no eviction
        assert_eq!(cache.len(), 2);
        cache.insert(config_at(0x300)); // still evicts 0x100 (oldest)
        assert!(cache.peek(0x100).is_none());
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ReconfCache::new(4);
        cache.insert(config_at(0x100));
        assert!(cache.lookup(0x100).is_some());
        assert!(cache.lookup(0x999).is_none());
        assert_eq!(cache.hit_miss(), (1, 1));
    }

    #[test]
    fn flush_removes_and_counts() {
        let mut cache = ReconfCache::new(4);
        cache.insert(config_at(0x100));
        cache.flush(0x100);
        assert!(cache.peek(0x100).is_none());
        assert_eq!(cache.flushes(), 1);
        // Flushing an absent entry is a no-op.
        cache.flush(0x100);
        assert_eq!(cache.flushes(), 1);
    }

    #[test]
    fn zero_slots_disables_caching() {
        let mut cache = ReconfCache::new(0);
        cache.insert(config_at(0x100));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_refreshes_on_hit_fifo_does_not() {
        // Insert A, B; touch A; insert C. LRU evicts B, FIFO evicts A.
        let mut lru = ReconfCache::with_policy(2, ReplacementPolicy::Lru);
        lru.insert(config_at(0x100));
        lru.insert(config_at(0x200));
        assert!(lru.lookup(0x100).is_some());
        lru.insert(config_at(0x300));
        assert!(lru.peek(0x100).is_some());
        assert!(lru.peek(0x200).is_none());

        let mut fifo = ReconfCache::new(2);
        fifo.insert(config_at(0x100));
        fifo.insert(config_at(0x200));
        assert!(fifo.lookup(0x100).is_some());
        fifo.insert(config_at(0x300));
        assert!(fifo.peek(0x100).is_none());
        assert!(fifo.peek(0x200).is_some());
    }

    /// Eviction edge cases around the capacity boundary: filling to
    /// capacity-1 and capacity must never evict; one past capacity must
    /// evict exactly the oldest entry; and this holds for slots = 1.
    #[test]
    fn eviction_boundary_at_capacity_plus_minus_one() {
        for slots in [1usize, 2, 3, 16] {
            // capacity - 1 inserts: no eviction.
            let mut cache = ReconfCache::new(slots);
            for i in 0..slots.saturating_sub(1) {
                assert_eq!(cache.insert(config_at(0x100 + 4 * i as u32)), None);
            }
            assert_eq!(cache.evictions(), 0, "slots={slots}");
            assert_eq!(cache.len(), slots - 1);

            // The capacity-th insert still fits.
            assert_eq!(
                cache.insert(config_at(0x100 + 4 * (slots as u32 - 1))),
                None
            );
            assert_eq!(cache.evictions(), 0, "slots={slots}");
            assert_eq!(cache.len(), slots);

            // capacity + 1: exactly one eviction, of the oldest PC.
            let evicted = cache.insert(config_at(0x900));
            assert_eq!(evicted.map(|e| e.pc), Some(0x100), "slots={slots}");
            assert_eq!(cache.evictions(), 1);
            assert_eq!(cache.len(), slots);
            assert!(cache.peek(0x100).is_none());
            assert!(cache.peek(0x900).is_some());
            // FIFO order after the eviction: second-oldest is next out.
            let next = cache.insert(config_at(0x904)).map(|e| e.pc);
            if slots == 1 {
                assert_eq!(next, Some(0x900));
            } else {
                assert_eq!(next, Some(0x104));
            }
        }
    }

    /// Re-inserting an existing PC when exactly full must not evict —
    /// the replacement happens in place.
    #[test]
    fn reinsert_at_capacity_does_not_evict() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x104));
        assert_eq!(cache.insert(config_at(0x100)), None);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
    }

    /// A flush at capacity opens a slot: the next insert must not evict,
    /// and the stale FIFO entry for the flushed PC must not confuse the
    /// eviction order afterwards.
    #[test]
    fn flush_at_capacity_then_insert_refills_without_eviction() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x104));
        cache.flush(0x100);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insert(config_at(0x108)), None);
        assert_eq!(cache.evictions(), 0);
        // Now 0x104 is oldest; overflow evicts it, not the flushed PC.
        assert_eq!(cache.insert(config_at(0x10c)).map(|e| e.pc), Some(0x104));
    }

    /// `seed` (the snapshot restore path) fills to capacity and refuses
    /// anything further or duplicated, without touching statistics.
    #[test]
    fn seed_respects_capacity_and_stats() {
        let mut cache = ReconfCache::new(2);
        assert!(cache.seed(config_at(0x100)));
        assert!(cache.seed(config_at(0x104)));
        assert!(!cache.seed(config_at(0x108)), "over capacity");
        assert!(!cache.seed(config_at(0x100)), "duplicate PC");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.insertions(), 0);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.hit_miss(), (0, 0));
        // Seeded order behaves as FIFO history: 0x100 evicts first.
        assert_eq!(cache.insert(config_at(0x108)).map(|e| e.pc), Some(0x100));

        let mut disabled = ReconfCache::new(0);
        assert!(!disabled.seed(config_at(0x100)), "0 slots stores nothing");
    }

    #[test]
    fn eviction_distinguishes_live_from_dead() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x200));
        assert!(cache.lookup(0x100).is_some()); // 0x100 repaid itself
        let evicted = cache.insert(config_at(0x300)).unwrap();
        assert_eq!((evicted.pc, evicted.uses), (0x100, 1));
        assert_eq!(cache.evictions_live(), 1);
        assert_eq!(cache.evictions_dead(), 0);
        let evicted = cache.insert(config_at(0x400)).unwrap();
        assert_eq!((evicted.pc, evicted.uses), (0x200, 0)); // never reused
        assert_eq!(cache.evictions_live(), 1);
        assert_eq!(cache.evictions_dead(), 1);
    }

    #[test]
    fn reinsert_restarts_reuse_count() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        assert!(cache.lookup(0x100).is_some());
        cache.insert(config_at(0x100)); // replacement translation
        cache.insert(config_at(0x200));
        // 0x100 evicts with the *new* translation's count, not the old hit.
        let evicted = cache.insert(config_at(0x300)).unwrap();
        assert_eq!((evicted.pc, evicted.uses), (0x100, 0));
        assert_eq!(cache.evictions_dead(), 1);
    }

    #[test]
    fn stream_tags_live_and_die_with_their_entry() {
        let mut cache = ReconfCache::new(2);
        assert!(!cache.tag_stream(0x100, 4), "nothing resident yet");
        cache.insert(config_at(0x100));
        assert!(!cache.tag_stream(0x100, 0), "burst 0 rejected");
        assert!(cache.tag_stream(0x100, 4));
        assert_eq!(cache.stream_tag(0x100), Some(4));
        assert_eq!(cache.stream_tag_count(), 1);

        // A replacement translation drops the tag.
        cache.insert(config_at(0x100));
        assert_eq!(cache.stream_tag(0x100), None);

        // A flush drops the tag.
        assert!(cache.tag_stream(0x100, 8));
        cache.flush(0x100);
        assert_eq!(cache.stream_tag(0x100), None);
        assert_eq!(cache.stream_tag_count(), 0);

        // A capacity eviction drops the tag.
        cache.insert(config_at(0x200));
        assert!(cache.tag_stream(0x200, 16));
        cache.insert(config_at(0x300));
        cache.insert(config_at(0x400)); // evicts 0x200
        assert!(cache.peek(0x200).is_none());
        assert_eq!(cache.stream_tag(0x200), None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut cache = ReconfCache::new(3);
        for i in 0..50 {
            cache.insert(config_at(0x100 + 4 * i));
            assert!(cache.len() <= 3);
        }
    }
}
