//! The reconfiguration cache: PC-indexed FIFO store of translated
//! configurations (paper §3: "this configuration is saved in a special
//! cache, and indexed by the program counter").

use dim_cgra::Configuration;
use std::collections::{HashMap, VecDeque};

/// Replacement policy of the reconfiguration cache. The paper's cache is
/// FIFO ("a new entry in the cache (based on FIFO) is created"); LRU is
/// provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the oldest-inserted entry (the paper's policy).
    #[default]
    Fifo,
    /// Evict the least-recently *executed* entry.
    Lru,
}

/// The configuration cache (FIFO by default, per the paper).
///
/// The slot count is the headline capacity parameter swept in Table 2
/// (16 / 64 / 256 slots).
#[derive(Debug, Clone)]
pub struct ReconfCache {
    slots: usize,
    policy: ReplacementPolicy,
    entries: HashMap<u32, Configuration>,
    order: VecDeque<u32>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    flushes: u64,
}

impl ReconfCache {
    /// Creates a FIFO cache with `slots` entries (0 disables caching
    /// entirely).
    pub fn new(slots: usize) -> ReconfCache {
        ReconfCache::with_policy(slots, ReplacementPolicy::Fifo)
    }

    /// Creates a cache with an explicit replacement policy.
    pub fn with_policy(slots: usize, policy: ReplacementPolicy) -> ReconfCache {
        ReconfCache {
            slots,
            policy,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            flushes: 0,
        }
    }

    /// Capacity in slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Current number of stored configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the configuration for `pc`, counting a hit or miss.
    /// Under LRU, a hit refreshes the entry's recency.
    pub fn lookup(&mut self, pc: u32) -> Option<&Configuration> {
        match self.entries.get(&pc) {
            Some(c) => {
                self.hits += 1;
                if self.policy == ReplacementPolicy::Lru {
                    self.order.retain(|&p| p != pc);
                    self.order.push_back(pc);
                }
                Some(c)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the statistics.
    pub fn peek(&self, pc: u32) -> Option<&Configuration> {
        self.entries.get(&pc)
    }

    /// Inserts a configuration (keyed by its entry PC), evicting the
    /// oldest entry when full. Re-inserting an existing PC replaces the
    /// configuration without changing its FIFO position. Returns the
    /// entry PC of the configuration this insert displaced, if any.
    pub fn insert(&mut self, config: Configuration) -> Option<u32> {
        if self.slots == 0 {
            return None;
        }
        let pc = config.entry_pc;
        self.insertions += 1;
        if self.entries.insert(pc, config).is_some() {
            return None;
        }
        self.order.push_back(pc);
        let mut evicted = None;
        while self.entries.len() > self.slots {
            // Skip stale order entries left by flushes.
            if let Some(old) = self.order.pop_front() {
                if self.entries.remove(&old).is_some() {
                    self.evictions += 1;
                    evicted = Some(old);
                }
            }
        }
        evicted
    }

    /// Removes the configuration for `pc` (misspeculation flush).
    pub fn flush(&mut self, pc: u32) {
        if self.entries.remove(&pc).is_some() {
            self.flushes += 1;
            self.order.retain(|&p| p != pc);
        }
    }

    /// `(hits, misses)` lookup counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Configurations inserted over the run.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Capacity evictions over the run.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Misspeculation flushes over the run.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Iterates over the stored configurations in FIFO (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &Configuration> + '_ {
        self.order.iter().filter_map(|pc| self.entries.get(pc))
    }

    /// Restores one entry without touching any statistic — the snapshot
    /// warm-start path, which must leave the hit/miss/insertion counters
    /// of the new run untouched. Entries seed in call order, so seeding
    /// a snapshot's FIFO sequence reproduces the saved eviction order
    /// exactly. Returns `false` (and stores nothing) if the cache is
    /// already at capacity or the PC is already present; snapshot
    /// loading treats that as corruption upstream.
    pub fn seed(&mut self, config: Configuration) -> bool {
        let pc = config.entry_pc;
        if self.slots == 0 || self.entries.len() >= self.slots || self.entries.contains_key(&pc) {
            return false;
        }
        self.entries.insert(pc, config);
        self.order.push_back(pc);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cgra::ArrayShape;
    use dim_mips::{AluOp, Instruction, Reg};

    fn config_at(pc: u32) -> Configuration {
        let mut c = Configuration::new(pc, ArrayShape::config1());
        let add = Instruction::Alu {
            op: AluOp::Addu,
            rd: Reg::T0,
            rs: Reg::A0,
            rt: Reg::A1,
        };
        c.place(pc, add, 0, 0).unwrap();
        c
    }

    #[test]
    fn fifo_eviction_order() {
        let mut cache = ReconfCache::new(2);
        assert_eq!(cache.insert(config_at(0x100)), None);
        assert_eq!(cache.insert(config_at(0x200)), None);
        assert_eq!(cache.insert(config_at(0x300)), Some(0x100));
        assert!(cache.peek(0x100).is_none());
        assert!(cache.peek(0x200).is_some());
        assert!(cache.peek(0x300).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_keeps_position() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x200));
        cache.insert(config_at(0x100)); // replace, no eviction
        assert_eq!(cache.len(), 2);
        cache.insert(config_at(0x300)); // still evicts 0x100 (oldest)
        assert!(cache.peek(0x100).is_none());
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ReconfCache::new(4);
        cache.insert(config_at(0x100));
        assert!(cache.lookup(0x100).is_some());
        assert!(cache.lookup(0x999).is_none());
        assert_eq!(cache.hit_miss(), (1, 1));
    }

    #[test]
    fn flush_removes_and_counts() {
        let mut cache = ReconfCache::new(4);
        cache.insert(config_at(0x100));
        cache.flush(0x100);
        assert!(cache.peek(0x100).is_none());
        assert_eq!(cache.flushes(), 1);
        // Flushing an absent entry is a no-op.
        cache.flush(0x100);
        assert_eq!(cache.flushes(), 1);
    }

    #[test]
    fn zero_slots_disables_caching() {
        let mut cache = ReconfCache::new(0);
        cache.insert(config_at(0x100));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_refreshes_on_hit_fifo_does_not() {
        // Insert A, B; touch A; insert C. LRU evicts B, FIFO evicts A.
        let mut lru = ReconfCache::with_policy(2, ReplacementPolicy::Lru);
        lru.insert(config_at(0x100));
        lru.insert(config_at(0x200));
        assert!(lru.lookup(0x100).is_some());
        lru.insert(config_at(0x300));
        assert!(lru.peek(0x100).is_some());
        assert!(lru.peek(0x200).is_none());

        let mut fifo = ReconfCache::new(2);
        fifo.insert(config_at(0x100));
        fifo.insert(config_at(0x200));
        assert!(fifo.lookup(0x100).is_some());
        fifo.insert(config_at(0x300));
        assert!(fifo.peek(0x100).is_none());
        assert!(fifo.peek(0x200).is_some());
    }

    /// Eviction edge cases around the capacity boundary: filling to
    /// capacity-1 and capacity must never evict; one past capacity must
    /// evict exactly the oldest entry; and this holds for slots = 1.
    #[test]
    fn eviction_boundary_at_capacity_plus_minus_one() {
        for slots in [1usize, 2, 3, 16] {
            // capacity - 1 inserts: no eviction.
            let mut cache = ReconfCache::new(slots);
            for i in 0..slots.saturating_sub(1) {
                assert_eq!(cache.insert(config_at(0x100 + 4 * i as u32)), None);
            }
            assert_eq!(cache.evictions(), 0, "slots={slots}");
            assert_eq!(cache.len(), slots - 1);

            // The capacity-th insert still fits.
            assert_eq!(
                cache.insert(config_at(0x100 + 4 * (slots as u32 - 1))),
                None
            );
            assert_eq!(cache.evictions(), 0, "slots={slots}");
            assert_eq!(cache.len(), slots);

            // capacity + 1: exactly one eviction, of the oldest PC.
            let evicted = cache.insert(config_at(0x900));
            assert_eq!(evicted, Some(0x100), "slots={slots}");
            assert_eq!(cache.evictions(), 1);
            assert_eq!(cache.len(), slots);
            assert!(cache.peek(0x100).is_none());
            assert!(cache.peek(0x900).is_some());
            // FIFO order after the eviction: second-oldest is next out.
            let next = cache.insert(config_at(0x904));
            if slots == 1 {
                assert_eq!(next, Some(0x900));
            } else {
                assert_eq!(next, Some(0x104));
            }
        }
    }

    /// Re-inserting an existing PC when exactly full must not evict —
    /// the replacement happens in place.
    #[test]
    fn reinsert_at_capacity_does_not_evict() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x104));
        assert_eq!(cache.insert(config_at(0x100)), None);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
    }

    /// A flush at capacity opens a slot: the next insert must not evict,
    /// and the stale FIFO entry for the flushed PC must not confuse the
    /// eviction order afterwards.
    #[test]
    fn flush_at_capacity_then_insert_refills_without_eviction() {
        let mut cache = ReconfCache::new(2);
        cache.insert(config_at(0x100));
        cache.insert(config_at(0x104));
        cache.flush(0x100);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insert(config_at(0x108)), None);
        assert_eq!(cache.evictions(), 0);
        // Now 0x104 is oldest; overflow evicts it, not the flushed PC.
        assert_eq!(cache.insert(config_at(0x10c)), Some(0x104));
    }

    /// `seed` (the snapshot restore path) fills to capacity and refuses
    /// anything further or duplicated, without touching statistics.
    #[test]
    fn seed_respects_capacity_and_stats() {
        let mut cache = ReconfCache::new(2);
        assert!(cache.seed(config_at(0x100)));
        assert!(cache.seed(config_at(0x104)));
        assert!(!cache.seed(config_at(0x108)), "over capacity");
        assert!(!cache.seed(config_at(0x100)), "duplicate PC");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.insertions(), 0);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.hit_miss(), (0, 0));
        // Seeded order behaves as FIFO history: 0x100 evicts first.
        assert_eq!(cache.insert(config_at(0x108)), Some(0x100));

        let mut disabled = ReconfCache::new(0);
        assert!(!disabled.seed(config_at(0x100)), "0 slots stores nothing");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut cache = ReconfCache::new(3);
        for i in 0..50 {
            cache.insert(config_at(0x100 + 4 * i));
            assert!(cache.len() <= 3);
        }
    }
}
