//! The DIM binary-translation engine (paper §4.2).
//!
//! The translator watches the retiring instruction stream. Translation
//! starts at the first instruction after a control transfer and stops at
//! an unsupported instruction or — without speculation — at a branch.
//! With speculation, a branch whose bimodal counter is saturated is
//! itself translated into the configuration as a gating compare and
//! collection continues into the next basic block (up to three blocks).
//! A configuration is handed to the reconfiguration cache only when it
//! merged more than three instructions.

use crate::predictor::BimodalPredictor;
use crate::tables::{live_in_sources, DependenceTable};
use dim_cgra::{ArrayShape, Configuration, PlaceError, SegmentBranch};
use dim_mips::FuClass;
use dim_mips_sim::{Effect, StepInfo};
use dim_obs::{NullProbe, Probe, ProbeEvent};

/// The commit event for a finished configuration.
fn commit_event(config: &Configuration, partial: bool) -> ProbeEvent {
    ProbeEvent::TransCommit {
        entry_pc: config.entry_pc,
        instructions: config.instruction_count() as u32,
        rows: config.rows_used() as u32,
        spec_blocks: config.segments().len().min(u8::MAX as usize) as u8,
        partial,
    }
}

/// Translation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslatorOptions {
    /// Array geometry translations are placed against.
    pub shape: ArrayShape,
    /// Whether branches may be speculated over.
    pub speculation: bool,
    /// Maximum basic blocks merged into one configuration when
    /// speculating (the paper evaluates "up to three basic blocks").
    pub max_spec_blocks: u8,
    /// Whether the array's ALUs include shifters. The CCA the paper
    /// compares against (§2.2) "does not support memory operations or
    /// shifts"; setting this false (together with a shape without LD/ST
    /// units and multipliers) reproduces that restriction.
    pub support_shifts: bool,
}

impl TranslatorOptions {
    /// Default policy for a shape: speculation on, three blocks.
    pub fn new(shape: ArrayShape) -> TranslatorOptions {
        TranslatorOptions {
            shape,
            speculation: true,
            max_spec_blocks: 3,
            support_shifts: true,
        }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    config: Configuration,
    table: DependenceTable,
    depth: u8,
}

impl Candidate {
    fn new(entry_pc: u32, shape: ArrayShape) -> Candidate {
        Candidate {
            config: Configuration::new(entry_pc, shape),
            table: DependenceTable::new(),
            depth: 0,
        }
    }
}

/// The detection/translation state machine.
///
/// Feed it every instruction the *processor* retires via
/// [`observe`](Translator::observe); it returns a finished
/// [`Configuration`] when a translation region closes and is worth
/// caching.
#[derive(Debug, Clone)]
pub struct Translator {
    opts: TranslatorOptions,
    candidate: Option<Candidate>,
    /// Whether the next observed instruction is a valid region start
    /// (i.e. it is the first instruction after a control transfer).
    boundary: bool,
    observed: u64,
}

impl Translator {
    /// Creates a translator; the first observed instruction may start a
    /// region (program entry counts as a boundary).
    pub fn new(opts: TranslatorOptions) -> Translator {
        Translator {
            opts,
            candidate: None,
            boundary: true,
            observed: 0,
        }
    }

    /// The policy in effect.
    pub fn options(&self) -> &TranslatorOptions {
        &self.opts
    }

    /// Total instructions examined by the detection hardware (drives the
    /// BT energy account).
    pub fn observed_instructions(&self) -> u64 {
        self.observed
    }

    /// Marks a region boundary without an observed instruction — the
    /// coupled system calls this after the array executes, since the
    /// processor resumes at a fresh basic block.
    pub fn note_boundary(&mut self) {
        self.boundary = true;
    }

    /// Drops any in-flight detection region and marks a boundary — the
    /// snapshot save/load path. A warm-started translator begins with no
    /// candidate, so the snapshotting system must discard its own to
    /// leave both sides in identical states; otherwise the saved run and
    /// its warm restart would translate (and cache) different regions.
    pub fn abandon_region(&mut self) {
        self.candidate = None;
        self.boundary = true;
    }

    /// Finalizes and returns the in-flight candidate, if it is worth
    /// caching, using `exit_pc` as its sequential exit. Called by the
    /// coupled system when a cache hit interrupts collection.
    ///
    /// Interrupted prefixes shorter than twice the normal threshold are
    /// discarded: caching every tiny fragment in front of an existing
    /// configuration splinters hot regions into overhead-dominated
    /// slivers (each invocation pays reconfiguration and write-back).
    pub fn take_partial(&mut self, exit_pc: u32) -> Option<Configuration> {
        self.take_partial_probed(exit_pc, &mut NullProbe)
    }

    /// Like [`take_partial`](Translator::take_partial), additionally
    /// emitting a partial [`ProbeEvent::TransCommit`] when the prefix is
    /// kept.
    pub fn take_partial_probed<P: Probe>(
        &mut self,
        exit_pc: u32,
        probe: &mut P,
    ) -> Option<Configuration> {
        let cand = self.candidate.take()?;
        if cand.config.instruction_count() < 8 {
            return None;
        }
        let result = Self::finalize(cand, exit_pc);
        if P::ENABLED {
            if let Some(config) = &result {
                probe.emit(commit_event(config, true));
            }
        }
        result
    }

    fn finalize(mut cand: Candidate, exit_pc: u32) -> Option<Configuration> {
        if !cand.config.worth_caching() {
            return None;
        }
        cand.config.finish_segment(cand.depth, None, exit_pc);
        Some(cand.config)
    }

    /// Feeds one retired instruction. Returns a finished configuration
    /// when this instruction closed a region that merged more than three
    /// instructions.
    pub fn observe(
        &mut self,
        info: &StepInfo,
        predictor: &BimodalPredictor,
    ) -> Option<Configuration> {
        self.observe_probed(info, predictor, &mut NullProbe)
    }

    /// Like [`observe`](Translator::observe), additionally emitting
    /// [`ProbeEvent::TransBegin`] when a detection region opens and
    /// [`ProbeEvent::TransCommit`] when one closes worth caching.
    pub fn observe_probed<P: Probe>(
        &mut self,
        info: &StepInfo,
        predictor: &BimodalPredictor,
        probe: &mut P,
    ) -> Option<Configuration> {
        let had_candidate = self.candidate.is_some();
        let result = self.observe_impl(info, predictor);
        if P::ENABLED {
            if !had_candidate {
                if let Some(cand) = &self.candidate {
                    probe.emit(ProbeEvent::TransBegin {
                        pc: cand.config.entry_pc,
                    });
                }
            }
            if let Some(config) = &result {
                probe.emit(commit_event(config, false));
            }
        }
        result
    }

    fn observe_impl(
        &mut self,
        info: &StepInfo,
        predictor: &BimodalPredictor,
    ) -> Option<Configuration> {
        self.observed += 1;
        let was_boundary = self.boundary;
        self.boundary = info.inst.is_control() || !matches!(info.effect, Effect::None);

        let mut cand = match self.candidate.take() {
            Some(c) => c,
            None if was_boundary => Candidate::new(info.pc, self.opts.shape),
            None => return None,
        };

        let shift_excluded = !self.opts.support_shifts
            && matches!(
                info.inst,
                dim_mips::Instruction::Shift { .. } | dim_mips::Instruction::ShiftVar { .. }
            );
        match info.inst.fu_class() {
            _ if shift_excluded => Self::finalize(cand, info.pc),
            FuClass::Unsupported => Self::finalize(cand, info.pc),
            FuClass::Branch => {
                let taken = info.taken.expect("branches report an outcome");
                let extend = self.opts.speculation
                    && cand.depth + 1 < self.opts.max_spec_blocks
                    && predictor.saturated_direction(info.pc) == Some(taken);
                if !extend {
                    return Self::finalize(cand, info.pc);
                }
                // Translate the branch as a gating compare in the array.
                let min_row = cand.table.min_row(&info.inst) as usize;
                match cand.config.place(info.pc, info.inst, cand.depth, min_row) {
                    Ok(_) => {
                        for src in live_in_sources(&cand.table, &info.inst) {
                            cand.config.note_live_in(src);
                        }
                        let taken_pc = info
                            .inst
                            .branch_target(info.pc)
                            .expect("branch has a target");
                        let branch = SegmentBranch {
                            pc: info.pc,
                            inst: info.inst,
                            predicted_taken: taken,
                            taken_pc,
                            fall_pc: info.pc.wrapping_add(4),
                        };
                        let depth = cand.depth;
                        cand.config
                            .finish_segment(depth, Some(branch), branch.predicted_pc());
                        cand.depth += 1;
                        self.candidate = Some(cand);
                        None
                    }
                    Err(_) => Self::finalize(cand, info.pc),
                }
            }
            _ => {
                let min_row = cand.table.min_row(&info.inst) as usize;
                match cand.config.place(info.pc, info.inst, cand.depth, min_row) {
                    Ok((row, _col)) => {
                        for src in live_in_sources(&cand.table, &info.inst) {
                            cand.config.note_live_in(src);
                        }
                        cand.table.record(&info.inst, row);
                        let depth = cand.depth;
                        for dst in info.inst.writes().iter() {
                            cand.config.note_writeback(dst, depth);
                        }
                        self.candidate = Some(cand);
                        None
                    }
                    Err(PlaceError::Full) | Err(PlaceError::Unsupported) => {
                        Self::finalize(cand, info.pc)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::{AluOp, BranchCond, Instruction, Reg};

    fn step(pc: u32, inst: Instruction, taken: Option<bool>) -> StepInfo {
        let next_pc = match (taken, inst.branch_target(pc)) {
            (Some(true), Some(t)) => t,
            _ => pc.wrapping_add(4),
        };
        StepInfo {
            pc,
            inst,
            next_pc,
            taken,
            mem_addr: None,
            effect: Effect::None,
        }
    }

    fn add(rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Addu,
            rd,
            rs,
            rt,
        }
    }

    fn branch(offset: i16) -> Instruction {
        Instruction::Branch {
            cond: BranchCond::Ne,
            rs: Reg::T0,
            rt: Reg::ZERO,
            offset,
        }
    }

    fn no_spec() -> Translator {
        let mut opts = TranslatorOptions::new(ArrayShape::config1());
        opts.speculation = false;
        Translator::new(opts)
    }

    #[test]
    fn straightline_region_closed_by_branch() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        for i in 0..5u32 {
            assert!(t
                .observe(
                    &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                    &p
                )
                .is_none());
        }
        let cfg = t.observe(&step(0x114, branch(-6), Some(true)), &p).unwrap();
        assert_eq!(cfg.entry_pc, 0x100);
        assert_eq!(cfg.instruction_count(), 5);
        assert_eq!(cfg.segments().len(), 1);
        assert_eq!(cfg.segments()[0].exit_pc, 0x114); // branch runs on the CPU
                                                      // Dependent adds serialize into distinct rows.
        assert_eq!(cfg.rows_used(), 5);
    }

    #[test]
    fn too_short_regions_are_discarded() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        for i in 0..3u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        assert!(t
            .observe(&step(0x10c, branch(-4), Some(true)), &p)
            .is_none());
    }

    #[test]
    fn translation_restarts_after_boundary() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        t.observe(&step(0x100, branch(4), Some(true)), &p);
        // Next instruction is a region start.
        for i in 0..4u32 {
            t.observe(
                &step(0x200 + 4 * i, add(Reg::T1, Reg::T1, Reg::A1), None),
                &p,
            );
        }
        let cfg = t
            .observe(&step(0x210, branch(-5), Some(false)), &p)
            .unwrap();
        assert_eq!(cfg.entry_pc, 0x200);
        assert_eq!(cfg.instruction_count(), 4);
    }

    #[test]
    fn mid_block_start_not_taken() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        // No boundary: the stream starts mid-block after a non-control op
        // was consumed with boundary=true, then a candidate closes; ops
        // after a plain add (non-boundary) must not start a region.
        t.observe(&step(0x100, add(Reg::T0, Reg::T0, Reg::A0), None), &p);
        // candidate open; close via unsupported:
        t.observe(&step(0x104, Instruction::Syscall, None), &p);
        // syscall sets boundary → next starts.
        assert!(t.candidate.is_none());
    }

    #[test]
    fn unsupported_closes_region() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        for i in 0..4u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T2, Reg::T2, Reg::A2), None),
                &p,
            );
        }
        let cfg = t
            .observe(&step(0x110, Instruction::Jr { rs: Reg::RA }, None), &p)
            .unwrap();
        assert_eq!(cfg.instruction_count(), 4);
        assert_eq!(cfg.segments()[0].exit_pc, 0x110);
    }

    #[test]
    fn speculation_extends_over_saturated_branch() {
        let mut t = Translator::new(TranslatorOptions::new(ArrayShape::config1()));
        let mut p = BimodalPredictor::new();
        p.update(0x110, true);
        p.update(0x110, true); // saturate taken
        for i in 0..4u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        // Branch taken, counter saturated-taken: speculate across.
        assert!(t
            .observe(&step(0x110, branch(10), Some(true)), &p)
            .is_none());
        // Continue collecting in the next block (at the taken target).
        let target = 0x110 + 4 + 40;
        for i in 0..3u32 {
            t.observe(
                &step(target + 4 * i, add(Reg::T1, Reg::T1, Reg::A1), None),
                &p,
            );
        }
        let cfg = t
            .observe(&step(target + 12, Instruction::Syscall, None), &p)
            .unwrap();
        assert_eq!(cfg.segments().len(), 2);
        assert!(cfg.segments()[0].branch.unwrap().predicted_taken);
        assert_eq!(cfg.max_depth(), 1);
        // 4 adds + branch + 3 adds
        assert_eq!(cfg.instruction_count(), 8);
    }

    #[test]
    fn speculation_depth_bounded() {
        let mut opts = TranslatorOptions::new(ArrayShape::config3());
        opts.max_spec_blocks = 2;
        let mut t = Translator::new(opts);
        let mut p = BimodalPredictor::new();
        for pc in [0x110u32, 0x130] {
            p.update(pc, true);
            p.update(pc, true);
        }
        for i in 0..4u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        assert!(t.observe(&step(0x110, branch(1), Some(true)), &p).is_none());
        for i in 0..3u32 {
            t.observe(
                &step(0x118 + 4 * i, add(Reg::T1, Reg::T1, Reg::A1), None),
                &p,
            );
        }
        // Second branch: depth limit (2 blocks) reached → region closes.
        let cfg = t.observe(&step(0x130, branch(1), Some(true)), &p).unwrap();
        assert_eq!(cfg.segments().len(), 2);
        assert_eq!(cfg.segments()[1].exit_pc, 0x130);
    }

    #[test]
    fn unsaturated_branch_closes_region_even_with_speculation() {
        let mut t = Translator::new(TranslatorOptions::new(ArrayShape::config1()));
        let p = BimodalPredictor::new();
        for i in 0..4u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        let cfg = t.observe(&step(0x110, branch(1), Some(true)), &p).unwrap();
        assert_eq!(cfg.segments().len(), 1);
    }

    #[test]
    fn live_ins_and_writebacks_tracked() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        t.observe(&step(0x100, add(Reg::T0, Reg::A0, Reg::A1), None), &p);
        t.observe(&step(0x104, add(Reg::T1, Reg::T0, Reg::A2), None), &p);
        t.observe(&step(0x108, add(Reg::T0, Reg::T1, Reg::A0), None), &p);
        t.observe(&step(0x10c, add(Reg::T2, Reg::T0, Reg::T1), None), &p);
        let cfg = t
            .observe(&step(0x110, Instruction::Syscall, None), &p)
            .unwrap();
        // Live-ins: a0, a1, a2 (t0/t1 produced internally).
        assert_eq!(cfg.live_in_count(), 3);
        // Writebacks: t0 (depth 0, last write), t1, t2.
        assert_eq!(cfg.writeback_count(), 3);
    }

    #[test]
    fn short_interrupted_partials_are_discarded() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        for i in 0..5u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        // 5 < 8: not worth splintering the region.
        assert!(t.take_partial(0x114).is_none());
        t.note_boundary();
        for i in 0..9u32 {
            t.observe(
                &step(0x300 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        let cfg = t.take_partial(0x324).unwrap();
        assert_eq!(cfg.instruction_count(), 9);
    }

    #[test]
    fn cca_mode_rejects_shifts() {
        let mut opts = TranslatorOptions::new(ArrayShape::cca_like());
        opts.support_shifts = false;
        opts.speculation = false;
        let mut t = Translator::new(opts);
        let p = BimodalPredictor::new();
        for i in 0..4u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        // A shift ends the region just like an unsupported instruction.
        let shift = Instruction::Shift {
            op: dim_mips::ShiftOp::Sll,
            rd: Reg::T1,
            rt: Reg::T0,
            shamt: 2,
        };
        let cfg = t.observe(&step(0x110, shift, None), &p).unwrap();
        assert_eq!(cfg.instruction_count(), 4);
        assert_eq!(cfg.segments()[0].exit_pc, 0x110);
    }

    #[test]
    fn translated_configs_validate() {
        let mut t = Translator::new(TranslatorOptions::new(ArrayShape::config2()));
        let mut p = BimodalPredictor::new();
        p.update(0x110, true);
        p.update(0x110, true);
        for i in 0..4u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        t.observe(&step(0x110, branch(10), Some(true)), &p);
        let target = 0x110 + 4 + 40;
        for i in 0..3u32 {
            t.observe(
                &step(target + 4 * i, add(Reg::T1, Reg::T1, Reg::A1), None),
                &p,
            );
        }
        let cfg = t.take_partial(target + 12).unwrap();
        cfg.validate().expect("structurally sound");
    }

    #[test]
    fn observed_instruction_counter() {
        let mut t = no_spec();
        let p = BimodalPredictor::new();
        for i in 0..7u32 {
            t.observe(
                &step(0x100 + 4 * i, add(Reg::T0, Reg::T0, Reg::A0), None),
                &p,
            );
        }
        assert_eq!(t.observed_instructions(), 7);
    }
}
