//! Execution tracing: a bounded record of array invocations, for
//! debugging translated code and for the CLI's `accel --trace`.

use dim_obs::{ArrayInvoke, Probe, ProbeEvent};
use std::collections::VecDeque;
use std::fmt;

/// One array invocation, as recorded by [`System`](crate::System) when
/// tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Entry PC of the executed configuration.
    pub entry_pc: u32,
    /// Instructions the configuration covers.
    pub covered: u32,
    /// Deepest speculation segment actually executed.
    pub executed_depth: u8,
    /// Whether a speculated branch resolved against its prediction.
    pub misspeculated: bool,
    /// Cycles charged for this invocation (stall + exec + write-back).
    pub cycles: u64,
    /// PC execution continued at.
    pub exit_pc: u32,
}

impl From<ArrayInvoke> for TraceEvent {
    fn from(inv: ArrayInvoke) -> TraceEvent {
        TraceEvent {
            entry_pc: inv.entry_pc,
            covered: inv.covered,
            executed_depth: inv.spec_depth,
            misspeculated: inv.misspeculated,
            cycles: inv.total_cycles(),
            exit_pc: inv.exit_pc,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "array @ {:#010x}: {} instrs, depth {}, {} cycles -> {:#010x}{}",
            self.entry_pc,
            self.covered,
            self.executed_depth,
            self.cycles,
            self.exit_pc,
            if self.misspeculated {
                "  [misspeculated]"
            } else {
                ""
            },
        )
    }
}

/// A bounded FIFO of the most recent [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that retains the last `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Records one event, dropping the oldest beyond capacity.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// `Trace` is itself a probe: it consumes the same
/// [`ProbeEvent::ArrayInvoke`] events every other sink does, so the
/// system has exactly one invocation-event path. All other event kinds
/// are ignored.
impl Probe for Trace {
    fn emit(&mut self, event: ProbeEvent) {
        if let ProbeEvent::ArrayInvoke(inv) = event {
            self.push(TraceEvent::from(inv));
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "... {} earlier invocations dropped ...", self.dropped)?;
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u32) -> TraceEvent {
        TraceEvent {
            entry_pc: pc,
            covered: 5,
            executed_depth: 0,
            misspeculated: false,
            cycles: 3,
            exit_pc: pc + 20,
        }
    }

    #[test]
    fn bounded_fifo_semantics() {
        let mut t = Trace::new(2);
        t.push(ev(0x100));
        t.push(ev(0x200));
        t.push(ev(0x300));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let pcs: Vec<u32> = t.events().map(|e| e.entry_pc).collect();
        assert_eq!(pcs, vec![0x200, 0x300]);
    }

    #[test]
    fn display_is_readable() {
        let mut t = Trace::new(8);
        let mut e = ev(0x400100);
        e.misspeculated = true;
        t.push(e);
        let s = t.to_string();
        assert!(s.contains("array @ 0x00400100"), "{s}");
        assert!(s.contains("[misspeculated]"), "{s}");
    }
}
