//! Criterion: the Figure 3 profiling pass (basic-block attribution on the
//! retiring stream).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dim_mips_sim::{Machine, Profiler};
use dim_workloads::{by_name, Scale};

fn bench_characterization(c: &mut Criterion) {
    let built = ((by_name("stringsearch").expect("exists")).build)(Scale::Tiny);
    let mut g = c.benchmark_group("characterization");
    let mut probe = Machine::load(&built.program);
    probe.run(built.max_steps).expect("runs");
    g.throughput(Throughput::Elements(probe.stats.instructions));
    g.bench_function("profile_stringsearch", |b| {
        b.iter(|| {
            let mut m = Machine::load(&built.program);
            let mut p = Profiler::new();
            m.run_with(built.max_steps, |i| p.observe(i)).expect("runs");
            std::hint::black_box(p.finish().block_count())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
