//! Criterion: one representative benchmark per workload class, run
//! baseline and accelerated — the measurement kernel behind Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use dim_bench::{run_accelerated, run_baseline};
use dim_cgra::ArrayShape;
use dim_core::SystemConfig;
use dim_workloads::{by_name, Scale};

fn bench_end_to_end(c: &mut Criterion) {
    for name in ["rijndael_enc", "jpeg_enc", "rawaudio_dec"] {
        let built = ((by_name(name).expect("exists")).build)(Scale::Tiny);
        let mut g = c.benchmark_group(name);
        g.sample_size(20);
        g.bench_function("baseline", |b| {
            b.iter(|| std::hint::black_box(run_baseline(&built).expect("valid").stats.cycles));
        });
        g.bench_function("accelerated_c2_spec", |b| {
            b.iter(|| {
                let run =
                    run_accelerated(&built, SystemConfig::new(ArrayShape::config2(), 64, true))
                        .expect("valid");
                std::hint::black_box(run.cycles)
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
