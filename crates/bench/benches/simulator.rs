//! Criterion: raw simulator substrate throughput (assembler + baseline
//! pipeline execution) — the substrate every experiment stands on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dim_mips::asm::assemble;
use dim_mips_sim::Machine;
use dim_workloads::{by_name, Scale};

fn bench_assembler(c: &mut Criterion) {
    let spec = by_name("crc32").expect("exists");
    // Reassembling the generated source exercises the full asm pipeline.
    let built = (spec.build)(Scale::Tiny);
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Elements(built.program.text.len() as u64));
    let src = "
        main: li $t0, 64
        loop: addu $v0, $v0, $t0
              sll  $t1, $v0, 2
              xor  $v0, $v0, $t1
              addiu $t0, $t0, -1
              bnez $t0, loop
              break 0";
    g.bench_function("small_program", |b| {
        b.iter(|| assemble(std::hint::black_box(src)).expect("assembles"));
    });
    g.finish();
}

fn bench_baseline_pipeline(c: &mut Criterion) {
    let built = ((by_name("crc32").expect("exists")).build)(Scale::Tiny);
    let mut g = c.benchmark_group("baseline_pipeline");
    let mut probe = Machine::load(&built.program);
    probe.run(built.max_steps).expect("runs");
    g.throughput(Throughput::Elements(probe.stats.instructions));
    g.bench_function("crc32_tiny", |b| {
        b.iter(|| {
            let mut m = Machine::load(&built.program);
            m.run(built.max_steps).expect("runs");
            std::hint::black_box(m.stats.cycles)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_assembler, bench_baseline_pipeline);
criterion_main!(benches);
