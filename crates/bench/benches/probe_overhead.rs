//! Criterion: cost of the instrumentation layer.
//!
//! `run()` is `run_probed(NullProbe)` — the probe is monomorphized in
//! and every emit site compiles away, so the `null_probe` group must
//! sit within measurement noise (<2%) of `uninstrumented`. The
//! `flight_recorder`/`recording`/`profiler` groups document what
//! observation actually costs when it is switched on; the flight
//! recorder is the always-on candidate, so its steady-state cost is
//! also gated (≤5% over `null_probe`) by `bench_flight`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dim_bench::run_baseline;
use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::Machine;
use dim_obs::{CycleProfiler, FlightRecorder, NullProbe, RecordingProbe};
use dim_workloads::{by_name, Scale};

fn bench_probe_overhead(c: &mut Criterion) {
    let built = ((by_name("crc32").expect("exists")).build)(Scale::Tiny);
    let base = run_baseline(&built).expect("baseline runs");
    let config = SystemConfig::new(ArrayShape::config2(), 64, true);

    let mut g = c.benchmark_group("probe_overhead");
    g.throughput(Throughput::Elements(base.stats.instructions));
    g.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut sys = System::new(Machine::load(&built.program), config);
            sys.run(built.max_steps).expect("runs");
            std::hint::black_box(sys.total_cycles())
        });
    });
    g.bench_function("null_probe", |b| {
        b.iter(|| {
            let mut sys = System::new(Machine::load(&built.program), config);
            sys.run_probed(built.max_steps, &mut NullProbe)
                .expect("runs");
            std::hint::black_box(sys.total_cycles())
        });
    });
    g.bench_function("flight_recorder", |b| {
        b.iter(|| {
            let mut sys = System::new(Machine::load(&built.program), config);
            let mut recorder = FlightRecorder::new(65_536);
            sys.run_probed(built.max_steps, &mut recorder)
                .expect("runs");
            std::hint::black_box((sys.total_cycles(), recorder.total()))
        });
    });
    g.bench_function("recording", |b| {
        b.iter(|| {
            let mut sys = System::new(Machine::load(&built.program), config);
            let mut probe = RecordingProbe::new();
            sys.run_probed(built.max_steps, &mut probe).expect("runs");
            std::hint::black_box((sys.total_cycles(), probe.events.len()))
        });
    });
    g.bench_function("profiler", |b| {
        b.iter(|| {
            let mut sys = System::new(Machine::load(&built.program), config);
            let mut profiler = CycleProfiler::new();
            sys.run_probed(built.max_steps, &mut profiler)
                .expect("runs");
            std::hint::black_box(profiler.into_profile().total_cycles())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_probe_overhead);
criterion_main!(benches);
