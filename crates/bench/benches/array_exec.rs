//! Criterion: accelerated-system throughput on a loop that executes
//! almost entirely from the reconfiguration cache — the array replay
//! fast path (reconfigure + execute + write back).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips::asm::assemble;
use dim_mips_sim::Machine;

fn bench_array_exec(c: &mut Criterion) {
    let program = assemble(
        "
        main: li $s0, 2000
        loop: xor  $t0, $v0, $s0
              sll  $t1, $s0, 3
              addu $t2, $t0, $t1
              srl  $t3, $t2, 2
              addu $v0, $v0, $t3
              addiu $s0, $s0, -1
              bnez $s0, loop
              break 0",
    )
    .expect("assembles");
    let mut g = c.benchmark_group("array_exec");
    let mut probe = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config1(), 64, true),
    );
    probe.run(10_000_000).expect("runs");
    g.throughput(Throughput::Elements(probe.total_instructions()));
    for (label, shape) in [
        ("config1", ArrayShape::config1()),
        ("config3", ArrayShape::config3()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut sys =
                    System::new(Machine::load(&program), SystemConfig::new(shape, 64, true));
                sys.run(10_000_000).expect("runs");
                std::hint::black_box(sys.total_cycles())
            });
        });
    }
    g.finish();
}

fn bench_dataflow_executor(c: &mut Criterion) {
    use dim_cgra::{execute_dataflow, EntryContext};
    use dim_core::{BimodalPredictor, Translator, TranslatorOptions};
    use dim_mips_sim::Effect;

    // Harvest a real configuration from a hot loop.
    let program = assemble(
        "
        main: li $s0, 10
        loop: addu $v0, $v0, $s0
              xor  $t1, $v0, $s0
              addu $v0, $v0, $t1
              sll  $t2, $v0, 2
              addu $v0, $v0, $t2
              srl  $t3, $v0, 1
              addu $v0, $v0, $t3
              addiu $s0, $s0, -1
              bnez $s0, loop
              break 0",
    )
    .expect("assembles");
    let mut machine = Machine::load(&program);
    let mut translator = Translator::new(TranslatorOptions::new(ArrayShape::config2()));
    let mut predictor = BimodalPredictor::new();
    let mut config = None;
    machine
        .run_with(10_000, |info| {
            if let Some(taken) = info.taken {
                predictor.update(info.pc, taken);
            }
            let mut info = *info;
            info.effect = Effect::None;
            if let Some(done) = translator.observe(&info, &predictor) {
                config.get_or_insert(done);
            }
        })
        .expect("runs");
    let config = config.expect("loop produced a configuration");

    let mut g = c.benchmark_group("dataflow_executor");
    g.throughput(Throughput::Elements(config.instruction_count() as u64));
    g.bench_function("hot_loop_config", |b| {
        b.iter(|| {
            let mut ctx = EntryContext {
                regs: [7; 32],
                hi: 0,
                lo: 0,
            };
            let mut mem: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
            std::hint::black_box(execute_dataflow(&config, &mut ctx, &mut mem).expect("executes"))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_array_exec, bench_dataflow_executor);
criterion_main!(benches);
