//! Criterion: DIM binary-translation throughput — how fast the detection
//! engine consumes the retiring instruction stream (the paper's claim is
//! that this is trivial hardware working in parallel; here we check the
//! model itself is not the simulation bottleneck).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dim_cgra::ArrayShape;
use dim_core::{BimodalPredictor, Translator, TranslatorOptions};
use dim_mips::asm::assemble;
use dim_mips_sim::Machine;

fn bench_translation(c: &mut Criterion) {
    // Capture a real instruction stream once.
    let program = assemble(
        "
        main: li $s0, 300
        loop: andi $t0, $s0, 7
              sll  $t1, $t0, 2
              addu $t2, $t1, $s0
              xor  $t3, $t2, $t0
              addu $v0, $v0, $t3
              addiu $s0, $s0, -1
              bnez $s0, loop
              break 0",
    )
    .expect("assembles");
    let mut machine = Machine::load(&program);
    let mut stream = Vec::new();
    machine
        .run_with(1_000_000, |info| stream.push(*info))
        .expect("runs");

    let mut g = c.benchmark_group("translation");
    g.throughput(Throughput::Elements(stream.len() as u64));
    for (label, spec) in [("nospec", false), ("spec", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut opts = TranslatorOptions::new(ArrayShape::config1());
                opts.speculation = spec;
                let mut t = Translator::new(opts);
                let mut p = BimodalPredictor::new();
                let mut built = 0u32;
                for info in &stream {
                    if let Some(taken) = info.taken {
                        p.update(info.pc, taken);
                    }
                    if t.observe(info, &p).is_some() {
                        built += 1;
                    }
                }
                std::hint::black_box(built)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
