//! Whole-suite watchdog drill: every bundled workload must run to
//! completion, validate, and keep the online invariant watchdog silent.
//! A trip here means the simulator's probe stream violated one of its
//! own conservation laws — a bug worth the test time to catch early.

use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::Machine;
use dim_obs::FlightGuard;
use dim_workloads::{suite, validate, Scale};

#[test]
fn every_workload_runs_clean_under_the_watchdog() {
    let suite = suite();
    assert_eq!(suite.len(), 18, "suite size changed; update this drill");
    for spec in suite {
        let built = (spec.build)(Scale::Tiny);
        let mut system = System::new(
            Machine::load(&built.program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        let mut guard = FlightGuard::new(spec.name, 4096, 64, system.stored_bits_per_config());
        system
            .run_probed(built.max_steps, &mut guard)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        validate(system.machine(), &built).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(
            guard.violation().is_none(),
            "{}: watchdog tripped: {}",
            spec.name,
            guard.violation().expect("just checked")
        );
        assert!(
            guard.recorder().total() > 0,
            "{}: recorder saw no events",
            spec.name
        );
        // The retained window must replay through the trace validator.
        dim_obs::replay::read_trace(&guard.dump())
            .unwrap_or_else(|e| panic!("{}: dump did not validate: {e}", spec.name));
    }
}
