//! Figure 3 — benchmark characterization.
//!
//! (a) how many of the hottest basic blocks are needed to cover
//!     20/40/60/80/99% of all executed instructions;
//! (b) average instructions per branch (dynamic basic-block size).
//!
//! Usage: `fig3_characterization [tiny|small|full]` (default: full).

use dim_bench::TextTable;
use dim_mips_sim::{Machine, Profiler};
use dim_workloads::{suite, Scale};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    }
}

fn main() {
    let scale = scale_from_args();
    let fractions = [0.2, 0.4, 0.6, 0.8, 0.99];

    let mut t3a = TextTable::new(["benchmark", "20%", "40%", "60%", "80%", "99%", "total BBs"]);
    let mut t3b = TextTable::new(["benchmark", "instr/branch"]);

    for spec in suite() {
        let built = (spec.build)(scale);
        let mut machine = Machine::load(&built.program);
        let mut profiler = Profiler::new();
        machine
            .run_with(built.max_steps, |i| profiler.observe(i))
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let profile = profiler.finish();
        let curve = profile.coverage_curve(&fractions);
        let mut row = vec![spec.name.to_string()];
        row.extend(curve.iter().map(|(_, n)| n.to_string()));
        row.push(profile.block_count().to_string());
        t3a.row(row);
        t3b.row([
            spec.name.to_string(),
            format!("{:.2}", profile.instructions_per_branch()),
        ]);
    }

    println!("Figure 3a — basic blocks needed for a given execution coverage");
    println!("{}", t3a.render());
    println!("Figure 3b — average instructions per branch");
    println!("{}", t3b.render());
}
