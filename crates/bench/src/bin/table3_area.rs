//! Table 3 — area evaluation:
//! (a) functional units, multiplexers and DIM hardware in gates for
//!     configuration #1;
//! (b) bits to store one configuration in the reconfiguration cache;
//! (c) bytes for caches of 2..256 slots.
//!
//! Usage: `table3_area` (no benchmark runs — the model is analytic).

use dim_bench::TextTable;
use dim_cgra::{cache_bytes, encoding_breakdown, ArrayShape, EncodingParams};
use dim_energy::{area_report, GateCosts};

fn main() {
    let shape = ArrayShape::config1();
    let costs = GateCosts::default();
    let report = area_report(&shape, &costs);

    println!("Table 3a — area of configuration #1 (gates)");
    let mut t = TextTable::new(["unit", "#", "gates"]);
    t.row([
        "ALU".to_string(),
        report.units.alus.to_string(),
        report.alu_gates.to_string(),
    ]);
    t.row([
        "LD/ST".to_string(),
        report.units.ldsts.to_string(),
        report.ldst_gates.to_string(),
    ]);
    t.row([
        "Multiplier".to_string(),
        report.units.mults.to_string(),
        report.mult_gates.to_string(),
    ]);
    t.row([
        "Input mux".to_string(),
        report.units.input_muxes.to_string(),
        report.input_mux_gates.to_string(),
    ]);
    t.row([
        "Output mux".to_string(),
        report.units.output_muxes.to_string(),
        report.output_mux_gates.to_string(),
    ]);
    t.row([
        "DIM hardware".to_string(),
        "1".to_string(),
        report.dim_gates.to_string(),
    ]);
    t.row([
        "Total".to_string(),
        String::new(),
        report.total_gates().to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "≈ {} transistors (paper: ~2.66M, vs 2.4M for a MIPS R10000 core)\n",
        report.total_transistors(&costs)
    );

    println!("Table 3b — bits per stored configuration (configuration #1)");
    let params = EncodingParams::default();
    let bits = encoding_breakdown(&shape, &params);
    let mut t = TextTable::new(["table", "#bits"]);
    t.row([
        "Write bitmap (detection only)".to_string(),
        bits.write_bitmap_bits.to_string(),
    ]);
    t.row(["Resource table".to_string(), bits.resource_bits.to_string()]);
    t.row(["Reads table".to_string(), bits.reads_bits.to_string()]);
    t.row(["Writes table".to_string(), bits.writes_bits.to_string()]);
    t.row([
        "Context start".to_string(),
        bits.context_start_bits.to_string(),
    ]);
    t.row([
        "Context current".to_string(),
        bits.context_current_bits.to_string(),
    ]);
    t.row([
        "Immediate table".to_string(),
        bits.immediate_bits.to_string(),
    ]);
    t.row(["Total stored".to_string(), bits.stored_bits().to_string()]);
    println!("{}", t.render());

    println!("Table 3c — reconfiguration cache size");
    let mut t = TextTable::new(["#slots", "#bytes"]);
    for slots in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        t.row([
            slots.to_string(),
            cache_bytes(&shape, &params, slots).to_string(),
        ]);
    }
    println!("{}", t.render());
}
