//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. speculation depth (basic blocks merged per configuration);
//! 2. ALU levels per processor cycle (the array's row-chaining speed);
//! 3. the misspeculation flush threshold;
//! 4. perfect vs realistic (4 KiB I/D) caches — the paper assumes hits
//!    but specifies that a miss stalls the whole array;
//! 5. DIM's array vs a CCA-like baseline without memory ops or shifts
//!    (the related work the paper positions against, §2.2);
//! 6. DIM vs an in-order dual-issue superscalar (the §1 foil);
//! 7. the speculation gate's predictor: bimodal (paper) vs gshare;
//! 8. the cache replacement policy (FIFO, per the paper, vs LRU);
//! 9. power gating of unused rows (the paper's announced future work).
//!
//! Usage: `ablations [tiny|small|full] [--jobs N]` (default: small —
//! ablations are exploratory, not headline numbers). With `--jobs N`
//! the nine studies run concurrently on a work-stealing pool; stdout is
//! identical to a serial run because sections print in a fixed order.

use dim_bench::{jobs_from_args, ratio, report_pool, run_accelerated, run_baseline, TextTable};
use dim_cgra::ArrayShape;
use dim_core::SystemConfig;
use dim_energy::{energy_breakdown, energy_breakdown_gated, PowerModel};
use dim_mips_sim::{CacheConfig, CacheSim};
use dim_sweep::execute_jobs;
use dim_workloads::{by_name, Scale};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    }
}

const BENCHES: [&str; 4] = ["rijndael_enc", "sha", "stringsearch", "rawaudio_dec"];

fn section(title: &str, t: TextTable) -> String {
    format!("{title}\n{}", t.render())
}

fn ablation_spec_depth(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "nospec", "2 blocks", "3 blocks", "4 blocks"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let base = run_baseline(&built).expect("baseline").stats.cycles;
        let mut cells = vec![name.to_string()];
        for (spec, blocks) in [(false, 3), (true, 2), (true, 3), (true, 4)] {
            let mut cfg = SystemConfig::new(ArrayShape::config2(), 64, spec);
            cfg.max_spec_blocks = blocks;
            let run = run_accelerated(&built, cfg).expect("valid");
            cells.push(ratio(base as f64 / run.cycles as f64));
        }
        t.row(cells);
    }
    section(
        "Ablation 1 — speedup vs speculation depth (C#2, 64 slots)",
        t,
    )
}

fn ablation_alu_levels(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "1 row/cycle", "3 rows/cycle"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let base = run_baseline(&built).expect("baseline").stats.cycles;
        let mut cells = vec![name.to_string()];
        for levels in [1u64, 3] {
            let mut cfg = SystemConfig::new(ArrayShape::config2(), 64, true);
            cfg.timing.alu_rows_per_cycle = levels;
            let run = run_accelerated(&built, cfg).expect("valid");
            cells.push(ratio(base as f64 / run.cycles as f64));
        }
        t.row(cells);
    }
    section(
        "Ablation 2 — speedup vs ALU levels per cycle (C#2, 64 slots, spec)",
        t,
    )
}

fn ablation_flush_threshold(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "flush@1", "flush@8", "never"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let base = run_baseline(&built).expect("baseline").stats.cycles;
        let mut cells = vec![name.to_string()];
        for threshold in [1u32, 8, u32::MAX] {
            let mut cfg = SystemConfig::new(ArrayShape::config2(), 64, true);
            cfg.misspec_flush_threshold = threshold;
            let run = run_accelerated(&built, cfg).expect("valid");
            cells.push(ratio(base as f64 / run.cycles as f64));
        }
        t.row(cells);
    }
    section(
        "Ablation 3 — speedup vs misspeculation flush threshold (C#2, 64 slots, spec)",
        t,
    )
}

fn ablation_caches(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "perfect", "4KiB caches", "dcache miss rate"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let base = run_baseline(&built).expect("baseline").stats.cycles;
        let perfect = run_accelerated(&built, SystemConfig::new(ArrayShape::config2(), 64, true))
            .expect("valid");
        // Baseline with caches, accelerated with caches: both sides pay.
        let mut base_m = dim_mips_sim::Machine::load(&built.program);
        base_m.icache = Some(CacheSim::new(CacheConfig::icache_4k()));
        base_m.dcache = Some(CacheSim::new(CacheConfig::dcache_4k()));
        base_m.run(built.max_steps).expect("runs");
        let mut sys = dim_core::System::new(
            {
                let mut m = dim_mips_sim::Machine::load(&built.program);
                m.icache = Some(CacheSim::new(CacheConfig::icache_4k()));
                m.dcache = Some(CacheSim::new(CacheConfig::dcache_4k()));
                m
            },
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        sys.run(built.max_steps).expect("runs");
        let dstats = sys
            .machine()
            .dcache
            .as_ref()
            .expect("dcache configured")
            .stats();
        t.row([
            name.to_string(),
            ratio(base as f64 / perfect.cycles as f64),
            ratio(base_m.stats.cycles as f64 / sys.total_cycles() as f64),
            format!("{:.2}%", 100.0 * dstats.miss_rate()),
        ]);
    }
    section(
        "Ablation 4 — speedup with perfect vs 4KiB I/D caches (C#2, 64 slots, spec)",
        t,
    )
}

fn ablation_cca(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "DIM C#1 spec", "CCA-like"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let base = run_baseline(&built).expect("baseline").stats.cycles;
        let dim = run_accelerated(&built, SystemConfig::new(ArrayShape::config1(), 64, true))
            .expect("valid");
        let mut cca = SystemConfig::new(ArrayShape::cca_like(), 64, false);
        cca.support_shifts = false;
        let cca = run_accelerated(&built, cca).expect("valid");
        t.row([
            name.to_string(),
            ratio(base as f64 / dim.cycles as f64),
            ratio(base as f64 / cca.cycles as f64),
        ]);
    }
    section(
        "Ablation 5 — DIM array vs CCA-like baseline (no memory ops, no shifts; 64 slots)",
        t,
    )
}

fn ablation_superscalar(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "superscalar 2w", "DIM C#1", "DIM C#3"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let mut machine = dim_mips_sim::Machine::load(&built.program);
        let mut ss =
            dim_mips_sim::SuperscalarModel::new(dim_mips_sim::SuperscalarConfig::default());
        machine
            .run_with(built.max_steps, |i| ss.observe(i))
            .expect("runs");
        let base = machine.stats.cycles;
        let ss_cycles = ss.finish();
        let dim1 = run_accelerated(&built, SystemConfig::new(ArrayShape::config1(), 64, true))
            .expect("valid");
        let dim3 = run_accelerated(&built, SystemConfig::new(ArrayShape::config3(), 64, true))
            .expect("valid");
        t.row([
            name.to_string(),
            ratio(base as f64 / ss_cycles as f64),
            ratio(base as f64 / dim1.cycles as f64),
            ratio(base as f64 / dim3.cycles as f64),
        ]);
    }
    section(
        "Ablation 6 — DIM (C#1, 64 slots, spec) vs in-order 2-wide superscalar",
        t,
    )
}

fn ablation_predictor(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "bimodal", "gshare(12,8)"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let mut machine = dim_mips_sim::Machine::load(&built.program);
        let mut trace: Vec<(u32, bool)> = Vec::new();
        machine
            .run_with(built.max_steps, |i| {
                if let Some(taken) = i.taken {
                    trace.push((i.pc, taken));
                }
            })
            .expect("runs");
        let bi = dim_core::measure_hit_rate(
            &mut dim_core::BimodalPredictor::new(),
            trace.iter().copied(),
        );
        let gs = dim_core::measure_hit_rate(
            &mut dim_core::GsharePredictor::new(12, 8),
            trace.iter().copied(),
        );
        t.row([
            name.to_string(),
            format!("{:.1}%", 100.0 * bi),
            format!("{:.1}%", 100.0 * gs),
        ]);
    }
    section(
        "Ablation 7 — speculation-gate predictor hit rate on real branch traces",
        t,
    )
}

fn ablation_replacement(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "FIFO", "LRU"]);
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let base = run_baseline(&built).expect("baseline").stats.cycles;
        let mut cells = vec![name.to_string()];
        for policy in [
            dim_core::ReplacementPolicy::Fifo,
            dim_core::ReplacementPolicy::Lru,
        ] {
            let mut cfg = SystemConfig::new(ArrayShape::config2(), 16, true);
            cfg.cache_policy = policy;
            let run = run_accelerated(&built, cfg).expect("valid");
            cells.push(ratio(base as f64 / run.cycles as f64));
        }
        t.row(cells);
    }
    section(
        "Ablation 8 — reconfiguration-cache replacement: FIFO (paper) vs LRU (16 slots, spec)",
        t,
    )
}

fn ablation_power_gating(scale: Scale) -> String {
    let mut t = TextTable::new(["benchmark", "ungated", "gated", "saving"]);
    let model = PowerModel::default();
    for name in BENCHES {
        let built = ((by_name(name).expect("known")).build)(scale);
        let shape = ArrayShape::config3();
        let run = run_accelerated(&built, SystemConfig::new(shape, 64, true)).expect("valid");
        let plain = energy_breakdown(&run.system.machine().stats, run.system.stats(), &model);
        let gated = energy_breakdown_gated(
            &run.system.machine().stats,
            run.system.stats(),
            &model,
            shape.rows,
        );
        t.row([
            name.to_string(),
            format!("{:.0}", plain.total()),
            format!("{:.0}", gated.total()),
            format!("{:.1}%", 100.0 * (1.0 - gated.total() / plain.total())),
        ]);
    }
    section(
        "Ablation 9 — total energy with and without power gating (C#3, 64 slots, spec)",
        t,
    )
}

fn main() {
    let scale = scale_from_args();
    let studies: Vec<fn(Scale) -> String> = vec![
        ablation_spec_depth,
        ablation_alu_levels,
        ablation_flush_threshold,
        ablation_caches,
        ablation_cca,
        ablation_superscalar,
        ablation_predictor,
        ablation_replacement,
        ablation_power_gating,
    ];
    let jobs: Vec<_> = studies
        .into_iter()
        .map(|f| move |_w: usize| f(scale))
        .collect();
    let (sections, pool) = execute_jobs(jobs, jobs_from_args());
    report_pool(&pool);
    for s in sections {
        println!("{s}");
    }
}
