//! Figure 5 — average power per cycle, broken down by subsystem (core,
//! instruction memory, data memory, array + reconfiguration cache, BT
//! hardware), for the most dataflow (Rijndael E.), most control
//! (RawAudio D.) and middle-ground (JPEG E.) benchmarks, on
//! configurations #1 and #3 with 64 cache slots, with and without
//! speculation, next to the plain MIPS.
//!
//! Usage: `fig5_power [tiny|small|full] [--jobs N]` (default: full,
//! serial). The table on stdout is identical at any worker count.

use dim_bench::{jobs_from_args, report_pool, run_accelerated, run_baseline, TextTable};
use dim_cgra::ArrayShape;
use dim_core::{DimStats, SystemConfig};
use dim_energy::{energy_breakdown, EnergyBreakdown, PowerModel};
use dim_sweep::execute_jobs;
use dim_workloads::{by_name, Scale};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    }
}

const BENCHES: [&str; 3] = ["rijndael_enc", "rawaudio_dec", "jpeg_enc"];

fn row_cells(label: String, e: &EnergyBreakdown) -> Vec<String> {
    vec![
        label,
        format!("{:.1}", e.core),
        format!("{:.1}", e.imem),
        format!("{:.1}", e.dmem),
        format!("{:.2}", e.array + e.rcache),
        format!("{:.2}", e.bt),
        format!("{:.1}", e.total()),
    ]
}

fn main() {
    let scale = scale_from_args();
    let model = PowerModel::default();

    println!("Figure 5 — average power per cycle (abstract units), 64 cache slots");
    let mut t = TextTable::new(["run", "core", "imem", "dmem", "array+cache", "bt", "total"]);

    let jobs: Vec<_> = BENCHES
        .into_iter()
        .map(|name| {
            move |_w: usize| {
                let built = ((by_name(name).expect("known benchmark")).build)(scale);
                let base = run_baseline(&built).unwrap_or_else(|e| panic!("{name}: {e}"));
                let e = energy_breakdown(&base.stats, &DimStats::default(), &model)
                    .average_power(base.stats.cycles);
                let mut rows = vec![row_cells(format!("{name} / MIPS only"), &e)];

                for (cfg_name, shape) in [
                    ("C#1", ArrayShape::config1()),
                    ("C#3", ArrayShape::config3()),
                ] {
                    for spec in [false, true] {
                        let run = run_accelerated(&built, SystemConfig::new(shape, 64, spec))
                            .unwrap_or_else(|e| panic!("{name}: {e}"));
                        let e = energy_breakdown(
                            &run.system.machine().stats,
                            run.system.stats(),
                            &model,
                        )
                        .average_power(run.cycles);
                        let mode = if spec { "spec" } else { "nospec" };
                        rows.push(row_cells(format!("{name} / {cfg_name} {mode}"), &e));
                    }
                }
                rows
            }
        })
        .collect();
    let (bench_rows, pool) = execute_jobs(jobs, jobs_from_args());
    report_pool(&pool);
    for rows in bench_rows {
        for row in rows {
            t.row(row);
        }
    }
    println!("{}", t.render());
}
