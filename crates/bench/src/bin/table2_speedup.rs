//! Table 2 — speedup of the reconfigurable array coupled to the MIPS
//! processor, for array configurations #1/#2/#3 (Table 1), with and
//! without speculation, with 16/64/256 reconfiguration-cache slots, plus
//! the ideal (infinite resources) columns.
//!
//! Usage: `table2_speedup [tiny|small|full] [--csv] [--jobs N]`
//! (default: full, serial). With `--csv`, the speedup grid is emitted as
//! comma-separated values (one header row), ready for plotting. With
//! `--jobs N`, benchmarks run on an N-worker work-stealing pool; the
//! table on stdout is identical to a serial run.

use dim_bench::{jobs_from_args, ratio, report_pool, table2_row, TextTable, CACHE_SLOTS, SHAPES};
use dim_sweep::execute_jobs;
use dim_workloads::{suite, Scale};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    }
}

fn main() {
    let scale = scale_from_args();
    let csv = std::env::args().any(|a| a == "--csv");

    if !csv {
        print_table1();
    }
    run_table2(scale, csv);
}

fn print_table1() {
    println!("Table 1 — array configurations");
    let mut t1 = TextTable::new(["", "C#1", "C#2", "C#3"]);
    let shapes: Vec<_> = SHAPES.iter().map(|(_, f)| f()).collect();
    t1.row(std::iter::once("#rows".to_string()).chain(shapes.iter().map(|s| s.rows.to_string())));
    t1.row(
        std::iter::once("#columns".to_string())
            .chain(shapes.iter().map(|s| s.columns().to_string())),
    );
    t1.row(
        std::iter::once("#ALU / row".to_string())
            .chain(shapes.iter().map(|s| s.alus_per_row.to_string())),
    );
    t1.row(
        std::iter::once("#mult / row".to_string())
            .chain(shapes.iter().map(|s| s.mults_per_row.to_string())),
    );
    t1.row(
        std::iter::once("#ld/st / row".to_string())
            .chain(shapes.iter().map(|s| s.ldsts_per_row.to_string())),
    );
    println!("{}", t1.render());
}

fn run_table2(scale: Scale, csv: bool) {
    if !csv {
        println!("Table 2 — speedup over the standalone MIPS (columns: cache slots)");
    }
    let mut header = vec!["benchmark".to_string()];
    for (name, _) in SHAPES {
        for spec in ["nospec", "spec"] {
            for slots in CACHE_SLOTS {
                header.push(format!("{name}/{spec}/{slots}"));
            }
        }
    }
    header.push("ideal/nospec".into());
    header.push("ideal/spec".into());
    let mut t2 = TextTable::new(header);

    let jobs: Vec<_> = suite()
        .into_iter()
        .map(|spec| {
            move |_w: usize| {
                let built = (spec.build)(scale);
                let row = table2_row(&built).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                eprintln!("  finished {}", row.name);
                row
            }
        })
        .collect();
    let (rows, pool) = execute_jobs(jobs, jobs_from_args());
    report_pool(&pool);

    let mut sums = vec![0.0f64; 3 * 2 * 3 + 2];
    let mut count = 0usize;
    for row in rows {
        let mut cells = vec![row.name.to_string()];
        let mut flat = Vec::new();
        for si in 0..3 {
            for pi in 0..2 {
                for ci in 0..3 {
                    flat.push(row.speedups[si][pi][ci]);
                }
            }
        }
        flat.push(row.ideal_no_spec);
        flat.push(row.ideal_spec);
        for (i, v) in flat.iter().enumerate() {
            sums[i] += v;
            cells.push(ratio(*v));
        }
        count += 1;
        t2.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(ratio(s / count as f64));
    }
    t2.row(avg);
    if csv {
        println!("{}", t2.to_csv());
    } else {
        println!("{}", t2.render());
    }
}
