//! Figure 4 — average speedup surface: one series per array
//! configuration and speculation mode, across cache sizes (the summary
//! view of Table 2).
//!
//! Usage: `fig4_summary [tiny|small|full]` (default: full).

use dim_bench::{ratio, table2_row, TextTable, CACHE_SLOTS, SHAPES};
use dim_workloads::{suite, Scale};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    }
}

#[allow(clippy::needless_range_loop)] // 3-D index math reads clearer here
fn main() {
    let scale = scale_from_args();
    let mut sums = [[[0.0f64; 3]; 2]; 3];
    let mut count = 0usize;
    for spec in suite() {
        let built = (spec.build)(scale);
        let row = table2_row(&built).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        for si in 0..3 {
            for pi in 0..2 {
                for ci in 0..3 {
                    sums[si][pi][ci] += row.speedups[si][pi][ci];
                }
            }
        }
        count += 1;
        eprintln!("  finished {}", spec.name);
    }

    println!("Figure 4 — average speedup by configuration (rows) and cache slots (columns)");
    let mut t = TextTable::new(["series", "16 slots", "64 slots", "256 slots"]);
    for (si, (name, _)) in SHAPES.iter().enumerate() {
        for (pi, mode) in ["no speculation", "speculation"].iter().enumerate() {
            let cells: Vec<String> = std::iter::once(format!("C{name} {mode}"))
                .chain(
                    CACHE_SLOTS
                        .iter()
                        .enumerate()
                        .map(|(ci, _)| ratio(sums[si][pi][ci] / count as f64)),
                )
                .collect();
            t.row(cells);
        }
    }
    println!("{}", t.render());
}
