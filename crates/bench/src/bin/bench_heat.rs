//! Steady-state cost gate for fabric-heat observability.
//!
//! The per-unit busy/idle accounting runs inside the system on every
//! configuration execution, and each execution additionally emits one
//! `Fabric` event through the probe seam. This gate runs two workloads
//! three ways — uninstrumented, `run_probed` with [`NullProbe`] and
//! `run_probed` with a probe that aggregates fabric samples host-side
//! the way `dim heat` consumers do — taking the minimum wall time over
//! several repetitions, and fails (exit 1) if observing the fabric
//! stream costs more than 5% over the `NullProbe` baseline in
//! aggregate. The numbers land in `BENCH_heat.json` so CI archives the
//! trend.
//!
//! Usage: `bench_heat [--out <dir>] [--reps N]`

use dim_bench::run_baseline;
use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::Machine;
use dim_obs::{NullProbe, ObjectWriter, Probe, ProbeEvent};
use dim_workloads::{by_name, BuiltBenchmark, Scale};
use std::time::Instant;

const WORKLOADS: [&str; 2] = ["crc32", "sha"];
const THRESHOLD_PCT: f64 = 5.0;

/// Host-side fabric aggregation, shaped like the `dim heat` trace
/// consumer: every `Fabric` sample folds into running busy/capacity
/// totals.
#[derive(Default)]
struct HeatProbe {
    fabric_events: u64,
    busy_thirds: u64,
    capacity_thirds: u64,
    issued_ops: u64,
}

impl Probe for HeatProbe {
    fn emit(&mut self, event: ProbeEvent) {
        if let ProbeEvent::Fabric(f) = event {
            self.fabric_events += 1;
            self.busy_thirds += u64::from(f.alu_busy_thirds)
                + u64::from(f.mult_busy_thirds)
                + u64::from(f.ldst_busy_thirds);
            self.capacity_thirds += u64::from(f.capacity_thirds);
            self.issued_ops += u64::from(f.issued_ops);
        }
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn min_nanos(reps: u32, mut run: impl FnMut()) -> u64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
        })
        .min()
        .expect("at least one rep")
}

struct Row {
    name: &'static str,
    uninstrumented: u64,
    null_probe: u64,
    heat: u64,
    fabric_events: u64,
}

fn measure(name: &'static str, built: &BuiltBenchmark, reps: u32) -> Row {
    let config = SystemConfig::new(ArrayShape::config2(), 64, true);
    let uninstrumented = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.run(built.max_steps).expect("runs");
        std::hint::black_box(sys.fabric_heat().total_busy_thirds());
    });
    let null_probe = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.run_probed(built.max_steps, &mut NullProbe)
            .expect("runs");
        std::hint::black_box(sys.fabric_heat().total_busy_thirds());
    });
    let mut fabric_events = 0;
    let heat = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        let mut probe = HeatProbe::default();
        sys.run_probed(built.max_steps, &mut probe).expect("runs");
        // The probe's aggregate must agree with the in-system
        // accumulator — observing through the seam loses nothing.
        assert_eq!(probe.busy_thirds, sys.fabric_heat().total_busy_thirds());
        assert_eq!(
            probe.capacity_thirds,
            sys.fabric_heat().total_capacity_thirds()
        );
        assert_eq!(probe.fabric_events, sys.fabric_heat().invocations);
        fabric_events = probe.fabric_events;
        std::hint::black_box(probe.issued_ops);
    });
    Row {
        name,
        uninstrumented,
        null_probe,
        heat,
        fabric_events,
    }
}

fn overhead_pct(baseline: u64, candidate: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    100.0 * (candidate as f64 - baseline as f64) / baseline as f64
}

fn main() {
    let out_dir = arg_value("--out").unwrap_or_else(|| "bench-out".to_string());
    let reps: u32 = arg_value("--reps").map_or(7, |v| v.parse().expect("--reps: not a number"));

    let mut rows = Vec::new();
    for name in WORKLOADS {
        let built = (by_name(name).expect("workload exists").build)(Scale::Tiny);
        run_baseline(&built).expect("baseline validates");
        let row = measure(name, &built, reps);
        eprintln!(
            "  {name}: uninstrumented {:.3} ms, null {:.3} ms, heat {:.3} ms \
             ({} fabric events, {:+.2}% vs null)",
            row.uninstrumented as f64 / 1e6,
            row.null_probe as f64 / 1e6,
            row.heat as f64 / 1e6,
            row.fabric_events,
            overhead_pct(row.null_probe, row.heat),
        );
        rows.push(row);
    }

    let null_total: u64 = rows.iter().map(|r| r.null_probe).sum();
    let heat_total: u64 = rows.iter().map(|r| r.heat).sum();
    let overall = overhead_pct(null_total, heat_total);
    let ok = overall <= THRESHOLD_PCT;

    let mut workloads_json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            workloads_json.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_str("name", r.name)
            .field_u64("uninstrumented_nanos_min", r.uninstrumented)
            .field_u64("null_probe_nanos_min", r.null_probe)
            .field_u64("heat_nanos_min", r.heat)
            .field_u64("fabric_events", r.fabric_events)
            .field_f64("overhead_pct", overhead_pct(r.null_probe, r.heat));
        workloads_json.push_str(&o.finish());
    }
    workloads_json.push(']');

    let mut doc = ObjectWriter::new();
    doc.field_str("bench", "heat_overhead")
        .field_u64("reps", u64::from(reps))
        .field_raw("workloads", &workloads_json)
        .field_f64("overall_overhead_pct", overall)
        .field_f64("threshold_pct", THRESHOLD_PCT)
        .field_bool("ok", ok);

    std::fs::create_dir_all(&out_dir).expect("create --out dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_heat.json");
    std::fs::write(&path, format!("{}\n", doc.finish())).expect("write BENCH_heat.json");
    println!(
        "fabric-heat observer overhead {overall:+.2}% vs NullProbe (threshold {THRESHOLD_PCT}%) \
         -> {}",
        path.display()
    );
    if !ok {
        eprintln!("bench_heat: overhead beyond threshold");
        std::process::exit(1);
    }
}
