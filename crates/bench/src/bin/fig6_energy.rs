//! Figure 6 — total energy for the same matrix as Figure 5, plus the
//! headline average energy saving of configuration #2 with 64 slots
//! across the whole suite (the paper reports 1.73×).
//!
//! Usage: `fig6_energy [tiny|small|full] [--jobs N]` (default: full,
//! serial). The tables on stdout are identical at any worker count.

use dim_bench::{jobs_from_args, ratio, report_pool, run_accelerated, run_baseline, TextTable};
use dim_cgra::ArrayShape;
use dim_core::{DimStats, SystemConfig};
use dim_energy::{energy_breakdown, PowerModel};
use dim_sweep::execute_jobs;
use dim_workloads::{by_name, suite, Scale};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    }
}

const BENCHES: [&str; 3] = ["rijndael_enc", "rawaudio_dec", "jpeg_enc"];

fn main() {
    let scale = scale_from_args();
    let model = PowerModel::default();

    println!("Figure 6 — total energy (abstract units), 64 cache slots");
    let mut t = TextTable::new([
        "run",
        "core",
        "imem",
        "dmem",
        "array+cache",
        "bt",
        "total",
        "vs MIPS",
    ]);
    let workers = jobs_from_args();
    let table_jobs: Vec<_> = BENCHES
        .into_iter()
        .map(|name| {
            move |_w: usize| {
                let built = ((by_name(name).expect("known benchmark")).build)(scale);
                let base = run_baseline(&built).unwrap_or_else(|e| panic!("{name}: {e}"));
                let e_base = energy_breakdown(&base.stats, &DimStats::default(), &model);
                let mut rows = vec![vec![
                    format!("{name} / MIPS only"),
                    format!("{:.0}", e_base.core),
                    format!("{:.0}", e_base.imem),
                    format!("{:.0}", e_base.dmem),
                    format!("{:.0}", e_base.array + e_base.rcache),
                    format!("{:.0}", e_base.bt),
                    format!("{:.0}", e_base.total()),
                    "1.00".into(),
                ]];
                for (cfg_name, shape) in [
                    ("C#1", ArrayShape::config1()),
                    ("C#3", ArrayShape::config3()),
                ] {
                    for spec in [false, true] {
                        let run = run_accelerated(&built, SystemConfig::new(shape, 64, spec))
                            .unwrap_or_else(|e| panic!("{name}: {e}"));
                        let e = energy_breakdown(
                            &run.system.machine().stats,
                            run.system.stats(),
                            &model,
                        );
                        let mode = if spec { "spec" } else { "nospec" };
                        rows.push(vec![
                            format!("{name} / {cfg_name} {mode}"),
                            format!("{:.0}", e.core),
                            format!("{:.0}", e.imem),
                            format!("{:.0}", e.dmem),
                            format!("{:.0}", e.array + e.rcache),
                            format!("{:.0}", e.bt),
                            format!("{:.0}", e.total()),
                            ratio(e_base.total() / e.total()),
                        ]);
                    }
                }
                rows
            }
        })
        .collect();
    let (bench_rows, pool) = execute_jobs(table_jobs, workers);
    report_pool(&pool);
    for rows in bench_rows {
        for row in rows {
            t.row(row);
        }
    }
    println!("{}", t.render());

    // Headline: suite-average energy saving for configuration #2, 64 slots.
    let saving_jobs: Vec<_> = suite()
        .into_iter()
        .map(|spec| {
            move |_w: usize| {
                let built = (spec.build)(scale);
                let base = run_baseline(&built).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                let e_base = energy_breakdown(&base.stats, &DimStats::default(), &model).total();
                let run =
                    run_accelerated(&built, SystemConfig::new(ArrayShape::config2(), 64, true))
                        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                let e_accel =
                    energy_breakdown(&run.system.machine().stats, run.system.stats(), &model)
                        .total();
                eprintln!("  finished {}", spec.name);
                e_base / e_accel
            }
        })
        .collect();
    let (savings, pool) = execute_jobs(saving_jobs, workers);
    report_pool(&pool);
    let saving_sum: f64 = savings.iter().sum();
    let count = savings.len();
    println!(
        "Suite-average energy saving, C#2 / 64 slots / speculation: {}x (paper: 1.73x)",
        ratio(saving_sum / count as f64)
    );
}
