//! Steady-state cost gate for the always-on flight recorder.
//!
//! Runs two workloads three ways — uninstrumented, `run_probed` with
//! [`NullProbe`] and `run_probed` with a [`FlightRecorder`] at the
//! `dim accel` default window — taking the minimum wall time over
//! several repetitions, and fails (exit 1) if the recorder's overhead
//! over the `NullProbe` baseline exceeds 5% in aggregate. The numbers
//! land in `BENCH_flight.json` so CI archives the trend.
//!
//! Usage: `bench_flight [--out <dir>] [--reps N]`

use dim_bench::run_baseline;
use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::Machine;
use dim_obs::{FlightRecorder, NullProbe, ObjectWriter};
use dim_workloads::{by_name, BuiltBenchmark, Scale};
use std::time::Instant;

/// Same window `dim accel --watchdog` uses by default.
const FLIGHT_CAPACITY: usize = 65_536;
const WORKLOADS: [&str; 2] = ["crc32", "sha"];
const THRESHOLD_PCT: f64 = 5.0;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn min_nanos(reps: u32, mut run: impl FnMut()) -> u64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
        })
        .min()
        .expect("at least one rep")
}

struct Row {
    name: &'static str,
    uninstrumented: u64,
    null_probe: u64,
    flight: u64,
    events: u64,
}

fn measure(name: &'static str, built: &BuiltBenchmark, reps: u32) -> Row {
    let config = SystemConfig::new(ArrayShape::config2(), 64, true);
    let uninstrumented = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.run(built.max_steps).expect("runs");
        std::hint::black_box(sys.total_cycles());
    });
    let null_probe = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.run_probed(built.max_steps, &mut NullProbe)
            .expect("runs");
        std::hint::black_box(sys.total_cycles());
    });
    let mut events = 0;
    let flight = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        let mut recorder = FlightRecorder::new(FLIGHT_CAPACITY);
        sys.run_probed(built.max_steps, &mut recorder)
            .expect("runs");
        events = recorder.total();
        std::hint::black_box(sys.total_cycles());
    });
    Row {
        name,
        uninstrumented,
        null_probe,
        flight,
        events,
    }
}

fn overhead_pct(baseline: u64, candidate: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    100.0 * (candidate as f64 - baseline as f64) / baseline as f64
}

fn main() {
    let out_dir = arg_value("--out").unwrap_or_else(|| "bench-out".to_string());
    let reps: u32 = arg_value("--reps").map_or(7, |v| v.parse().expect("--reps: not a number"));

    let mut rows = Vec::new();
    for name in WORKLOADS {
        let built = (by_name(name).expect("workload exists").build)(Scale::Tiny);
        run_baseline(&built).expect("baseline validates");
        let row = measure(name, &built, reps);
        eprintln!(
            "  {name}: uninstrumented {:.3} ms, null {:.3} ms, flight {:.3} ms \
             ({} events, {:+.2}% vs null)",
            row.uninstrumented as f64 / 1e6,
            row.null_probe as f64 / 1e6,
            row.flight as f64 / 1e6,
            row.events,
            overhead_pct(row.null_probe, row.flight),
        );
        rows.push(row);
    }

    let null_total: u64 = rows.iter().map(|r| r.null_probe).sum();
    let flight_total: u64 = rows.iter().map(|r| r.flight).sum();
    let overall = overhead_pct(null_total, flight_total);
    let ok = overall <= THRESHOLD_PCT;

    let mut workloads_json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            workloads_json.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_str("name", r.name)
            .field_u64("uninstrumented_nanos_min", r.uninstrumented)
            .field_u64("null_probe_nanos_min", r.null_probe)
            .field_u64("flight_nanos_min", r.flight)
            .field_u64("events", r.events)
            .field_f64("overhead_pct", overhead_pct(r.null_probe, r.flight));
        workloads_json.push_str(&o.finish());
    }
    workloads_json.push(']');

    let mut doc = ObjectWriter::new();
    doc.field_str("bench", "flight_overhead")
        .field_u64("flight_capacity", FLIGHT_CAPACITY as u64)
        .field_u64("reps", u64::from(reps))
        .field_raw("workloads", &workloads_json)
        .field_f64("overall_overhead_pct", overall)
        .field_f64("threshold_pct", THRESHOLD_PCT)
        .field_bool("ok", ok);

    std::fs::create_dir_all(&out_dir).expect("create --out dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_flight.json");
    std::fs::write(&path, format!("{}\n", doc.finish())).expect("write BENCH_flight.json");
    println!(
        "flight recorder overhead {overall:+.2}% vs NullProbe (threshold {THRESHOLD_PCT}%) -> {}",
        path.display()
    );
    if !ok {
        eprintln!("bench_flight: overhead beyond threshold");
        std::process::exit(1);
    }
}
