//! Steady-state cost gate for wall-clock span tracing.
//!
//! Runs two workloads three ways — uninstrumented, with a live
//! [`SpanSheet`] recording the request-level spans a server would, and
//! with the engine's [`HostSplit`] attribution enabled on top — taking
//! the minimum wall time over several repetitions, and fails (exit 1)
//! if the fully-instrumented configuration's overhead over the
//! uninstrumented baseline exceeds 5% in aggregate. The sampled
//! host-split design is what keeps this bounded: only every 64th
//! section occurrence reads the clock. The numbers land in
//! `BENCH_span.json` so CI archives the trend.
//!
//! Usage: `bench_span [--out <dir>] [--reps N]`

use dim_bench::run_baseline;
use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::Machine;
use dim_obs::{MonotonicClock, ObjectWriter, SharedClock, SpanSheet};
use dim_workloads::{by_name, BuiltBenchmark, Scale};
use std::sync::Arc;
use std::time::Instant;

const WORKLOADS: [&str; 2] = ["crc32", "sha"];
const THRESHOLD_PCT: f64 = 5.0;
/// Matches the serve-side default sheet size.
const SPAN_CAPACITY: usize = 16_384;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn min_nanos(reps: u32, mut run: impl FnMut()) -> u64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
        })
        .min()
        .expect("at least one rep")
}

struct Row {
    name: &'static str,
    uninstrumented: u64,
    spans_only: u64,
    spans_and_split: u64,
    sampled: u64,
}

fn measure(name: &'static str, built: &BuiltBenchmark, reps: u32) -> Row {
    let config = SystemConfig::new(ArrayShape::config2(), 64, true);
    let uninstrumented = min_nanos(reps, || {
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.run(built.max_steps).expect("runs");
        std::hint::black_box(sys.total_cycles());
    });
    // What a serving worker records per request: a root plus a handful
    // of stage spans around the simulation.
    let clock: SharedClock = MonotonicClock::shared();
    let sheet = SpanSheet::new(Arc::clone(&clock), SPAN_CAPACITY);
    let mut seq = 0u64;
    let spans_only = min_nanos(reps, || {
        seq += 1;
        let root = sheet.begin_root("request", "bench", seq);
        let exec = sheet.begin("exec", root);
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.run(built.max_steps).expect("runs");
        std::hint::black_box(sys.total_cycles());
        sheet.end(exec);
        sheet.end(root);
    });
    let mut sampled = 0u64;
    let spans_and_split = min_nanos(reps, || {
        seq += 1;
        let root = sheet.begin_root("request", "bench", seq);
        let exec = sheet.begin("exec", root);
        let mut sys = System::new(Machine::load(&built.program), config);
        sys.enable_host_split(Arc::clone(&clock));
        sys.run(built.max_steps).expect("runs");
        std::hint::black_box(sys.total_cycles());
        let split = sys.host_split().expect("split enabled");
        sampled = dim_obs::HostBucket::ALL
            .iter()
            .map(|&b| split.sampled(b))
            .sum();
        sheet.attr(exec, split);
        sheet.end(exec);
        sheet.end(root);
    });
    Row {
        name,
        uninstrumented,
        spans_only,
        spans_and_split,
        sampled,
    }
}

fn overhead_pct(baseline: u64, candidate: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    100.0 * (candidate as f64 - baseline as f64) / baseline as f64
}

fn main() {
    let out_dir = arg_value("--out").unwrap_or_else(|| "bench-out".to_string());
    let reps: u32 = arg_value("--reps").map_or(7, |v| v.parse().expect("--reps: not a number"));

    let mut rows = Vec::new();
    for name in WORKLOADS {
        let built = (by_name(name).expect("workload exists").build)(Scale::Tiny);
        run_baseline(&built).expect("baseline validates");
        let row = measure(name, &built, reps);
        eprintln!(
            "  {name}: uninstrumented {:.3} ms, spans {:.3} ms, spans+split {:.3} ms \
             ({} clock samples, {:+.2}% vs uninstrumented)",
            row.uninstrumented as f64 / 1e6,
            row.spans_only as f64 / 1e6,
            row.spans_and_split as f64 / 1e6,
            row.sampled,
            overhead_pct(row.uninstrumented, row.spans_and_split),
        );
        rows.push(row);
    }

    let base_total: u64 = rows.iter().map(|r| r.uninstrumented).sum();
    let full_total: u64 = rows.iter().map(|r| r.spans_and_split).sum();
    let overall = overhead_pct(base_total, full_total);
    let ok = overall <= THRESHOLD_PCT;

    let mut workloads_json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            workloads_json.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_str("name", r.name)
            .field_u64("uninstrumented_nanos_min", r.uninstrumented)
            .field_u64("spans_nanos_min", r.spans_only)
            .field_u64("spans_and_split_nanos_min", r.spans_and_split)
            .field_u64("clock_samples", r.sampled)
            .field_f64(
                "overhead_pct",
                overhead_pct(r.uninstrumented, r.spans_and_split),
            );
        workloads_json.push_str(&o.finish());
    }
    workloads_json.push(']');

    let mut doc = ObjectWriter::new();
    doc.field_str("bench", "span_overhead")
        .field_u64("span_capacity", SPAN_CAPACITY as u64)
        .field_u64("reps", u64::from(reps))
        .field_raw("workloads", &workloads_json)
        .field_f64("overall_overhead_pct", overall)
        .field_f64("threshold_pct", THRESHOLD_PCT)
        .field_bool("ok", ok);

    std::fs::create_dir_all(&out_dir).expect("create --out dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_span.json");
    std::fs::write(&path, format!("{}\n", doc.finish())).expect("write BENCH_span.json");
    println!(
        "span tracing overhead {overall:+.2}% vs uninstrumented (threshold {THRESHOLD_PCT}%) -> {}",
        path.display()
    );
    if !ok {
        eprintln!("bench_span: overhead beyond threshold");
        std::process::exit(1);
    }
}
