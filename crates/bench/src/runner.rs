//! Shared experiment runners: baseline vs accelerated runs with output
//! validation, and the standard parameter grid of the paper's Table 2.

use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_mips_sim::{HaltReason, Machine};
use dim_obs::{CycleProfile, CycleProfiler, ObjectWriter};
use dim_workloads::{validate, BuiltBenchmark, WorkloadError};

/// The three array configurations of Table 1, by name.
#[allow(clippy::type_complexity)]
pub const SHAPES: [(&str, fn() -> ArrayShape); 3] = [
    ("#1", ArrayShape::config1),
    ("#2", ArrayShape::config2),
    ("#3", ArrayShape::config3),
];

/// The cache-slot axis of Table 2.
pub const CACHE_SLOTS: [usize; 3] = [16, 64, 256];

/// A finished accelerated run with its validated system state.
#[derive(Debug)]
pub struct AcceleratedRun {
    /// The coupled system after the run.
    pub system: System,
    /// Total cycles (processor + array).
    pub cycles: u64,
}

/// Runs the benchmark on the plain pipeline, validating the result.
///
/// # Errors
///
/// Propagates simulation/validation failures — a failure here is a bug in
/// either a kernel or the simulator, so harnesses treat it as fatal.
pub fn run_baseline(built: &BuiltBenchmark) -> Result<Machine, WorkloadError> {
    dim_workloads::run_baseline(built)
}

/// Runs the benchmark on the MIPS+DIM+array system and validates that the
/// accelerated run produced byte-identical results.
///
/// # Errors
///
/// Propagates simulation/validation failures.
pub fn run_accelerated(
    built: &BuiltBenchmark,
    config: SystemConfig,
) -> Result<AcceleratedRun, WorkloadError> {
    let mut system = System::new(Machine::load(&built.program), config);
    match system.run(built.max_steps)? {
        HaltReason::StepLimit => {
            return Err(WorkloadError::Timeout {
                max_steps: built.max_steps,
            })
        }
        HaltReason::Exit(_) => {}
    }
    validate(system.machine(), built)?;
    let cycles = system.total_cycles();
    Ok(AcceleratedRun { system, cycles })
}

/// Like [`run_accelerated`], but observed through an arbitrary
/// [`Probe`](dim_obs::Probe) — the hook the perf harness uses to attach
/// a `(CycleProfiler, MetricsRegistry)` fan-out to a single run.
///
/// # Errors
///
/// Propagates simulation/validation failures.
pub fn run_instrumented<P: dim_obs::Probe>(
    built: &BuiltBenchmark,
    config: SystemConfig,
    probe: &mut P,
) -> Result<AcceleratedRun, WorkloadError> {
    let mut system = System::new(Machine::load(&built.program), config);
    match system.run_probed(built.max_steps, probe)? {
        HaltReason::StepLimit => {
            return Err(WorkloadError::Timeout {
                max_steps: built.max_steps,
            })
        }
        HaltReason::Exit(_) => {}
    }
    validate(system.machine(), built)?;
    let cycles = system.total_cycles();
    Ok(AcceleratedRun { system, cycles })
}

/// A validated accelerated run plus its per-block cycle attribution.
#[derive(Debug)]
pub struct ProfiledRun {
    /// The run itself.
    pub run: AcceleratedRun,
    /// Per-block cycle attribution; its column sums equal
    /// [`AcceleratedRun::cycles`] exactly.
    pub profile: CycleProfile,
}

impl ProfiledRun {
    /// Serializes the run (workload name, cycle total, full attribution
    /// profile) as one machine-readable JSON object for harness export.
    pub fn to_json(&self, name: &str) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("workload", name);
        o.field_u64("total_cycles", self.run.cycles);
        o.field_u64("pipeline_cycles", self.run.system.machine().stats.cycles);
        o.field_u64("array_cycles", self.run.system.stats().total_array_cycles());
        o.field_raw("profile", &self.profile.to_json());
        o.finish()
    }
}

/// Like [`run_accelerated`], but also attributes every cycle of the run
/// to its static basic block via [`CycleProfiler`].
///
/// # Errors
///
/// Propagates simulation/validation failures, and reports a corrupted
/// run if the attribution does not sum to the cycle total.
pub fn run_profiled(
    built: &BuiltBenchmark,
    config: SystemConfig,
) -> Result<ProfiledRun, WorkloadError> {
    let mut system = System::new(Machine::load(&built.program), config);
    let mut profiler = CycleProfiler::new();
    match system.run_probed(built.max_steps, &mut profiler)? {
        HaltReason::StepLimit => {
            return Err(WorkloadError::Timeout {
                max_steps: built.max_steps,
            })
        }
        HaltReason::Exit(_) => {}
    }
    validate(system.machine(), built)?;
    let cycles = system.total_cycles();
    let profile = profiler.into_profile();
    assert_eq!(
        profile.total_cycles(),
        cycles,
        "cycle attribution must account for every cycle"
    );
    Ok(ProfiledRun {
        run: AcceleratedRun { system, cycles },
        profile,
    })
}

/// A validated accelerated run plus its region-level forensics.
#[derive(Debug)]
pub struct ExplainedRun {
    /// The run itself.
    pub run: AcceleratedRun,
    /// Per-region lifecycle and cycle attribution; the scalar bucket
    /// plus all region attributions equal [`AcceleratedRun::cycles`]
    /// exactly.
    pub explanation: dim_explain::Explanation,
}

/// Like [`run_accelerated`], but additionally traces the run through an
/// in-memory [`JsonlSink`](dim_obs::JsonlSink) and analyzes the trace
/// into a region-level [`Explanation`](dim_explain::Explanation) —
/// which regions accelerated, which translations were wasted, where
/// misspeculation ate the winnings.
///
/// # Errors
///
/// Propagates simulation/validation failures.
///
/// # Panics
///
/// Panics if the trace the run just wrote fails replay or the region
/// attribution does not conserve the cycle total — both are simulator
/// bugs, not workload conditions.
pub fn run_explained(
    built: &BuiltBenchmark,
    config: SystemConfig,
) -> Result<ExplainedRun, WorkloadError> {
    let mut system = System::new(Machine::load(&built.program), config);
    let mut sink = dim_obs::JsonlSink::new(Vec::new(), built.name, system.stored_bits_per_config());
    match system.run_probed(built.max_steps, &mut sink)? {
        HaltReason::StepLimit => {
            return Err(WorkloadError::Timeout {
                max_steps: built.max_steps,
            })
        }
        HaltReason::Exit(_) => {}
    }
    validate(system.machine(), built)?;
    let cycles = system.total_cycles();
    let (buf, io_error) = sink.into_inner();
    assert!(io_error.is_none(), "in-memory trace write cannot fail");
    let text = String::from_utf8(buf).expect("trace is UTF-8");
    let explanation = dim_explain::explain_text(&text)
        .unwrap_or_else(|e| panic!("self-written trace must replay: {e}"));
    assert_eq!(
        explanation.attributed_total(),
        cycles,
        "region attribution must account for every cycle"
    );
    Ok(ExplainedRun {
        run: AcceleratedRun { system, cycles },
        explanation,
    })
}

/// Computes the speedup of a configuration over the baseline cycle count.
pub fn speedup(baseline_cycles: u64, accelerated_cycles: u64) -> f64 {
    baseline_cycles as f64 / accelerated_cycles.max(1) as f64
}

/// Parses `--jobs N` from the process arguments (default 1 = serial).
/// Shared by every harness binary so they all accept the same flag.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Reports pool utilisation to stderr after a parallel harness run, so
/// the deterministic table on stdout stays clean.
pub fn report_pool(pool: &dim_sweep::PoolStats) {
    if pool.threads > 1 {
        eprintln!(
            "pool: {} workers, {} jobs, {} steals, mean job {:.0}us",
            pool.threads,
            pool.total_executed(),
            pool.total_steals(),
            pool.job_micros.mean()
        );
    }
}

/// One benchmark's full Table 2 row: speedups for every
/// (shape × speculation × cache-slot) point plus the two ideal columns.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline pipeline cycles.
    pub baseline_cycles: u64,
    /// `speedups[shape][spec][slots]` in the order of [`SHAPES`],
    /// `[false, true]`, [`CACHE_SLOTS`].
    pub speedups: [[[f64; 3]; 2]; 3],
    /// Ideal (infinite array + unbounded cache) without speculation.
    pub ideal_no_spec: f64,
    /// Ideal with speculation.
    pub ideal_spec: f64,
}

/// Runs the complete Table 2 grid for one built benchmark.
///
/// # Errors
///
/// Fails if any run diverges from the reference output — the grid is a
/// correctness gauntlet as much as a performance sweep.
pub fn table2_row(built: &BuiltBenchmark) -> Result<Table2Row, WorkloadError> {
    let base = run_baseline(built)?;
    let baseline_cycles = base.stats.cycles;
    let mut speedups = [[[0.0f64; 3]; 2]; 3];
    for (si, (_, shape_fn)) in SHAPES.iter().enumerate() {
        for (pi, spec) in [false, true].into_iter().enumerate() {
            for (ci, slots) in CACHE_SLOTS.into_iter().enumerate() {
                let run = run_accelerated(built, SystemConfig::new(shape_fn(), slots, spec))?;
                speedups[si][pi][ci] = speedup(baseline_cycles, run.cycles);
            }
        }
    }
    let ideal = |spec| -> Result<f64, WorkloadError> {
        let run = run_accelerated(
            built,
            SystemConfig::new(ArrayShape::infinite(), 1 << 20, spec),
        )?;
        Ok(speedup(baseline_cycles, run.cycles))
    };
    Ok(Table2Row {
        name: built.name,
        baseline_cycles,
        speedups,
        ideal_no_spec: ideal(false)?,
        ideal_spec: ideal(true)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_workloads::{by_name, Scale};

    #[test]
    fn accelerated_crc32_is_valid_and_faster() {
        let built = (by_name("crc32").unwrap().build)(Scale::Tiny);
        let base = run_baseline(&built).unwrap();
        let run =
            run_accelerated(&built, SystemConfig::new(ArrayShape::config1(), 64, true)).unwrap();
        assert!(run.cycles < base.stats.cycles);
        assert!(run.system.stats().array_invocations > 0);
    }

    #[test]
    fn profiled_run_exports_exact_json() {
        let built = (by_name("crc32").unwrap().build)(Scale::Tiny);
        let profiled =
            run_profiled(&built, SystemConfig::new(ArrayShape::config2(), 64, true)).unwrap();
        assert_eq!(profiled.profile.total_cycles(), profiled.run.cycles);
        let json = profiled.to_json("crc32");
        let parsed = dim_obs::parse_json(&json).unwrap();
        assert_eq!(parsed.get("workload").unwrap().as_str(), Some("crc32"));
        assert_eq!(
            parsed.get("total_cycles").unwrap().as_u64(),
            Some(profiled.run.cycles)
        );
        let profile = parsed.get("profile").unwrap();
        assert_eq!(
            profile.get("total_cycles").unwrap().as_u64(),
            Some(profiled.run.cycles)
        );
    }

    #[test]
    fn explained_run_conserves_cycles_and_finds_regions() {
        let built = (by_name("crc32").unwrap().build)(Scale::Tiny);
        let explained =
            run_explained(&built, SystemConfig::new(ArrayShape::config1(), 64, true)).unwrap();
        let ex = &explained.explanation;
        assert_eq!(ex.attributed_total(), explained.run.cycles);
        assert!(!ex.regions.is_empty(), "accelerated run must have regions");
        assert!(
            ex.regions.iter().any(|r| r.invocations > 0),
            "some region must have executed on the array"
        );
        assert_eq!(ex.schema_version, dim_obs::SCHEMA_VERSION);
    }

    #[test]
    fn speedup_math() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert!(speedup(100, 0) >= 100.0);
    }
}
