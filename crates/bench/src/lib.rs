//! # dim-bench
//!
//! Experiment harness for the DIM reproduction: shared runners
//! ([`run_baseline`], [`run_accelerated`], [`table2_row`]) plus the
//! binaries that regenerate every table and figure of the paper
//! (`fig3_characterization`, `table2_speedup`, `fig4_summary`,
//! `fig5_power`, `fig6_energy`, `table3_area`).
//!
//! ```
//! use dim_bench::{run_accelerated, run_baseline, speedup};
//! use dim_core::SystemConfig;
//! use dim_cgra::ArrayShape;
//! use dim_workloads::{by_name, Scale};
//!
//! let built = (by_name("crc32").expect("exists").build)(Scale::Tiny);
//! let base = run_baseline(&built)?;
//! let accel = run_accelerated(&built, SystemConfig::new(ArrayShape::config1(), 64, true))?;
//! assert!(speedup(base.stats.cycles, accel.cycles) > 1.0);
//! # Ok::<(), dim_workloads::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod report;
mod runner;

pub use report::{percent, ratio, TextTable};
pub use runner::{
    jobs_from_args, report_pool, run_accelerated, run_baseline, run_explained, run_instrumented,
    run_profiled, speedup, table2_row, AcceleratedRun, ExplainedRun, ProfiledRun, Table2Row,
    CACHE_SLOTS, SHAPES,
};
