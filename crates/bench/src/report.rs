//! Plain-text table/series rendering for the experiment binaries.

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl TextTable {
    /// Renders the table as CSV (quoting cells that contain commas).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let row: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        };
        push_row(&self.header);
        for r in &self.rows {
            push_row(r);
        }
        out
    }
}

/// Formats a ratio like the paper's tables (two decimals).
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage.
pub fn percent(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "x"]);
        t.row(["abc", "1.00"]);
        t.row(["d", "10.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with(" 1.00"));
        assert!(lines[3].ends_with("10.25"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn csv_output_quotes_when_needed() {
        let mut t = TextTable::new(["name", "x"]);
        t.row(["a,b", "1"]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,x\n\"a,b\",1\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(2.5), "2.50");
        assert_eq!(percent(0.123), "12.3%");
    }
}
