//! Span-tree well-formedness properties: any LIFO-disciplined sequence
//! of begins/ends driven through a [`SpanSheet`] must round-trip
//! through the dump format into a forest where every span ended, every
//! child nests inside its parent, nothing is trimmed as an orphan, and
//! every tree's critical path is bounded by its root's wall time —
//! and corrupting parent ids must trim, never panic or mis-nest.

use dim_obs::span::SpanFile;
use dim_obs::{FakeClock, SharedClock, SpanForest, SpanId, SpanSheet};
use proptest::prelude::*;
use std::sync::Arc;

/// Replays `ops` against a fresh sheet: op 0 begins a span (root when
/// the stack is empty, child of the top otherwise), op 1 ends the top,
/// and any op advances the fake clock by `step` first. Ends are LIFO,
/// so intervals nest by construction. Returns the dump and the number
/// of spans begun.
fn drive(ops: &[(u8, u16)], capacity: usize) -> (String, usize) {
    let clock = FakeClock::shared(1_000);
    let sheet = SpanSheet::new(Arc::clone(&clock) as SharedClock, capacity);
    let mut stack: Vec<SpanId> = Vec::new();
    let mut begun = 0usize;
    for &(op, step) in ops {
        clock.advance(u64::from(step) + 1);
        match op % 3 {
            0 => {
                let id = match stack.last() {
                    Some(&parent) => sheet.begin("stage", parent),
                    None => sheet.begin_root("request", "tenant", begun as u64),
                };
                if id.is_some() {
                    stack.push(id);
                }
                begun += 1;
            }
            1 => {
                if let Some(id) = stack.pop() {
                    sheet.end(id);
                }
            }
            _ => {} // pure clock advance
        }
    }
    while let Some(id) = stack.pop() {
        clock.advance(1);
        sheet.end(id);
    }
    (sheet.render(), begun)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every LIFO-driven dump parses back into a forest obeying all
    /// the span laws, with nothing trimmed and every begin accounted
    /// for (recorded or counted as dropped at capacity).
    #[test]
    fn lifo_trees_round_trip_and_obey_all_laws(
        ops in proptest::collection::vec((0u8..3, 0u16..500), 0..120),
        capacity in prop_oneof![Just(4usize), Just(16), Just(64), Just(512)],
    ) {
        let (dump, begun) = drive(&ops, capacity);
        let file = SpanFile::parse(&dump).expect("dump must parse");
        prop_assert_eq!(file.spans.len() + file.dropped as usize, begun);
        let forest = SpanForest::build(&file);
        prop_assert_eq!(forest.orphans_trimmed, 0);
        let violations = forest.check_laws();
        prop_assert!(violations.is_empty(), "violations: {:?}\n{}", violations, dump);
        // Stage-duration accounting covers every retained span.
        let counted: usize = forest.stage_durations().values().map(Vec::len).sum();
        prop_assert_eq!(counted, forest.spans.len());
    }

    /// The dump is a pure function of the op sequence under a fake
    /// clock — byte-identical across runs.
    #[test]
    fn dump_is_deterministic_for_same_ops(
        ops in proptest::collection::vec((0u8..3, 0u16..500), 0..60),
    ) {
        let (a, _) = drive(&ops, 64);
        let (b, _) = drive(&ops, 64);
        prop_assert_eq!(a, b);
    }

    /// Corrupting parent ids (dangling parents, self-cycles) makes the
    /// forest trim the affected subtrees as orphans — never panic, and
    /// never retain a span whose parent chain misses every root.
    #[test]
    fn corrupted_parents_trim_orphans(
        ops in proptest::collection::vec((0u8..3, 0u16..500), 1..80),
        corrupt in proptest::collection::vec((0u16..200, 0u8..2), 0..8),
    ) {
        let (dump, _) = drive(&ops, 256);
        let mut file = SpanFile::parse(&dump).expect("dump must parse");
        let n = file.spans.len();
        if n == 0 {
            return Ok(());
        }
        for &(pick, kind) in &corrupt {
            let index = pick as usize % n;
            let span = &mut file.spans[index];
            span.parent = match kind {
                0 => span.id,          // self-cycle
                _ => 1_000_000 + span.id, // dangling parent
            };
        }
        let forest = SpanForest::build(&file);
        prop_assert_eq!(forest.spans.len() + forest.orphans_trimmed, n);
        // Retained spans still satisfy every law: corruption rewires
        // ancestry (trimming whole subtrees), it never edits
        // timestamps, so the surviving parent-child pairs are the
        // original, properly nested ones.
        let violations = forest.check_laws();
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
        // Every retained root really is a root.
        for &root in &forest.roots {
            prop_assert_eq!(forest.spans[root].parent, 0);
        }
    }
}
