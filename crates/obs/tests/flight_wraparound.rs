//! Flight-recorder wraparound properties: for any well-formed event
//! stream and any ring capacity, the recorder retains exactly the last
//! `capacity` events, its per-kind drop counters account for everything
//! it forgot, and the dump replays cleanly through the trace validator.

use dim_obs::replay::read_trace;
use dim_obs::{ArrayInvoke, FabricUtil, FlightRecorder, Probe, ProbeEvent, RetireKind};
use proptest::prelude::*;

/// Expands a group selector into one of the emission groups the
/// instrumented `System` actually produces, so pairing laws (insert →
/// evict, mispredict → flush → fabric → invoke adjacency) hold in the
/// stream.
fn group(kind: u8, seq: u32) -> Vec<ProbeEvent> {
    let pc = 0x1000 + seq * 16;
    // Fabric + invoke pair with reconciling cycles:
    // ceil(exec_thirds / 3) + residual == exec_cycles.
    let fabric = || {
        ProbeEvent::Fabric(FabricUtil {
            entry_pc: pc,
            rows: 2,
            exec_thirds: 6,
            capacity_thirds: 66,
            alu_busy_thirds: 3,
            mult_busy_thirds: 0,
            ldst_busy_thirds: 6,
            issued_ops: 4,
            squashed_ops: 0,
            residual_cycles: 2,
            writeback_writes: 1,
            writeback_slots: 20,
        })
    };
    let invoke = |misspeculated: bool, flushed: bool| {
        ProbeEvent::ArrayInvoke(ArrayInvoke {
            entry_pc: pc,
            exit_pc: pc + 16,
            covered: 4,
            executed: if misspeculated { 2 } else { 4 },
            loads: 1,
            stores: 0,
            rows: 2,
            spec_depth: u8::from(misspeculated),
            misspeculated,
            flushed,
            stall_cycles: 1,
            exec_cycles: 4,
            tail_cycles: 1,
        })
    };
    match kind % 8 {
        0 => vec![ProbeEvent::Retire {
            pc,
            kind: RetireKind::Alu,
            base_cycles: 1,
            i_stall: 0,
            d_stall: (seq % 3),
            ends_block: seq.is_multiple_of(2),
        }],
        1 => vec![ProbeEvent::RcacheMiss { pc }],
        2 => vec![ProbeEvent::RcacheHit { pc, len: 4 }],
        3 => vec![
            ProbeEvent::TransBegin { pc },
            ProbeEvent::TransCommit {
                entry_pc: pc,
                instructions: 4,
                rows: 2,
                spec_blocks: 1,
                partial: seq.is_multiple_of(5),
            },
        ],
        4 => vec![ProbeEvent::RcacheInsert {
            pc,
            len: 4,
            evicted: None,
        }],
        5 => vec![
            ProbeEvent::RcacheInsert {
                pc,
                len: 4,
                evicted: Some(pc + 4),
            },
            ProbeEvent::RcacheEvict {
                pc: pc + 4,
                len: 4,
                uses: seq as u64 % 7,
            },
        ],
        6 => vec![
            ProbeEvent::SpecMispredict {
                region_pc: pc,
                region_len: 4,
                branch_pc: pc + 8,
                penalty_cycles: 2,
            },
            fabric(),
            invoke(true, false),
        ],
        _ => vec![
            ProbeEvent::SpecMispredict {
                region_pc: pc,
                region_len: 4,
                branch_pc: pc + 8,
                penalty_cycles: 2,
            },
            ProbeEvent::RcacheFlush { pc, len: 4 },
            fabric(),
            invoke(true, true),
        ],
    }
}

fn check(kinds: &[u8], capacity: usize) -> Result<(), String> {
    let stream: Vec<ProbeEvent> = kinds
        .iter()
        .enumerate()
        .flat_map(|(i, &k)| group(k, i as u32))
        .collect();
    let mut rec = FlightRecorder::new(capacity);
    for &event in &stream {
        rec.emit(event);
    }
    let capacity = rec.capacity(); // post-clamp

    // The ring holds exactly the last `capacity` events.
    let expect_retained = stream.len().min(capacity);
    if rec.retained() != expect_retained {
        return Err(format!(
            "retained {} != expected {expect_retained}",
            rec.retained()
        ));
    }
    let tail = &stream[stream.len() - expect_retained..];
    if rec.events() != tail {
        return Err("retained window is not the stream's tail".to_string());
    }

    // Drop counters account exactly for what fell off, per kind.
    let total_dropped: u64 = rec.dropped().iter().sum();
    if total_dropped != (stream.len() - expect_retained) as u64 {
        return Err(format!(
            "dropped {total_dropped} != total {} - retained {expect_retained}",
            stream.len()
        ));
    }
    let head = &stream[..stream.len() - expect_retained];
    let mut expect_dropped = [0u64; dim_obs::EVENT_KINDS];
    for event in head {
        expect_dropped[event.type_index()] += 1;
    }
    if rec.dropped() != &expect_dropped {
        return Err(format!(
            "per-kind drops {:?} != expected {expect_dropped:?}",
            rec.dropped()
        ));
    }

    // The dump replays cleanly and echoes the drop accounting.
    let dump = rec.dump("prop", 512);
    let trace = read_trace(&dump).map_err(|e| format!("dump rejected: {e}\n{dump}"))?;
    for (name, count) in &trace.header.dropped {
        let idx = dim_obs::EVENT_KIND_NAMES
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| format!("unknown dropped kind `{name}`"))?;
        if *count != expect_dropped[idx] {
            return Err(format!("header drop count for `{name}` is {count}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wraparound accounting holds for any group mix and any capacity,
    /// including capacities far smaller and far larger than the stream.
    #[test]
    fn ring_retains_exact_tail_and_accounts_drops(
        kinds in proptest::collection::vec(0u8..8, 0..80),
        capacity in prop_oneof![Just(0usize), Just(1), Just(2), Just(3), Just(7), Just(64), Just(4096)],
    ) {
        if let Err(msg) = check(&kinds, capacity) {
            prop_assert!(false, "{}", msg);
        }
    }
}
