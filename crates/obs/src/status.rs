//! The live telemetry status file (`status.dimstat`).
//!
//! Long-running commands publish their progress by atomically replacing
//! a small JSONL status file that `dim top` tails: one versioned,
//! checksummed header line followed by one [`StatusEntry`] per tracked
//! source (a sweep aggregate, each pool worker, a single `dim accel`
//! run). Writers replace the whole file via temp-file-plus-rename — the
//! same discipline as `.dimrc` snapshots — so a reader polling
//! mid-write never sees a torn file, and the header's FNV-1a body
//! checksum catches any that slips through.
//!
//! Status files are *advisory* host-side output: like `telemetry.json`,
//! they sit outside the sweep's serial-vs-parallel byte-identity
//! determinism contract (wall-clock fields make them inherently
//! nondeterministic).

use crate::clock::{MonotonicClock, SharedClock};
use crate::event::ProbeEvent;
use crate::frame::{parse_text_frame, render_text_frame, TextFrameError};
use crate::json::{parse, JsonValue, ObjectWriter};
use crate::probe::Probe;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic string identifying a status file header.
pub const STATUS_MAGIC: &str = "DIMSTAT";
/// Current status-file format version.
///
/// History: **1** — initial entry vocabulary; **2** — adds the
/// `fabric_busy_thirds`/`fabric_capacity_thirds` pair feeding the
/// `dim top` fabric-utilization column; **3** — adds the span-derived
/// `latency_p99_micros`/`queue_depth` pair feeding the `dim top` p99
/// and queue columns. Readers accept older versions (the new fields
/// default to 0) and reject newer ones.
pub const STATUS_VERSION: u64 = 3;
/// Conventional file name, appended when a directory is given.
pub const STATUS_FILE_NAME: &str = "status.dimstat";

/// Why a status file could not be read.
#[derive(Debug)]
pub enum StatusError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header is missing the `DIMSTAT` magic.
    BadMagic,
    /// The header declares a version newer than this reader.
    UnsupportedVersion(u64),
    /// The body does not hash to the header's checksum (torn write).
    ChecksumMismatch,
    /// A line failed to parse or lacked a required field.
    Malformed(String),
}

impl fmt::Display for StatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatusError::Io(e) => write!(f, "status file I/O error: {e}"),
            StatusError::BadMagic => write!(f, "not a status file (bad magic)"),
            StatusError::UnsupportedVersion(v) => {
                write!(f, "status file version {v} is newer than this reader")
            }
            StatusError::ChecksumMismatch => {
                write!(f, "status file body checksum mismatch (torn write?)")
            }
            StatusError::Malformed(m) => write!(f, "malformed status file: {m}"),
        }
    }
}

impl std::error::Error for StatusError {}

impl From<io::Error> for StatusError {
    fn from(e: io::Error) -> StatusError {
        StatusError::Io(e)
    }
}

impl From<TextFrameError> for StatusError {
    fn from(e: TextFrameError) -> StatusError {
        match e {
            TextFrameError::Malformed(m) => StatusError::Malformed(m),
            TextFrameError::BadMagic => StatusError::BadMagic,
            TextFrameError::UnsupportedVersion(v) => StatusError::UnsupportedVersion(v),
            TextFrameError::ChecksumMismatch => StatusError::ChecksumMismatch,
        }
    }
}

/// One tracked source's live progress sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusEntry {
    /// Who is reporting: `sweep`, `worker-<n>`, or `accel`.
    pub source: String,
    /// What it is working on (cell id, workload name, or empty).
    pub label: String,
    /// `idle`, `running`, `done`, or `failed`.
    pub state: String,
    /// Work items completed (cells for a sweep; 0/1 for a single run).
    pub done: u64,
    /// Total work items.
    pub total: u64,
    /// Instructions retired on the pipeline so far.
    pub retired: u64,
    /// Simulated cycles so far.
    pub sim_cycles: u64,
    /// Array invocations so far.
    pub invocations: u64,
    /// Reconfiguration-cache hits so far.
    pub rcache_hits: u64,
    /// Reconfiguration-cache misses so far.
    pub rcache_misses: u64,
    /// Misspeculated invocations so far.
    pub misspeculations: u64,
    /// Host nanoseconds spent so far (basis for live sim-MIPS).
    pub host_nanos: u64,
    /// Busy fabric unit-thirds so far (version 2; 0 when read from a
    /// version-1 file).
    pub fabric_busy_thirds: u64,
    /// Available fabric unit-thirds so far (version 2; 0 when read from
    /// a version-1 file or on infinite shapes — utilization unknown).
    pub fabric_capacity_thirds: u64,
    /// p99 request latency in microseconds over recent completions
    /// (version 3; serve aggregate only — 0 elsewhere or when read
    /// from an older file).
    pub latency_p99_micros: u64,
    /// Requests currently queued awaiting dispatch (version 3; serve
    /// aggregate only — 0 elsewhere or when read from an older file).
    pub queue_depth: u64,
}

impl StatusEntry {
    fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("source", &self.source);
        o.field_str("label", &self.label);
        o.field_str("state", &self.state);
        o.field_u64("done", self.done);
        o.field_u64("total", self.total);
        o.field_u64("retired", self.retired);
        o.field_u64("sim_cycles", self.sim_cycles);
        o.field_u64("invocations", self.invocations);
        o.field_u64("rcache_hits", self.rcache_hits);
        o.field_u64("rcache_misses", self.rcache_misses);
        o.field_u64("misspeculations", self.misspeculations);
        o.field_u64("host_nanos", self.host_nanos);
        o.field_u64("fabric_busy_thirds", self.fabric_busy_thirds);
        o.field_u64("fabric_capacity_thirds", self.fabric_capacity_thirds);
        o.field_u64("latency_p99_micros", self.latency_p99_micros);
        o.field_u64("queue_depth", self.queue_depth);
        o.finish()
    }

    fn from_json(value: &JsonValue, line: usize) -> Result<StatusEntry, StatusError> {
        let get_str = |key: &str| -> Result<String, StatusError> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    StatusError::Malformed(format!("line {line}: missing string `{key}`"))
                })
        };
        let get_u64 = |key: &str| -> Result<u64, StatusError> {
            value.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
                StatusError::Malformed(format!("line {line}: missing number `{key}`"))
            })
        };
        let get_u64_or = |key: &str, default: u64| -> u64 {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .unwrap_or(default)
        };
        Ok(StatusEntry {
            source: get_str("source")?,
            label: get_str("label")?,
            state: get_str("state")?,
            done: get_u64("done")?,
            total: get_u64("total")?,
            retired: get_u64("retired")?,
            sim_cycles: get_u64("sim_cycles")?,
            invocations: get_u64("invocations")?,
            rcache_hits: get_u64("rcache_hits")?,
            rcache_misses: get_u64("rcache_misses")?,
            misspeculations: get_u64("misspeculations")?,
            host_nanos: get_u64("host_nanos")?,
            // Version-2 fields: default when reading a version-1 file.
            fabric_busy_thirds: get_u64_or("fabric_busy_thirds", 0),
            fabric_capacity_thirds: get_u64_or("fabric_capacity_thirds", 0),
            // Version-3 fields: default when reading an older file.
            latency_p99_micros: get_u64_or("latency_p99_micros", 0),
            queue_depth: get_u64_or("queue_depth", 0),
        })
    }
}

/// A parsed (or about-to-be-written) status file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusFile {
    /// Entries in publication order; by convention the aggregate comes
    /// first, workers after.
    pub entries: Vec<StatusEntry>,
}

impl StatusFile {
    /// Renders the header + body text that [`write_status`] persists,
    /// via the shared [`crate::frame`] text framing.
    pub fn render(&self) -> String {
        let mut body = String::new();
        for entry in &self.entries {
            body.push_str(&entry.to_json());
            body.push('\n');
        }
        render_text_frame(
            "status_header",
            STATUS_MAGIC,
            STATUS_VERSION,
            &[("entries", self.entries.len() as u64)],
            &body,
        )
    }

    /// Parses the text of a status file, verifying magic, version, and
    /// the body checksum.
    pub fn parse(text: &str) -> Result<StatusFile, StatusError> {
        let (header, body) = parse_text_frame(STATUS_MAGIC, STATUS_VERSION, text)?;
        let count = header
            .get("entries")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| StatusError::Malformed("header: missing `entries`".into()))?;
        let mut entries = Vec::new();
        for (i, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = parse(line)
                .map_err(|e| StatusError::Malformed(format!("line {}: {e:?}", i + 2)))?;
            entries.push(StatusEntry::from_json(&value, i + 2)?);
        }
        if entries.len() as u64 != count {
            return Err(StatusError::Malformed(format!(
                "header declares {count} entries, body has {}",
                entries.len()
            )));
        }
        Ok(StatusFile { entries })
    }
}

/// Atomically replaces the status file at `path` (temp file in the same
/// directory, then rename), so a concurrent [`read_status`] sees either
/// the old or the new version — never a torn mix. The temp name carries
/// the pid plus a process-wide counter so concurrent publishers never
/// collide on it.
pub fn write_status(path: &Path, status: &StatusFile) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let file_name = path.file_name().map_or_else(
        || "status".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let tmp = path.with_file_name(format!(
        "{file_name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = fs::write(&tmp, status.render()).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// A probe that folds the event stream into a live [`StatusEntry`] and
/// hands it to a publish callback every `interval_cycles` simulated
/// cycles (plus once at [`finish`](Probe::finish)) — the glue between
/// an instrumented run and the status file `dim top` tails.
///
/// The callback decides where the entry goes: a single-entry
/// [`StatusFile`] for `dim accel`, a slot on the sweep's shared worker
/// board for `dim sweep`. Publishing is host-side output; the probe is
/// cycle-neutral like every other sink.
#[derive(Debug)]
pub struct StatusPulse<F: FnMut(&StatusEntry)> {
    entry: StatusEntry,
    interval: u64,
    last_publish: u64,
    clock: SharedClock,
    started_nanos: u64,
    publish: F,
}

impl<F: FnMut(&StatusEntry)> StatusPulse<F> {
    /// A pulse starting from `entry` (its identity fields — source,
    /// label, state, done/total — are preserved verbatim), publishing
    /// every `interval_cycles` (0 = only at finish). Host time comes
    /// from a fresh real clock; use
    /// [`with_clock`](StatusPulse::with_clock) to inject one.
    pub fn new(entry: StatusEntry, interval_cycles: u64, publish: F) -> StatusPulse<F> {
        StatusPulse::with_clock(entry, interval_cycles, MonotonicClock::shared(), publish)
    }

    /// Like [`new`](StatusPulse::new) with an injected clock, so hosts
    /// that already carry a [`SharedClock`] (serve, sweep) report
    /// `host_nanos` on the same timebase as their spans — and tests
    /// can drive a deterministic fake.
    pub fn with_clock(
        entry: StatusEntry,
        interval_cycles: u64,
        clock: SharedClock,
        publish: F,
    ) -> StatusPulse<F> {
        let started_nanos = clock.now_nanos();
        StatusPulse {
            entry,
            interval: interval_cycles,
            last_publish: 0,
            clock,
            started_nanos,
            publish,
        }
    }

    /// The entry as accumulated so far.
    pub fn entry(&self) -> &StatusEntry {
        &self.entry
    }

    fn publish_now(&mut self) {
        self.entry.host_nanos = self.clock.now_nanos().saturating_sub(self.started_nanos);
        (self.publish)(&self.entry);
        self.last_publish = self.entry.sim_cycles;
    }
}

impl<F: FnMut(&StatusEntry)> Probe for StatusPulse<F> {
    fn emit(&mut self, event: ProbeEvent) {
        self.entry.sim_cycles += event.cycles();
        match event {
            ProbeEvent::Retire { .. } => self.entry.retired += 1,
            ProbeEvent::RcacheHit { .. } => self.entry.rcache_hits += 1,
            ProbeEvent::RcacheMiss { .. } => self.entry.rcache_misses += 1,
            ProbeEvent::ArrayInvoke(inv) => {
                self.entry.invocations += 1;
                if inv.misspeculated {
                    self.entry.misspeculations += 1;
                }
            }
            ProbeEvent::Fabric(fab) => {
                self.entry.fabric_busy_thirds += fab.busy_thirds();
                self.entry.fabric_capacity_thirds += fab.capacity_thirds as u64;
            }
            _ => {}
        }
        if self.interval > 0 && self.entry.sim_cycles - self.last_publish >= self.interval {
            self.publish_now();
        }
    }

    fn finish(&mut self) {
        self.publish_now();
    }
}

/// Reads and verifies the status file at `path`.
pub fn read_status(path: &Path) -> Result<StatusFile, StatusError> {
    StatusFile::parse(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fnv1a64;

    fn sample() -> StatusFile {
        StatusFile {
            entries: vec![
                StatusEntry {
                    source: "sweep".into(),
                    label: "18 cells".into(),
                    state: "running".into(),
                    done: 7,
                    total: 18,
                    retired: 123_456,
                    sim_cycles: 234_567,
                    invocations: 42,
                    rcache_hits: 40,
                    rcache_misses: 2,
                    misspeculations: 1,
                    host_nanos: 5_000_000,
                    fabric_busy_thirds: 900,
                    fabric_capacity_thirds: 3_000,
                    latency_p99_micros: 850,
                    queue_depth: 3,
                },
                StatusEntry {
                    source: "worker-0".into(),
                    label: "crc32__base".into(),
                    state: "running".into(),
                    total: 1,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let status = sample();
        let parsed = StatusFile::parse(&status.render()).expect("parses");
        assert_eq!(parsed, status);
    }

    #[test]
    fn rejects_bad_magic() {
        let text = "{\"type\":\"status_header\",\"magic\":\"NOPE\",\"version\":1,\
                    \"entries\":0,\"body_fnv64\":\"cbf29ce484222325\"}\n";
        assert!(matches!(
            StatusFile::parse(text),
            Err(StatusError::BadMagic)
        ));
    }

    #[test]
    fn rejects_newer_version() {
        let text = format!(
            "{{\"type\":\"status_header\",\"magic\":\"DIMSTAT\",\"version\":{},\
             \"entries\":0,\"body_fnv64\":\"cbf29ce484222325\"}}\n",
            STATUS_VERSION + 1
        );
        assert!(matches!(
            StatusFile::parse(&text),
            Err(StatusError::UnsupportedVersion(v)) if v == STATUS_VERSION + 1
        ));
    }

    /// Version-2 files (no `latency_p99_micros`/`queue_depth`) still
    /// read, with the new fields defaulting to 0.
    #[test]
    fn reads_version_2_files_with_defaults() {
        let body = "{\"source\":\"serve\",\"label\":\"\",\"state\":\"running\",\"done\":1,\
                    \"total\":2,\"retired\":10,\"sim_cycles\":20,\"invocations\":0,\
                    \"rcache_hits\":0,\"rcache_misses\":0,\"misspeculations\":0,\
                    \"host_nanos\":99,\"fabric_busy_thirds\":1,\"fabric_capacity_thirds\":3}\n";
        let text = format!(
            "{{\"type\":\"status_header\",\"magic\":\"DIMSTAT\",\"version\":2,\
             \"entries\":1,\"body_fnv64\":\"{:016x}\"}}\n{body}",
            fnv1a64(body.as_bytes())
        );
        let parsed = StatusFile::parse(&text).expect("v2 parses");
        assert_eq!(parsed.entries[0].latency_p99_micros, 0);
        assert_eq!(parsed.entries[0].queue_depth, 0);
        assert_eq!(parsed.entries[0].fabric_capacity_thirds, 3);
    }

    #[test]
    fn pulse_host_nanos_follows_injected_clock() {
        use crate::clock::FakeClock;
        use std::sync::Arc;
        let clock = FakeClock::shared(500);
        let published = std::cell::RefCell::new(Vec::new());
        let mut pulse = StatusPulse::with_clock(
            StatusEntry::default(),
            0,
            Arc::clone(&clock) as SharedClock,
            |e: &StatusEntry| published.borrow_mut().push(e.clone()),
        );
        clock.advance(1_234);
        pulse.finish();
        assert_eq!(published.borrow()[0].host_nanos, 1_234);
    }

    #[test]
    fn rejects_torn_body() {
        let mut text = sample().render();
        text.push_str("{\"tail\":\"of a torn write\"\n");
        assert!(matches!(
            StatusFile::parse(&text),
            Err(StatusError::ChecksumMismatch)
        ));
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let status = sample();
        let body: String = status
            .entries
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let text = format!(
            "{{\"type\":\"status_header\",\"magic\":\"DIMSTAT\",\"version\":1,\
             \"entries\":99,\"body_fnv64\":\"{:016x}\"}}\n{body}",
            fnv1a64(body.as_bytes())
        );
        assert!(matches!(
            StatusFile::parse(&text),
            Err(StatusError::Malformed(_))
        ));
    }

    #[test]
    fn write_and_read_through_disk() {
        let dir = std::env::temp_dir().join(format!("dimstat-test-{}", std::process::id()));
        let path = dir.join(STATUS_FILE_NAME);
        let status = sample();
        write_status(&path, &status).expect("writes");
        let back = read_status(&path).expect("reads");
        assert_eq!(back, status);
        // Overwrite in place — the atomic-replace path.
        let mut second = status.clone();
        second.entries[0].done = 18;
        second.entries[0].state = "done".into();
        write_status(&path, &second).expect("replaces");
        assert_eq!(read_status(&path).expect("re-reads"), second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pulse_accumulates_and_publishes_on_interval_and_finish() {
        use crate::event::RetireKind;
        let published = std::cell::RefCell::new(Vec::new());
        let entry = StatusEntry {
            source: "accel".into(),
            label: "crc32".into(),
            state: "running".into(),
            ..Default::default()
        };
        let mut pulse = StatusPulse::new(entry, 5, |e: &StatusEntry| {
            published.borrow_mut().push(e.clone());
        });
        for i in 0..4u32 {
            pulse.emit(ProbeEvent::Retire {
                pc: i * 4,
                kind: RetireKind::Alu,
                base_cycles: 2,
                i_stall: 0,
                d_stall: 0,
                ends_block: false,
            });
        }
        pulse.emit(ProbeEvent::RcacheHit { pc: 0, len: 4 });
        pulse.emit(ProbeEvent::RcacheMiss { pc: 4 });
        pulse.finish();
        let seen = published.borrow();
        // 8 cycles crosses the 5-cycle interval once, finish adds one.
        assert_eq!(seen.len(), 2);
        let last = seen.last().unwrap();
        assert_eq!(last.retired, 4);
        assert_eq!(last.sim_cycles, 8);
        assert_eq!(last.rcache_hits, 1);
        assert_eq!(last.rcache_misses, 1);
        assert_eq!(last.source, "accel");
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let path = Path::new("/nonexistent/dimstat/status.dimstat");
        assert!(matches!(read_status(path), Err(StatusError::Io(_))));
    }
}
